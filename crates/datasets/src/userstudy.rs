//! The simulated user study (§5.2, Figure 4).
//!
//! The paper recruited 137 people, gave each ten planning problems over
//! ego networks extracted from their own Facebook accounts, and compared
//! their manual groups to CBAS-ND's. We cannot recruit humans here;
//! instead, [`ManualPlanner`] models the documented behaviour of the
//! participants:
//!
//! * **myopia** — people grow the group one friend at a time, looking only
//!   at the current frontier;
//! * **bounded attention** — at most ~7 candidates examined per step
//!   (Miller's 7±2), chosen haphazardly from the frontier;
//! * **noisy value perception** — multiplicative log-normal noise on each
//!   candidate's perceived gain, with tightness overweighted relative to
//!   interest (the social component is what people *feel*);
//! * **fatigue** — a patience budget on candidate evaluations; past it the
//!   participant "starts to give up" (§5.2 observes this at n = 30 and
//!   k = 13) and completes the group hastily at random;
//! * **modeled time** — seconds per considered candidate, so Figure 4(c)/(e)
//!   report *modeled human seconds*, clearly not wall-clock.
//!
//! λ preferences ([`sample_lambda`]) follow the Figure 4(a) histogram
//! (support 0.37–0.66, mean ≈ 0.503); opinions ([`Opinion::judge`])
//! compare the two solutions the way §5.2's exit question did.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use waso_core::{Group, WasoInstance};
use waso_graph::{subgraph, NodeId};
use waso_stats::normal;

use crate::synthetic;

/// Figure 4(a)'s λ histogram: bin edges and the calibrated bin masses
/// (chosen to match the paper's reported support `[0.37, 0.66]` and mean
/// 0.503; see EXPERIMENTS.md).
pub const LAMBDA_BINS: [(f64, f64, f64); 5] = [
    (0.37, 0.45, 0.20),
    (0.45, 0.50, 0.28),
    (0.50, 0.55, 0.32),
    (0.55, 0.60, 0.12),
    (0.60, 0.66, 0.08),
];

/// Draws one participant's λ preference from the Figure 4(a) mixture.
pub fn sample_lambda<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let mut t: f64 = rng.random();
    for &(lo, hi, mass) in &LAMBDA_BINS {
        if t < mass {
            return rng.random_range(lo..hi);
        }
        t -= mass;
    }
    // Floating-point slack: land in the last bin.
    let (lo, hi, _) = LAMBDA_BINS[LAMBDA_BINS.len() - 1];
    rng.random_range(lo..hi)
}

/// How a simulated participant coordinates a group by hand.
#[derive(Debug, Clone)]
pub struct ManualPlannerConfig {
    /// Candidates examined per expansion step (Miller's 7±2).
    pub consideration_limit: usize,
    /// σ of the log-normal multiplicative perception noise.
    pub noise_sigma: f64,
    /// Multiplier on the tightness component of a perceived gain.
    pub tightness_bias: f64,
    /// Candidate evaluations before the participant gives up.
    pub patience: u64,
    /// Modeled seconds per candidate evaluation.
    pub seconds_per_eval: f64,
}

impl Default for ManualPlannerConfig {
    fn default() -> Self {
        Self {
            consideration_limit: 7,
            noise_sigma: 0.45,
            tightness_bias: 1.5,
            patience: 220,
            seconds_per_eval: 1.8,
        }
    }
}

/// Result of one simulated manual planning session.
#[derive(Debug, Clone)]
pub struct ManualOutcome {
    /// The group the participant settled on (`None` only when the instance
    /// itself is infeasible).
    pub group: Option<Group>,
    /// Whether fatigue forced a hasty random completion.
    pub gave_up: bool,
    /// Candidate evaluations performed.
    pub evaluations: u64,
    /// Modeled human time in seconds (not wall-clock).
    pub modeled_seconds: f64,
}

/// The simulated participant.
#[derive(Debug, Clone, Default)]
pub struct ManualPlanner {
    config: ManualPlannerConfig,
}

impl ManualPlanner {
    /// Participant with default behavioural parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Participant with explicit parameters.
    pub fn with_config(config: ManualPlannerConfig) -> Self {
        Self { config }
    }

    /// Plans a group by hand. `start` pins the initiator (the "-i"
    /// problems); otherwise the participant begins from the person they
    /// perceive as most attractive (noisy max interest).
    pub fn plan(&self, instance: &WasoInstance, start: Option<NodeId>, seed: u64) -> ManualOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = instance.graph();
        let n = g.num_nodes();
        let k = instance.k();
        let cfg = &self.config;

        let mut evaluations = 0u64;
        let start = start.unwrap_or_else(|| {
            // Noisy argmax over interest: the participant eyeballs profiles.
            let mut best = NodeId(0);
            let mut best_score = f64::NEG_INFINITY;
            for v in g.node_ids() {
                evaluations += 1;
                let score = g.interest(v) * self.noise(&mut rng);
                if score > best_score {
                    best_score = score;
                    best = v;
                }
            }
            best
        });

        let mut sampler = waso_core::GrowthWorkspace::new(n);
        if instance.requires_connectivity() {
            sampler.seed(g, start);
        } else {
            sampler.seed_free(g, start);
        }

        let mut gave_up = false;
        while sampler.len() < k {
            let frontier = sampler.frontier();
            if frontier.is_empty() {
                // Humans would re-plan; the simulation reports infeasible.
                return ManualOutcome {
                    group: None,
                    gave_up,
                    evaluations,
                    modeled_seconds: evaluations as f64 * cfg.seconds_per_eval,
                };
            }
            if evaluations >= cfg.patience {
                gave_up = true;
            }

            let flen = frontier.len();
            let pick = if gave_up {
                // Fatigued: grab whoever comes to mind.
                frontier.item(rng.random_range(0..flen))
            } else {
                // Examine a handful of frontier candidates, perceive their
                // gains noisily with tightness overweighted.
                let examine = cfg.consideration_limit.min(flen);
                let mut best: Option<(f64, NodeId)> = None;
                for _ in 0..examine {
                    let v = frontier.item(rng.random_range(0..flen));
                    evaluations += 1;
                    let interest_part = g.interest(v);
                    let tight_part: f64 = g
                        .neighbor_entries(v)
                        .filter(|(j, _, _)| sampler.members().contains(j.index()))
                        .map(|(_, _, pw)| pw)
                        .sum();
                    let perceived =
                        (interest_part + cfg.tightness_bias * tight_part) * self.noise(&mut rng);
                    if best.is_none_or(|(bs, _)| perceived > bs) {
                        best = Some((perceived, v));
                    }
                }
                best.expect("examined at least one candidate").1
            };
            sampler.add(g, pick);
        }

        let group = Group::new(instance, sampler.selected().to_vec())
            .expect("growth maintains feasibility");
        ManualOutcome {
            group: Some(group),
            gave_up,
            evaluations,
            modeled_seconds: evaluations as f64 * cfg.seconds_per_eval,
        }
    }

    /// Multiplicative log-normal perception noise.
    fn noise(&self, rng: &mut StdRng) -> f64 {
        (normal::sample_standard(rng) * self.config.noise_sigma).exp()
    }
}

/// The §5.2 exit question: how does the participant rate the algorithm's
/// group against their own?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opinion {
    /// The algorithm's group is clearly better.
    Better,
    /// About as good (within the judgement tolerance).
    Acceptable,
    /// Worse than the hand-made group.
    NotAcceptable,
}

impl Opinion {
    /// Tolerance within which two willingness values "feel the same".
    pub const JUDGEMENT_TOLERANCE: f64 = 0.05;

    /// Judges the algorithm's willingness against the manual one.
    pub fn judge(manual_w: f64, algo_w: f64) -> Opinion {
        let tol = Opinion::JUDGEMENT_TOLERANCE * manual_w.abs().max(1e-9);
        if algo_w > manual_w + tol {
            Opinion::Better
        } else if algo_w >= manual_w - tol {
            Opinion::Acceptable
        } else {
            Opinion::NotAcceptable
        }
    }
}

/// One §5.2 planning problem: an ego network around an initiator, with the
/// participant's λ folded into the scores.
#[derive(Debug)]
pub struct StudyProblem {
    /// The weighted instance to solve.
    pub instance: WasoInstance,
    /// The initiator (node 0 of the ego extract).
    pub initiator: NodeId,
    /// The λ the participant chose.
    pub lambda: f64,
}

/// Builds a §5.2 problem: extract an `n`-node ego network from a
/// Facebook-like graph, sample the participant's λ, and weight the scores.
pub fn study_problem(n: usize, k: usize, seed: u64) -> StudyProblem {
    assert!(n >= k && k >= 1, "need n >= k >= 1, got n={n} k={k}");
    let mut rng = StdRng::seed_from_u64(seed);
    // A modest host graph, then an ego extract of the requested size.
    let host = synthetic::facebook_like_n((n * 20).max(120), seed ^ 0x5EED);
    let center = NodeId(rng.random_range(0..host.num_nodes() as u32));
    let ego = subgraph::ego_network(&host, center, 3, n);
    let lambda = sample_lambda(&mut rng);
    let lambdas = vec![lambda; ego.graph.num_nodes()];
    let instance = WasoInstance::with_lambda(ego.graph, k.min(n), &lambdas)
        .expect("ego extract supports the requested k");
    StudyProblem {
        instance,
        initiator: NodeId(0),
        lambda,
    }
}

/// Returns the ego graph size actually realized by [`study_problem`] —
/// callers asserting exact sizes should consult this (tiny hosts can yield
/// smaller ego nets).
pub fn realized_size(problem: &StudyProblem) -> usize {
    problem.instance.graph().num_nodes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_instance(seed: u64) -> WasoInstance {
        let g = synthetic::facebook_like_n(150, seed);
        WasoInstance::new(g, 7).unwrap()
    }

    #[test]
    fn lambda_samples_match_the_histogram() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..100_000).map(|_| sample_lambda(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.503).abs() < 0.01, "mean {mean}");
        assert!(xs.iter().all(|&x| (0.37..0.66).contains(&x)));
        // Middle bin is the mode.
        let mid =
            xs.iter().filter(|&&x| (0.50..0.55).contains(&x)).count() as f64 / xs.len() as f64;
        assert!((mid - 0.32).abs() < 0.02, "middle-bin mass {mid}");
    }

    #[test]
    fn manual_plans_are_valid_groups() {
        let inst = small_instance(2);
        let planner = ManualPlanner::new();
        for seed in 0..10 {
            let out = planner.plan(&inst, None, seed);
            let group = out.group.expect("feasible instance");
            assert_eq!(group.len(), 7);
            assert!(out.evaluations > 0);
            assert!(out.modeled_seconds > 0.0);
        }
    }

    #[test]
    fn pinned_initiator_is_always_included() {
        let inst = small_instance(3);
        let planner = ManualPlanner::new();
        for seed in 0..10 {
            let out = planner.plan(&inst, Some(NodeId(5)), seed);
            assert!(out.group.unwrap().contains(NodeId(5)));
        }
    }

    #[test]
    fn manual_quality_trails_a_thorough_search() {
        // The §5.2 headline: manual ≈ 66% of CBAS-ND. We check the
        // direction (manual ≤ solver) and a substantial average gap.
        use waso_algos::{CbasNd, CbasNdConfig, Solver};
        let inst = small_instance(4);
        let planner = ManualPlanner::new();
        let trials = 12;
        let mut algo_sum = 0.0;
        let mut manual_sum = 0.0;
        for seed in 0..trials {
            let mut solver = CbasNd::new(CbasNdConfig::fast());
            algo_sum += solver
                .solve_seeded(&inst, seed)
                .unwrap()
                .group
                .willingness();
            manual_sum += planner.plan(&inst, None, seed).group.unwrap().willingness();
        }
        let algo = algo_sum / trials as f64;
        let manual_avg = manual_sum / trials as f64;
        assert!(
            manual_avg < algo,
            "manual {manual_avg:.3} should trail the solver {algo:.3}"
        );
    }

    #[test]
    fn fatigue_triggers_on_large_problems() {
        let g = synthetic::facebook_like_n(400, 5);
        let inst = WasoInstance::new(g, 25).unwrap();
        let planner = ManualPlanner::with_config(ManualPlannerConfig {
            patience: 40,
            ..ManualPlannerConfig::default()
        });
        let out = planner.plan(&inst, None, 1);
        assert!(out.gave_up, "patience 40 must be exhausted by k=25");
        assert_eq!(out.group.unwrap().len(), 25);
    }

    #[test]
    fn modeled_time_grows_with_problem_size() {
        let planner = ManualPlanner::new();
        let small = planner.plan(&small_instance(6), None, 2);
        let g = synthetic::facebook_like_n(150, 6);
        let big_inst = WasoInstance::new(g, 13).unwrap();
        let big = planner.plan(&big_inst, None, 2);
        assert!(big.modeled_seconds > small.modeled_seconds);
    }

    #[test]
    fn opinions_partition_correctly() {
        assert_eq!(Opinion::judge(10.0, 12.0), Opinion::Better);
        assert_eq!(Opinion::judge(10.0, 10.2), Opinion::Acceptable);
        assert_eq!(Opinion::judge(10.0, 9.8), Opinion::Acceptable);
        assert_eq!(Opinion::judge(10.0, 8.0), Opinion::NotAcceptable);
        // Tiny manual willingness: tolerance floor keeps judging sane.
        assert_eq!(Opinion::judge(0.0, 0.0), Opinion::Acceptable);
    }

    #[test]
    fn study_problems_are_well_formed() {
        for seed in 0..5 {
            let p = study_problem(25, 7, seed);
            assert!(realized_size(&p) <= 25);
            assert!(realized_size(&p) >= 7);
            assert_eq!(p.initiator, NodeId(0));
            assert!((0.37..0.66).contains(&p.lambda));
            assert_eq!(p.instance.k(), 7);
        }
    }

    #[test]
    fn study_problem_is_deterministic() {
        let a = study_problem(20, 7, 9);
        let b = study_problem(20, 7, 9);
        assert_eq!(a.instance.graph(), b.instance.graph());
        assert_eq!(a.lambda, b.lambda);
    }
}

//! # waso-datasets
//!
//! The evaluation's data substrate (§5.1–5.2), rebuilt synthetically.
//!
//! The paper evaluates on three crawled networks — Facebook New Orleans
//! (90,269 users), DBLP (511,163 nodes / 1,871,070 edges) and Flickr
//! (1,846,198 nodes / 22,613,981 edges) — none of which are
//! redistributable. [`synthetic`] regenerates their statistical shape
//! (size, mean degree, heavy tails, clustering regime) and applies the
//! paper's score models (power-law interests β = 2.5, common-neighbour
//! tightness). [`userstudy`] replaces the 137-participant Facebook study
//! with a calibrated bounded-rationality simulation (see DESIGN.md §3 for
//! both substitution arguments).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod external;
pub mod synthetic;
pub mod userstudy;

pub use external::{load_edge_list, ExternalDataset};
pub use synthetic::{
    dblp_like, facebook_like, flickr_like, planted_partition_like, DatasetSpec, Scale,
};
pub use userstudy::{ManualOutcome, ManualPlanner, ManualPlannerConfig, Opinion};

//! Synthetic stand-ins for the paper's three crawled networks.
//!
//! What the solvers consume is `(topology, η, τ)`. The evaluation's
//! qualitative claims hinge on three structural properties, which these
//! generators reproduce:
//!
//! * **density regime** — RGreedy's running time inverts between Facebook
//!   (avg degree 26.1) and DBLP (sparse, |E|/n = 3.66) precisely because of
//!   frontier growth (§5.3.2); Flickr sits back at Facebook-like density
//!   (avg degree ≈ 24.5), which the paper uses to explain the similar time
//!   curves (§5.3.3);
//! * **heavy-tailed degrees** — hubs make start-node selection matter;
//!   preferential attachment supplies the tail for the friendship networks,
//!   planted communities the clustered sparsity of co-authorship;
//! * **score models** — power-law interests (β = 2.5, \[5\]) and
//!   common-neighbour tightness (\[3\]), both normalized (§5.1).

use rand::rngs::StdRng;
use rand::SeedableRng;
use waso_graph::{generate, ScoreModel, SocialGraph};

/// Experiment scale: how much of the paper's dataset size to materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized (hundreds of nodes) — seconds end to end.
    Smoke,
    /// Laptop default (thousands of nodes) — the shipped EXPERIMENTS.md
    /// numbers use this.
    Small,
    /// The paper's full node counts. Memory- and time-hungry.
    Paper,
}

/// A named dataset recipe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Node count at each scale: (smoke, small, paper).
    pub nodes: (usize, usize, usize),
    /// Mean degree the generator targets (`2|E|/n`).
    pub target_mean_degree: f64,
}

/// Facebook New Orleans (§5.1): 90,269 users, avg node degree 26.1.
pub const FACEBOOK: DatasetSpec = DatasetSpec {
    name: "facebook-like",
    nodes: (300, 2_000, 90_269),
    target_mean_degree: 26.1,
};

/// DBLP (§5.1): 511,163 nodes, 1,871,070 edges (avg degree 2|E|/n ≈ 7.3;
/// the paper quotes |E|/n = 3.66).
pub const DBLP: DatasetSpec = DatasetSpec {
    name: "dblp-like",
    nodes: (500, 5_000, 511_163),
    target_mean_degree: 7.3,
};

/// Flickr (§5.1): 1,846,198 nodes, 22,613,981 edges (avg degree ≈ 24.5).
pub const FLICKR: DatasetSpec = DatasetSpec {
    name: "flickr-like",
    nodes: (500, 5_000, 1_846_198),
    target_mean_degree: 24.5,
};

/// Planted-partition benchmark workload (not one of the paper's crawls):
/// ~50-person communities with near-uniform internal degrees, the regime
/// where OCBA's budget concentrates on whole communities rather than hubs.
/// The second workload of the engine-throughput trajectory
/// (`BENCH_engine.json`) precisely because pruning behaves differently
/// here than on the heavy-tailed BA-style graphs.
pub const PLANTED: DatasetSpec = DatasetSpec {
    name: "planted-partition",
    nodes: (300, 2_000, 100_000),
    target_mean_degree: 16.0,
};

impl DatasetSpec {
    /// Node count at `scale`.
    pub fn node_count(&self, scale: Scale) -> usize {
        match scale {
            Scale::Smoke => self.nodes.0,
            Scale::Small => self.nodes.1,
            Scale::Paper => self.nodes.2,
        }
    }
}

/// Facebook-like network at a named scale.
///
/// ```
/// use waso_datasets::synthetic::{facebook_like, Scale};
/// use waso_graph::metrics;
///
/// let g = facebook_like(Scale::Smoke, 1);
/// assert_eq!(g.num_nodes(), 300);
/// let stats = metrics::degree_stats(&g).unwrap();
/// // Mean degree tracks the New Orleans crawl's 26.1.
/// assert!((stats.mean - 26.1).abs() < 5.0);
/// ```
pub fn facebook_like(scale: Scale, seed: u64) -> SocialGraph {
    facebook_like_n(FACEBOOK.node_count(scale), seed)
}

/// Facebook-like network with an explicit node count (the Figure 5(c)
/// network-size sweep). Community-structured preferential attachment
/// ([`generate::community_ba`]): ~150-person communities of *varying*
/// internal density (attachment 6..=18, mean ≈ 12 → internal degree ≈ 24)
/// plus ~2 weak ties per node, totalling the target mean degree ≈ 26.
/// The density variance matters: it is what separates multi-start sampling
/// from greedy on real friendship graphs (see DESIGN.md §3).
pub fn facebook_like_n(n: usize, seed: u64) -> SocialGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let community = 150.min(n.max(3));
    let topo = if n < 10 {
        generate::barabasi_albert(n, attach_for(n, FACEBOOK.target_mean_degree), &mut rng)
    } else {
        let hi = 18usize.min((community - 1) / 2).max(2);
        generate::community_ba(n, community, 6.min(hi), hi, 2.0, &mut rng)
    };
    ScoreModel::paper_default().realize(&topo, &mut rng)
}

/// DBLP-like network at a named scale.
pub fn dblp_like(scale: Scale, seed: u64) -> SocialGraph {
    dblp_like_n(DBLP.node_count(scale), seed)
}

/// DBLP-like network with an explicit node count: planted co-authorship
/// communities (≈ 40 nodes each), most edges inside a community, the rest
/// across — sparse and clustered like co-authorship graphs.
pub fn dblp_like_n(n: usize, seed: u64) -> SocialGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let communities = (n / 40).max(1);
    let deg_in = (DBLP.target_mean_degree * 0.8).min(n as f64 - 1.0);
    let deg_out = DBLP.target_mean_degree * 0.2;
    let topo = generate::planted_communities(n, communities, deg_in, deg_out, &mut rng);
    ScoreModel::paper_default().realize(&topo, &mut rng)
}

/// Flickr-like network at a named scale.
pub fn flickr_like(scale: Scale, seed: u64) -> SocialGraph {
    flickr_like_n(FLICKR.node_count(scale), seed)
}

/// Flickr-like network with an explicit node count: community-structured
/// preferential attachment at Flickr's density (the paper notes its degree
/// profile is Facebook-like, §5.3.3) with larger interest groups, and
/// *asymmetric* tightness — Flickr contacts are directed, so
/// `τ_{u,v} ≠ τ_{v,u}` exercises the asymmetric code paths.
pub fn flickr_like_n(n: usize, seed: u64) -> SocialGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let community = 250.min(n.max(3));
    let topo = if n < 10 {
        generate::barabasi_albert(n, attach_for(n, FLICKR.target_mean_degree), &mut rng)
    } else {
        let hi = 17usize.min((community - 1) / 2).max(2);
        generate::community_ba(n, community, 5.min(hi), hi, 2.0, &mut rng)
    };
    ScoreModel::paper_asymmetric().realize(&topo, &mut rng)
}

/// Planted-partition network at a named scale.
pub fn planted_partition_like(scale: Scale, seed: u64) -> SocialGraph {
    planted_partition_like_n(PLANTED.node_count(scale), seed)
}

/// Planted-partition network with an explicit node count
/// ([`waso_graph::generate::planted_partition`]): blocks of ≈ 50 nodes,
/// each intra-block pair wired with the probability that yields internal
/// degree ≈ 12, plus cross-block pairs contributing ≈ 4 more — the
/// [`PLANTED`] target mean degree of 16 with near-uniform internal
/// degrees (contrast [`facebook_like_n`]'s heavy-tailed communities).
pub fn planted_partition_like_n(n: usize, seed: u64) -> SocialGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let size = 50.min(n.max(2));
    let communities = n.div_ceil(size).max(1);
    let intra_target = PLANTED.target_mean_degree * 0.75; // 12 of 16
    let p_in = (intra_target / (size.saturating_sub(1)).max(1) as f64).min(1.0);
    let cross_span = n.saturating_sub(size).max(1);
    let p_out = ((PLANTED.target_mean_degree - intra_target) / cross_span as f64).min(1.0);
    let topo = generate::planted_partition(n, communities, p_in, p_out, &mut rng);
    ScoreModel::paper_default().realize(&topo, &mut rng)
}

/// Attachment parameter giving mean degree ≈ `target` (BA: `2m` per node
/// asymptotically), clamped for tiny test graphs.
fn attach_for(n: usize, target: f64) -> usize {
    let m = (target / 2.0).round() as usize;
    m.clamp(1, (n.saturating_sub(1)).max(1) / 2 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_graph::{metrics, traversal};

    #[test]
    fn facebook_like_hits_target_density() {
        let g = facebook_like(Scale::Smoke, 1);
        assert_eq!(g.num_nodes(), 300);
        let stats = metrics::degree_stats(&g).unwrap();
        assert!(
            (stats.mean - FACEBOOK.target_mean_degree).abs() < 4.0,
            "mean degree {}",
            stats.mean
        );
        assert!(traversal::is_connected(&g), "BA graphs are connected");
    }

    #[test]
    fn facebook_like_is_heavy_tailed() {
        // Community-local hubs: the tail is bounded by the community size,
        // but hubs still dwarf the mean (an ER graph of this density would
        // have max/mean ≈ 1.8).
        let g = facebook_like(Scale::Small, 2);
        let stats = metrics::degree_stats(&g).unwrap();
        assert!(
            stats.max as f64 > 2.2 * stats.mean,
            "hub degree {} vs mean {}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn facebook_like_has_varying_community_density() {
        // The greedy-vs-sampling separation relies on communities of
        // different quality; verify the per-block internal degree varies.
        let g = facebook_like(Scale::Small, 11);
        let block = 150;
        let blocks = g.num_nodes() / block;
        let mut internal = vec![0usize; blocks];
        for (u, v, _, _) in g.undirected_edges() {
            let (cu, cv) = (u.index() / block, v.index() / block);
            if cu == cv && cu < blocks {
                internal[cu] += 1;
            }
        }
        let min = *internal.iter().min().unwrap();
        let max = *internal.iter().max().unwrap();
        assert!(max as f64 > 1.5 * min as f64, "{internal:?}");
    }

    #[test]
    fn dblp_like_is_sparse_and_clustered() {
        let g = dblp_like(Scale::Small, 3);
        let stats = metrics::degree_stats(&g).unwrap();
        assert!(
            (stats.mean - DBLP.target_mean_degree).abs() < 2.0,
            "mean degree {}",
            stats.mean
        );
        // Far sparser than the Facebook-like graph.
        let fb = facebook_like(Scale::Smoke, 3);
        let fb_stats = metrics::degree_stats(&fb).unwrap();
        assert!(stats.mean < fb_stats.mean / 2.0);
    }

    #[test]
    fn flickr_like_has_asymmetric_tightness() {
        let g = flickr_like(Scale::Smoke, 4);
        let asym = g
            .undirected_edges()
            .filter(|&(_, _, a, b)| (a - b).abs() > 1e-12)
            .count();
        assert!(
            asym * 2 > g.num_edges(),
            "most edges should be asymmetric, got {asym}/{}",
            g.num_edges()
        );
    }

    #[test]
    fn planted_partition_like_hits_target_density() {
        let g = planted_partition_like(Scale::Smoke, 6);
        assert_eq!(g.num_nodes(), PLANTED.node_count(Scale::Smoke));
        let stats = metrics::degree_stats(&g).unwrap();
        assert!(
            (stats.mean - PLANTED.target_mean_degree).abs() < 3.0,
            "mean degree {}",
            stats.mean
        );
        // Near-uniform internal degrees: no BA-style hubs.
        let fb = facebook_like(Scale::Smoke, 6);
        let fb_stats = metrics::degree_stats(&fb).unwrap();
        let pp_ratio = stats.max as f64 / stats.mean;
        let fb_ratio = fb_stats.max as f64 / fb_stats.mean;
        assert!(
            pp_ratio < fb_ratio,
            "planted partition ({pp_ratio:.2}) should be flatter than BA ({fb_ratio:.2})"
        );
    }

    #[test]
    fn planted_partition_like_is_deterministic() {
        assert_eq!(
            planted_partition_like(Scale::Smoke, 9),
            planted_partition_like(Scale::Smoke, 9)
        );
    }

    #[test]
    fn scores_are_normalized() {
        for g in [
            facebook_like(Scale::Smoke, 5),
            dblp_like(Scale::Smoke, 5),
            flickr_like(Scale::Smoke, 5),
            planted_partition_like(Scale::Smoke, 5),
        ] {
            let max_eta = g.interests().iter().cloned().fold(f64::MIN, f64::max);
            assert!((max_eta - 1.0).abs() < 1e-9, "interest max {max_eta}");
            for (_, _, a, b) in g.undirected_edges() {
                assert!((0.0..=1.0 + 1e-9).contains(&a));
                assert!((0.0..=1.0 + 1e-9).contains(&b));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = facebook_like(Scale::Smoke, 7);
        let b = facebook_like(Scale::Smoke, 7);
        assert_eq!(a, b);
        let c = facebook_like(Scale::Smoke, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn spec_node_counts() {
        assert_eq!(FACEBOOK.node_count(Scale::Paper), 90_269);
        assert_eq!(DBLP.node_count(Scale::Smoke), 500);
        assert_eq!(FLICKR.node_count(Scale::Small), 5_000);
    }

    #[test]
    fn attach_parameter_is_sane_for_tiny_graphs() {
        assert_eq!(attach_for(10, 26.1), 5);
        assert!(attach_for(4, 26.1) < 4);
        assert_eq!(attach_for(10_000, 26.1), 13);
    }
}

//! Loading the paper's *real* datasets, if you have them.
//!
//! The Facebook New Orleans, DBLP and Flickr crawls used in §5.1 are
//! distributed as whitespace-separated edge lists (the MPI-SWS "wosn2009" /
//! "imc2007" releases and the SNAP DBLP snapshot). They cannot be
//! redistributed here — the synthetic stand-ins in [`crate::synthetic`]
//! replace them — but if you have the files, this module turns them into
//! scored [`SocialGraph`]s with exactly the paper's §5.1 score models, so
//! every experiment in `waso-bench` can run against the real networks.
//!
//! Accepted format, one edge per line:
//!
//! ```text
//! # comments and blank lines are skipped
//! 0   1
//! 0   2   [extra columns ignored]
//! ```
//!
//! Node ids may be arbitrary non-negative integers; they are compacted to
//! dense ids (the returned mapping recovers the originals). Duplicate edges
//! and self-loops are dropped, matching how the paper's models treat simple
//! graphs.

use std::io::BufRead;
use std::path::Path;

use rand::rngs::StdRng;
use rand::SeedableRng;
use waso_graph::{GraphTopology, ScoreModel, SocialGraph};

/// A loaded external network: the scored graph plus the original node ids.
#[derive(Debug, Clone)]
pub struct ExternalDataset {
    /// The scored graph (dense ids `0..n`).
    pub graph: SocialGraph,
    /// `original_ids[dense_id]` = the id used in the source file.
    pub original_ids: Vec<u64>,
}

/// Errors while loading an edge-list file.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The file contained no edges.
    Empty,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { line, content } => {
                write!(f, "line {line}: cannot parse edge '{content}'")
            }
            LoadError::Empty => write!(f, "edge list contains no edges"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parses a whitespace-separated edge list into a topology plus the
/// original-id mapping.
pub fn parse_edge_list<R: BufRead>(input: R) -> Result<(GraphTopology, Vec<u64>), LoadError> {
    let mut id_map: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();

    for (idx, line) in input.lines().enumerate() {
        let line = line?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut tok = body.split_whitespace();
        let (Some(a), Some(b)) = (tok.next(), tok.next()) else {
            return Err(LoadError::Parse {
                line: idx + 1,
                content: body.to_string(),
            });
        };
        let parse = |s: &str| -> Result<u64, LoadError> {
            s.parse().map_err(|_| LoadError::Parse {
                line: idx + 1,
                content: body.to_string(),
            })
        };
        let (a, b) = (parse(a)?, parse(b)?);
        let mut dense = |orig: u64| -> u32 {
            *id_map.entry(orig).or_insert_with(|| {
                let id = original_ids.len() as u32;
                original_ids.push(orig);
                id
            })
        };
        let (u, v) = (dense(a), dense(b));
        edges.push((u, v));
    }
    if edges.is_empty() {
        return Err(LoadError::Empty);
    }
    // GraphTopology::new deduplicates and drops self-loops.
    let n = original_ids.len();
    Ok((GraphTopology::new(n, edges), original_ids))
}

/// Loads an edge-list file and applies a score model (§5.1's
/// [`ScoreModel::paper_default`] reproduces the paper's setup; pass
/// [`ScoreModel::paper_asymmetric`] for directed-contact networks like
/// Flickr). Deterministic given `seed`.
pub fn load_edge_list(
    path: &Path,
    model: ScoreModel,
    seed: u64,
) -> Result<ExternalDataset, LoadError> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let (topo, original_ids) = parse_edge_list(reader)?;
    let mut rng = StdRng::seed_from_u64(seed);
    Ok(ExternalDataset {
        graph: model.realize(&topo, &mut rng),
        original_ids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<(GraphTopology, Vec<u64>), LoadError> {
        parse_edge_list(text.as_bytes())
    }

    #[test]
    fn parses_basic_edge_list() {
        let (topo, ids) = parse("0 1\n0 2\n1 2\n").unwrap();
        assert_eq!(topo.n, 3);
        assert_eq!(topo.num_edges(), 3);
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn compacts_sparse_ids_in_first_seen_order() {
        let (topo, ids) = parse("1000 7\n7 999999\n").unwrap();
        assert_eq!(topo.n, 3);
        assert_eq!(ids, vec![1000, 7, 999999]);
        // Dense edge (0,1) corresponds to 1000-7.
        assert!(topo.edges.contains(&(0, 1)));
    }

    #[test]
    fn skips_comments_blanks_and_extra_columns() {
        let (topo, _) = parse("# snap header\n\n0 1 1234567890 weight\n1 2\n").unwrap();
        assert_eq!(topo.num_edges(), 2);
    }

    #[test]
    fn drops_duplicates_and_self_loops() {
        let (topo, _) = parse("0 1\n1 0\n0 0\n0 1\n").unwrap();
        assert_eq!(topo.n, 2);
        assert_eq!(topo.num_edges(), 1);
    }

    #[test]
    fn reports_malformed_lines() {
        let err = parse("0 1\nnot an edge\n").unwrap_err();
        match err {
            LoadError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert!(content.contains("not an edge"));
            }
            other => panic!("expected parse error, got {other}"),
        }
        let err = parse("0\n").unwrap_err();
        assert!(matches!(err, LoadError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(parse("# only comments\n"), Err(LoadError::Empty)));
    }

    #[test]
    fn load_applies_the_score_model() {
        let dir = std::env::temp_dir().join("waso-external-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.txt");
        std::fs::write(&path, "0 1\n1 2\n2 0\n2 3\n").unwrap();

        let ds = load_edge_list(&path, ScoreModel::paper_default(), 7).unwrap();
        assert_eq!(ds.graph.num_nodes(), 4);
        assert_eq!(ds.graph.num_edges(), 4);
        // §5.1 scores: normalized interests, common-neighbour tightness.
        let max_eta = ds
            .graph
            .interests()
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        assert!((max_eta - 1.0).abs() < 1e-9);
        // Deterministic per seed.
        let again = load_edge_list(&path, ScoreModel::paper_default(), 7).unwrap();
        assert_eq!(ds.graph, again.graph);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

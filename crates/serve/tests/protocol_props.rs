//! Property tests: every protocol message round-trips through its wire
//! form bit-exactly, and framing survives arbitrary payloads.

use proptest::collection;
use proptest::prelude::*;

use waso::algos::Termination;
use waso_serve::protocol::{read_frame, write_frame, ErrCode, Request, Response, StatsReply};

/// A lowercase identifier-ish token (tenant names).
fn token(seed: &[u8]) -> String {
    seed.iter().map(|&b| (b'a' + (b % 26)) as char).collect()
}

/// A spec-shaped token: the characters `SolverSpec` grammar uses, never
/// whitespace.
fn spec_token(seed: &[u8]) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789:=,.-_";
    seed.iter()
        .map(|&b| CHARS[b as usize % CHARS.len()] as char)
        .collect()
}

/// Arbitrary printable text with spaces and newlines (error messages).
fn message(seed: &[u8]) -> String {
    seed.iter()
        .map(|&b| match b % 12 {
            0 => ' ',
            1 => '\n',
            v => (b'a' + v) as char,
        })
        .collect()
}

const CODES: [ErrCode; 8] = [
    ErrCode::BadFrame,
    ErrCode::BadRequest,
    ErrCode::UnknownTenant,
    ErrCode::Quota,
    ErrCode::Shed,
    ErrCode::BadSpec,
    ErrCode::UnknownJob,
    ErrCode::Failed,
];

const TERMINATIONS: [Termination; 3] = [
    Termination::Completed,
    Termination::Deadline,
    Termination::Cancelled,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn requests_round_trip(
        kind in 0u8..5,
        tenant_seed in collection::vec(0u8..=255, 1..10),
        spec_seed in collection::vec(0u8..=255, 1..24),
        job in any::<u64>(),
    ) {
        let request = match kind {
            0 => Request::Submit {
                tenant: token(&tenant_seed),
                spec: spec_token(&spec_seed),
            },
            1 => Request::Poll { job },
            2 => Request::Wait { job },
            3 => Request::Cancel { job },
            _ => Request::Stats,
        };
        let wire = request.to_string();
        prop_assert_eq!(Request::parse(&wire).unwrap(), request);
    }

    #[test]
    fn responses_round_trip(
        kind in 0u8..7,
        job in any::<u64>(),
        stages in any::<u32>(),
        samples in any::<u64>(),
        willingness in -1.0e15..1.0e15f64,
        nodes in collection::vec(0u32..2_000_000, 0..12),
        has_incumbent: bool,
        counters in collection::vec(0u64..10_000_000, 10),
        code_pick in 0u8..8,
        msg_seed in collection::vec(0u8..=255, 0..48),
        term_pick in 0u8..3,
    ) {
        let response = match kind {
            0 => Response::Job(job),
            1 => Response::Queued,
            2 => Response::Running {
                stages,
                samples,
                incumbent: has_incumbent.then(|| (willingness, nodes.clone())),
            },
            3 => Response::Done {
                termination: TERMINATIONS[term_pick as usize],
                willingness,
                nodes: nodes.clone(),
                samples,
            },
            4 => Response::Cancelled,
            5 => Response::Stats(StatsReply {
                queued: counters[0],
                running: counters[1],
                finished: counters[2],
                shed: counters[3],
                tenants: counters[4],
                pool_queued: counters[5],
                pool_workers: counters[6],
                memo_hits: counters[7],
                memo_misses: counters[8],
                memo_invalidated: counters[9],
            }),
            _ => Response::Error {
                code: CODES[code_pick as usize],
                message: message(&msg_seed),
            },
        };
        let wire = response.to_string();
        prop_assert_eq!(Response::parse(&wire).unwrap(), response);
    }

    #[test]
    fn frames_round_trip_arbitrary_payloads(
        payload_seed in collection::vec(0u8..=255, 0..256),
        extra_seed in collection::vec(0u8..=255, 0..64),
    ) {
        // Payloads with spaces, newlines, and multi-byte characters —
        // the length prefix, not content, must delimit them.
        let payloads = [message(&payload_seed), format!("ü{}", message(&extra_seed))];
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let mut reader = std::io::BufReader::new(&buf[..]);
        for p in &payloads {
            let got = read_frame(&mut reader).unwrap().unwrap().unwrap();
            prop_assert_eq!(&got, p);
        }
        prop_assert!(read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn parsers_never_panic_on_garbage(garbage_seed in collection::vec(0u8..=255, 0..64)) {
        // Totality: arbitrary text must produce Ok or Err, never a panic.
        let text = message(&garbage_seed);
        let _ = Request::parse(&text);
        let _ = Response::parse(&text);
    }
}

//! Integration tests for the serving front door: multi-tenant e2e over
//! a real socket, quota enforcement, round-robin fairness, load
//! shedding against a saturated width-1 pool, and the typed error
//! codes.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use waso::prelude::*;
use waso_serve::protocol::{ErrCode, Request, Response};
use waso_serve::{Client, ServeConfig, Server, TenantConfig};

fn test_graph(n: usize) -> SocialGraph {
    waso_datasets::synthetic::facebook_like_n(n, 3)
}

fn session(n: usize, k: usize, seed: u64, pool: &Arc<SharedPool>) -> WasoSession {
    WasoSession::new(test_graph(n))
        .k(k)
        .seed(seed)
        .attach_pool(Arc::clone(pool))
}

fn submit(server: &Server, tenant: &str, spec: &str) -> Response {
    server.handle(Request::Submit {
        tenant: tenant.to_string(),
        spec: spec.to_string(),
    })
}

fn job_id(response: Response) -> u64 {
    match response {
        Response::Job(id) => id,
        other => panic!("expected JOB, got {other}"),
    }
}

/// Polls until `job` leaves the queue (running or terminal).
fn await_dispatch(server: &Server, job: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match server.handle(Request::Poll { job }) {
            Response::Queued => {
                assert!(Instant::now() < deadline, "job {job} never dispatched");
                std::thread::sleep(Duration::from_millis(1));
            }
            _ => return,
        }
    }
}

/// A spec whose solve runs until cancelled (or for a very long time):
/// one huge stage, so it can only stop via the chunk-granular checks.
fn blocker_spec() -> &'static str {
    "cbas-nd:budget=40000000,stages=1,threads=2"
}

// ---------------------------------------------------------------------
// Acceptance e2e: ≥ 2 tenants, ≥ 8 concurrent requests, one SharedPool,
// results identical to direct WasoSession::solve.
// ---------------------------------------------------------------------

#[test]
fn two_tenants_eight_concurrent_requests_match_direct_solves() {
    const N: usize = 120;
    const K: usize = 5;
    const SEED: u64 = 7;
    let pool = Arc::new(SharedPool::new(3));
    let config = ServeConfig::new(vec![
        TenantConfig::new("alice", 8),
        TenantConfig::new("bob", 8),
    ])
    .max_running(4)
    .shed_queued_jobs(64);
    let mut server = Server::start(session(N, K, SEED, &pool), config);
    let addr = server.listen("127.0.0.1:0").unwrap();

    let requests: Vec<(&str, &str)> = vec![
        ("alice", "cbas-nd:budget=400,stages=4,threads=2"),
        ("bob", "cbas:budget=300,stages=3,threads=2"),
        ("alice", "cbas-nd:budget=500,stages=5"),
        ("bob", "dgreedy"),
        ("alice", "cbas-nd-g:budget=300,stages=3,threads=2"),
        ("bob", "cbas-nd:budget=400,stages=4,threads=2"),
        ("alice", "cbas:budget=200,stages=2"),
        ("bob", "cbas-nd:budget=250,stages=5,patience=3"),
    ];

    // All eight in flight at once, each over its own connection.
    let outcomes: Vec<(usize, Response)> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .enumerate()
            .map(|(i, (tenant, spec))| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let job = match client.submit(tenant, spec).unwrap() {
                        Response::Job(id) => id,
                        other => panic!("{tenant}/{spec} refused: {other}"),
                    };
                    (i, client.wait(job).unwrap())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, response) in outcomes {
        let (tenant, spec) = requests[i];
        let Response::Done {
            termination,
            willingness,
            nodes,
            samples,
        } = response
        else {
            panic!("{tenant}/{spec}: expected DONE, got weird response");
        };
        assert_eq!(termination, Termination::Completed, "{spec}");
        // The ground truth: the same solve made directly on an
        // identically-configured session (fresh pool — the shared pool
        // must be unobservable in results).
        let direct = WasoSession::new(test_graph(N))
            .k(K)
            .seed(SEED)
            .solve_str(spec)
            .unwrap();
        let mut direct_nodes: Vec<u32> = direct.group.nodes().iter().map(|v| v.0).collect();
        direct_nodes.sort_unstable();
        assert_eq!(nodes, direct_nodes, "{tenant}/{spec}: groups differ");
        assert_eq!(samples, direct.stats.samples_drawn, "{tenant}/{spec}");
        assert!(
            (willingness - direct.group.willingness()).abs() < 1e-9,
            "{tenant}/{spec}: willingness drifted"
        );
    }
    server.shutdown();
}

// ---------------------------------------------------------------------
// Quota
// ---------------------------------------------------------------------

#[test]
fn quota_violations_are_typed_and_clear_when_jobs_finish() {
    let pool = Arc::new(SharedPool::new(2));
    let config = ServeConfig::new(vec![
        TenantConfig::new("alice", 2),
        TenantConfig::new("bob", 1),
    ])
    .max_running(1)
    .shed_queued_jobs(32);
    let server = Server::start(session(60, 4, 3, &pool), config);

    // Alice fills her quota: one running (max_running = 1), one queued.
    let a1 = job_id(submit(&server, "alice", blocker_spec()));
    let a2 = job_id(submit(&server, "alice", "cbas-nd:budget=100,stages=2"));
    // The third is refused with the typed code — and the message names
    // the tenant, not just "error".
    match submit(&server, "alice", "dgreedy") {
        Response::Error { code, message } => {
            assert_eq!(code, ErrCode::Quota);
            assert!(message.contains("alice"), "{message}");
        }
        other => panic!("expected ERR QUOTA, got {other}"),
    }
    // Quotas are per tenant: bob is unaffected by alice's backlog.
    let b1 = job_id(submit(&server, "bob", "cbas-nd:budget=100,stages=2"));

    // Freeing a slot readmits alice: cancel the blocker, wait for her
    // queued job to finish, then submit again.
    server.handle(Request::Cancel { job: a1 });
    server.handle(Request::Wait { job: a1 });
    server.handle(Request::Wait { job: a2 });
    let a3 = job_id(submit(&server, "alice", "dgreedy"));
    for job in [b1, a3] {
        match server.handle(Request::Wait { job }) {
            Response::Done { .. } => {}
            other => panic!("job {job}: expected DONE, got {other}"),
        }
    }
}

// ---------------------------------------------------------------------
// Fairness
// ---------------------------------------------------------------------

#[test]
fn dispatch_is_round_robin_across_tenants() {
    let pool = Arc::new(SharedPool::new(2));
    let config = ServeConfig::new(vec![
        TenantConfig::new("alice", 10),
        TenantConfig::new("bob", 10),
    ])
    .max_running(1)
    .shed_queued_jobs(32);
    let server = Server::start(session(60, 4, 3, &pool), config);

    // A blocker occupies the only running slot...
    let blocker = job_id(submit(&server, "alice", blocker_spec()));
    await_dispatch(&server, blocker);
    // ...then alice floods the queue and bob submits one job, last.
    // Every queued job is itself long-running (serial, so the pool
    // stays out of the picture): with max_running = 1 each holds the
    // slot until cancelled, which makes the dispatch order observable
    // without racing the solves.
    let slow = "cbas-nd:budget=40000000,stages=1";
    let a_jobs: Vec<u64> = (0..3)
        .map(|_| job_id(submit(&server, "alice", slow)))
        .collect();
    let b_job = job_id(submit(&server, "bob", slow));

    // Release the slot and watch dispatch order: record each job as it
    // first leaves the queue, then cancel it to admit the next.
    server.handle(Request::Cancel { job: blocker });
    let mut order = Vec::new();
    let watched: Vec<u64> = a_jobs.iter().copied().chain([b_job]).collect();
    let deadline = Instant::now() + Duration::from_secs(60);
    while order.len() < watched.len() {
        assert!(Instant::now() < deadline, "jobs never dispatched");
        for &job in &watched {
            if order.contains(&job) {
                continue;
            }
            if !matches!(server.handle(Request::Poll { job }), Response::Queued) {
                order.push(job);
                server.handle(Request::Cancel { job });
            }
        }
        std::thread::yield_now();
    }
    // The blocker consumed alice's round-robin turn, so bob's job —
    // submitted after alice's entire flood — is dispatched first.
    assert_eq!(
        order[0], b_job,
        "bob's job should pre-empt alice's flood (order {order:?})"
    );
    assert_eq!(
        &order[1..],
        &a_jobs[..],
        "alice keeps FIFO within her queue"
    );
}

// ---------------------------------------------------------------------
// Load shedding against a saturated width-1 pool
// ---------------------------------------------------------------------

#[test]
fn saturation_sheds_submissions_until_the_backlog_drains() {
    // A width-1 pool: one worker serves every tenant, so a single huge
    // pooled job keeps an in-flight chunk backlog the whole time.
    let pool = Arc::new(SharedPool::new(1));
    let config = ServeConfig::new(vec![TenantConfig::new("alice", 10)])
        .max_running(1)
        .shed_queued_jobs(64)
        .shed_pool_depth(0);
    let server = Server::start(session(60, 4, 3, &pool), config);

    let blocker = job_id(submit(&server, "alice", blocker_spec()));
    await_dispatch(&server, blocker);
    // Wait until the pool reports in-flight chunks — the saturation
    // signal the admission check reads.
    let deadline = Instant::now() + Duration::from_secs(20);
    while pool.stats().total_queued() == 0 {
        assert!(Instant::now() < deadline, "pool never saturated");
        std::thread::yield_now();
    }
    match submit(&server, "alice", "dgreedy") {
        Response::Error { code, .. } => assert_eq!(code, ErrCode::Shed),
        other => panic!("expected ERR SHED, got {other}"),
    }
    // The refusal is counted.
    match server.handle(Request::Stats) {
        Response::Stats(stats) => assert_eq!(stats.shed, 1),
        other => panic!("expected STATS, got {other}"),
    }

    // Draining the backlog reopens admission.
    server.handle(Request::Cancel { job: blocker });
    server.handle(Request::Wait { job: blocker });
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match submit(&server, "alice", "dgreedy") {
            Response::Job(job) => {
                server.handle(Request::Wait { job });
                break;
            }
            Response::Error {
                code: ErrCode::Shed,
                ..
            } => {
                // The pool backlog drains asynchronously after cancel.
                assert!(Instant::now() < deadline, "admission never reopened");
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("expected JOB or ERR SHED, got {other}"),
        }
    }
}

#[test]
fn queue_depth_alone_sheds_independently_of_the_pool() {
    // No shed_pool_depth here, and the blocker plus queued jobs are all
    // serial — the deterministic queue-depth bound is what trips.
    let pool = Arc::new(SharedPool::new(2));
    let config = ServeConfig::new(vec![TenantConfig::new("alice", 10)])
        .max_running(1)
        .shed_queued_jobs(2);
    let server = Server::start(session(60, 4, 3, &pool), config);

    let blocker = job_id(submit(&server, "alice", "cbas-nd:budget=40000000,stages=1"));
    await_dispatch(&server, blocker);
    let q1 = job_id(submit(&server, "alice", "cbas-nd:budget=60,stages=2"));
    let q2 = job_id(submit(&server, "alice", "cbas-nd:budget=60,stages=2"));
    match submit(&server, "alice", "cbas-nd:budget=60,stages=2") {
        Response::Error { code, message } => {
            assert_eq!(code, ErrCode::Shed);
            assert!(message.contains("queued"), "{message}");
        }
        other => panic!("expected ERR SHED, got {other}"),
    }

    // The queue drains once the slot frees; admission reopens.
    server.handle(Request::Cancel { job: blocker });
    for job in [blocker, q1, q2] {
        server.handle(Request::Wait { job });
    }
    let reopened = job_id(submit(&server, "alice", "dgreedy"));
    match server.handle(Request::Wait { job: reopened }) {
        Response::Done { .. } => {}
        other => panic!("expected DONE after drain, got {other}"),
    }
}

// ---------------------------------------------------------------------
// deadline_from_submit counts queue wait
// ---------------------------------------------------------------------

#[test]
fn deadline_from_submit_counts_time_spent_queued() {
    let pool = Arc::new(SharedPool::new(2));
    let config = ServeConfig::new(vec![TenantConfig::new("alice", 10)])
        .max_running(1)
        .shed_queued_jobs(32);
    let server = Server::start(session(60, 4, 3, &pool), config);

    let blocker = job_id(submit(&server, "alice", blocker_spec()));
    await_dispatch(&server, blocker);
    // This job's 50 ms SLA burns entirely in the queue behind the
    // blocker; its single huge stage can never finish in time.
    let sla = job_id(submit(
        &server,
        "alice",
        "cbas-nd:budget=40000000,stages=1,deadline_from_submit=50",
    ));
    std::thread::sleep(Duration::from_millis(150));
    server.handle(Request::Cancel { job: blocker });
    server.handle(Request::Wait { job: blocker });

    // Once dispatched, the already-expired deadline stops the job at
    // its first chunk check — quickly, and with the typed outcome.
    let dispatched = Instant::now();
    let outcome = server.handle(Request::Wait { job: sla });
    assert!(
        dispatched.elapsed() < Duration::from_secs(10),
        "expired deadline did not stop the job promptly"
    );
    match outcome {
        Response::Error { code, message } => {
            assert_eq!(code, ErrCode::Failed);
            assert!(message.contains("deadline"), "{message}");
        }
        other => panic!("expected ERR FAILED (deadline), got {other}"),
    }
}

// ---------------------------------------------------------------------
// Typed protocol errors over a real socket
// ---------------------------------------------------------------------

#[test]
fn protocol_errors_carry_distinct_codes_over_tcp() {
    let pool = Arc::new(SharedPool::new(2));
    let config = ServeConfig::new(vec![TenantConfig::new("alice", 2)]);
    let mut server = Server::start(session(60, 4, 3, &pool), config);
    let addr = server.listen("127.0.0.1:0").unwrap();
    let mut client = Client::connect(addr).unwrap();

    let expect_err = |response: Response, want: ErrCode| match response {
        Response::Error { code, .. } => assert_eq!(code, want),
        other => panic!("expected ERR {}, got {other}", want.as_str()),
    };
    expect_err(
        client.submit("mallory", "dgreedy").unwrap(),
        ErrCode::UnknownTenant,
    );
    expect_err(
        client.submit("alice", "no-such-solver").unwrap(),
        ErrCode::BadSpec,
    );
    expect_err(
        client.submit("alice", "dgreedy:budget=5").unwrap(),
        ErrCode::BadSpec,
    );
    expect_err(client.poll(999).unwrap(), ErrCode::UnknownJob);
    expect_err(client.cancel(999).unwrap(), ErrCode::UnknownJob);

    // A malformed request keeps the connection alive...
    use std::io::Write;
    let raw = std::net::TcpStream::connect(addr).unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let mut writer = raw;
    waso_serve::protocol::write_frame(&mut writer, "FLY ME").unwrap();
    let reply = waso_serve::protocol::read_frame(&mut reader)
        .unwrap()
        .unwrap()
        .unwrap();
    match Response::parse(&reply).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrCode::BadRequest),
        other => panic!("expected ERR BAD_REQUEST, got {other}"),
    }
    // ...and the same connection still serves well-formed requests.
    waso_serve::protocol::write_frame(&mut writer, "STATS").unwrap();
    let reply = waso_serve::protocol::read_frame(&mut reader)
        .unwrap()
        .unwrap()
        .unwrap();
    assert!(matches!(
        Response::parse(&reply).unwrap(),
        Response::Stats(_)
    ));

    // A broken frame gets ERR BAD_FRAME and the connection closes (the
    // stream cannot be resynced).
    let raw = std::net::TcpStream::connect(addr).unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let mut writer = raw;
    writer.write_all(b"not-a-length\ngarbage").unwrap();
    writer.flush().unwrap();
    let reply = waso_serve::protocol::read_frame(&mut reader)
        .unwrap()
        .unwrap()
        .unwrap();
    match Response::parse(&reply).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrCode::BadFrame),
        other => panic!("expected ERR BAD_FRAME, got {other}"),
    }
    assert!(
        waso_serve::protocol::read_frame(&mut reader)
            .unwrap()
            .is_none(),
        "connection should close after a frame error"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------
// Configuration validation
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "duplicate tenant")]
fn duplicate_tenant_names_are_rejected() {
    // SUBMIT resolves tenants by name: a second "alice" could never be
    // addressed, so her quota would be silently dead configuration.
    let _ = ServeConfig::new(vec![
        TenantConfig::new("alice", 2),
        TenantConfig::new("alice", 5),
    ]);
}

// ---------------------------------------------------------------------
// Finished-job retention
// ---------------------------------------------------------------------

#[test]
fn finished_jobs_are_evicted_past_the_retention_cap() {
    let pool = Arc::new(SharedPool::new(2));
    let config = ServeConfig::new(vec![TenantConfig::new("alice", 4)]).retain_finished(2);
    let server = Server::start(session(60, 4, 3, &pool), config);

    // Four jobs run to completion one at a time, so their terminal
    // order (and therefore eviction order) is the submission order.
    let jobs: Vec<u64> = (0..4)
        .map(|_| {
            let job = job_id(submit(&server, "alice", "dgreedy"));
            match server.handle(Request::Wait { job }) {
                Response::Done { .. } => job,
                other => panic!("job {job}: expected DONE, got {other}"),
            }
        })
        .collect();

    // The oldest two fell off the retention window...
    for &job in &jobs[..2] {
        match server.handle(Request::Poll { job }) {
            Response::Error { code, .. } => assert_eq!(code, ErrCode::UnknownJob),
            other => panic!("evicted job {job}: expected ERR UNKNOWN_JOB, got {other}"),
        }
    }
    // ...the newest two still answer, and the counter saw all four.
    for &job in &jobs[2..] {
        match server.handle(Request::Poll { job }) {
            Response::Done { .. } => {}
            other => panic!("retained job {job}: expected DONE, got {other}"),
        }
    }
    match server.handle(Request::Stats) {
        Response::Stats(stats) => assert_eq!(stats.finished, 4),
        other => panic!("expected STATS, got {other}"),
    }
}

// ---------------------------------------------------------------------
// Cancel racing the dispatch window
// ---------------------------------------------------------------------

#[test]
fn cancel_racing_dispatch_never_corrupts_the_accounting() {
    // Submit-then-immediately-cancel repeatedly: with an empty queue and
    // a free slot the dispatcher pops the job at once, so many cancels
    // land in the window between the pop and the Running transition.
    // Quota 1 makes any accounting corruption observable: a leaked
    // inflight slot (or an underflowed one) turns the next SUBMIT into
    // ERR QUOTA, failing `job_id`.
    let pool = Arc::new(SharedPool::new(2));
    let config = ServeConfig::new(vec![TenantConfig::new("alice", 1)]).max_running(1);
    let server = Server::start(session(60, 4, 3, &pool), config);

    for round in 0..50 {
        let job = job_id(submit(&server, "alice", "cbas-nd:budget=60,stages=2"));
        server.handle(Request::Cancel { job });
        match server.handle(Request::Wait { job }) {
            Response::Done { .. } | Response::Cancelled => {}
            other => panic!("round {round}: expected a terminal state, got {other}"),
        }
    }
    match server.handle(Request::Stats) {
        Response::Stats(stats) => {
            assert_eq!(stats.queued, 0);
            assert_eq!(stats.running, 0);
            assert_eq!(stats.finished, 50);
        }
        other => panic!("expected STATS, got {other}"),
    }
}

// ---------------------------------------------------------------------
// Cancel + latest-incumbent watch view through the wire
// ---------------------------------------------------------------------

#[test]
fn polls_expose_the_latest_incumbent_and_cancel_returns_best_so_far() {
    let pool = Arc::new(SharedPool::new(2));
    let config = ServeConfig::new(vec![TenantConfig::new("alice", 4)]).max_running(2);
    let server = Server::start(session(80, 4, 5, &pool), config);

    // Many small stages: incumbents publish often enough that a poll
    // can catch one mid-run on any machine; if the solve wins the race
    // we still verify the terminal state.
    let job = job_id(submit(
        &server,
        "alice",
        "cbas-nd:budget=2000000,stages=400,threads=2",
    ));
    let saw_incumbent = Arc::new(Mutex::new(None::<(f64, Vec<u32>)>));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match server.handle(Request::Poll { job }) {
            Response::Running { incumbent, .. } => {
                if let Some(snapshot) = incumbent {
                    *saw_incumbent.lock().unwrap() = Some(snapshot);
                    break;
                }
            }
            Response::Queued => {}
            // Never observed running — absurdly fast machine; give up
            // on the mid-run half, the cancel half still runs.
            _ => break,
        }
        assert!(Instant::now() < deadline, "job never progressed");
        std::thread::yield_now();
    }
    server.handle(Request::Cancel { job });
    match server.handle(Request::Wait { job }) {
        // Cancelled mid-run with at least one completed stage: the
        // best-so-far group, tagged cancelled.
        Response::Done {
            termination,
            willingness,
            nodes,
            ..
        } => {
            assert_eq!(termination, Termination::Cancelled);
            assert!(!nodes.is_empty());
            if let Some((seen_w, _)) = saw_incumbent.lock().unwrap().clone() {
                assert!(
                    willingness >= seen_w - 1e-9,
                    "final best {willingness} below a mid-run incumbent {seen_w}"
                );
            }
        }
        // The solve stopped before any stage completed.
        Response::Cancelled => {}
        other => panic!("expected DONE or CANCELLED, got {other}"),
    }
}

// ---------------------------------------------------------------------
// Regression: a job that passes admission but fails at dispatch must
// answer a typed error — never panic the dispatcher or kill the
// connection — and the server must keep dispatching afterwards.
// ---------------------------------------------------------------------

#[test]
fn dispatch_time_failure_answers_typed_error_and_server_lives_on() {
    let pool = Arc::new(SharedPool::new(2));
    let config = ServeConfig::new(vec![TenantConfig::new("alice", 4)]).max_running(1);
    // The session requires attendee 0; `cbas` cannot guarantee required
    // attendees, and admission's build dry-run cannot see session-level
    // constraints — so the job is admitted and fails at dispatch.
    let session = session(80, 4, 3, &pool).require([NodeId(0)]);
    let mut server = Server::start(session, config);
    let addr = server.listen("127.0.0.1:0").unwrap();
    let mut client = Client::connect(addr).unwrap();

    let job = job_id(client.submit("alice", "cbas:budget=200,stages=2").unwrap());
    match client.wait(job).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrCode::Failed);
            assert!(!message.is_empty(), "the failure carries its cause");
        }
        other => panic!("expected ERR FAILED, got {other}"),
    }

    // Same wire, and with max_running=1 the next dispatch only happens
    // if the failed job released its running slot: a capable solver
    // completes end-to-end.
    let job = job_id(client.submit("alice", "dgreedy").unwrap());
    match client.wait(job).unwrap() {
        Response::Done { nodes, .. } => {
            assert!(nodes.contains(&0), "required attendee in the answer")
        }
        other => panic!("expected DONE, got {other}"),
    }
    server.shutdown();
}

//! `waso-serve` — serve one WASO instance to many tenants over TCP.
//!
//! ```text
//! waso-serve --graph FILE --k N --tenant NAME=QUOTA [options]
//!
//!   --graph FILE          input in the waso-graph v1 text format
//!   --k N                 group size every solve uses
//!   --tenant NAME=QUOTA   register a tenant with an inflight-job quota
//!                         (repeatable; at least one required)
//!   --listen ADDR         bind address (default 127.0.0.1:7878;
//!                         use port 0 for an ephemeral port)
//!   --seed N              the session seed (default 42)
//!   --pool-threads N      shared-pool worker count (default: available
//!                         parallelism); all tenants share this pool
//!   --max-running N       concurrent dispatch width (default 2)
//!   --shed-queued N       refuse SUBMITs once N jobs are queued
//!                         (default 16)
//!   --shed-pool-depth N   also refuse while the pool's chunk backlog
//!                         exceeds N (off by default)
//! ```
//!
//! The server prints `listening on <addr>` to stdout once bound —
//! scripts using an ephemeral port scrape it from there — and serves
//! until killed. See the crate docs for the protocol.

use std::process::ExitCode;
use std::sync::Arc;

use waso::prelude::*;
use waso_serve::{ServeConfig, Server, TenantConfig};

struct Args {
    graph: std::path::PathBuf,
    k: usize,
    listen: String,
    seed: u64,
    pool_threads: Option<usize>,
    config: ServeConfig,
}

const USAGE: &str = "usage: waso-serve --graph FILE --k N --tenant NAME=QUOTA... \
     [--listen ADDR] [--seed N] [--pool-threads N] [--max-running N] \
     [--shed-queued N] [--shed-pool-depth N]";

/// Parses a numeric flag **at its native type**: a negative or
/// overflowing value is the usual typed usage error, never a silent
/// two's-complement wrap (`--k -1` used to become k = 2^64 - 1 via an
/// `as usize` cast).
fn parse_num<T: std::str::FromStr>(v: String, what: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("bad {what} '{v}'"))
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut graph = None;
    let mut k = None;
    let mut listen = "127.0.0.1:7878".to_string();
    let mut seed = 42;
    let mut pool_threads = None;
    let mut tenants = Vec::new();
    let mut max_running = None;
    let mut shed_queued = None;
    let mut shed_pool_depth = None;

    let mut i = 0;
    while let Some(arg) = argv.get(i).cloned() {
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--graph" | "-g" => graph = Some(std::path::PathBuf::from(value("--graph")?)),
            "--k" | "-k" => k = Some(parse_num(value("--k")?, "k")?),
            "--listen" => listen = value("--listen")?,
            "--seed" => seed = parse_num(value("--seed")?, "seed")?,
            "--pool-threads" => {
                pool_threads = Some(parse_num(value("--pool-threads")?, "pool-threads")?)
            }
            "--tenant" => tenants.push(TenantConfig::parse(&value("--tenant")?)?),
            "--max-running" => {
                max_running = Some(parse_num(value("--max-running")?, "max-running")?)
            }
            "--shed-queued" => {
                shed_queued = Some(parse_num(value("--shed-queued")?, "shed-queued")?)
            }
            "--shed-pool-depth" => {
                shed_pool_depth = Some(parse_num(value("--shed-pool-depth")?, "shed-pool-depth")?)
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        i += 1;
    }

    if tenants.is_empty() {
        return Err(format!("at least one --tenant is required\n{USAGE}"));
    }
    for (i, tenant) in tenants.iter().enumerate() {
        if tenants.iter().take(i).any(|t| t.name == tenant.name) {
            return Err(format!(
                "duplicate --tenant {:?}: each tenant may be configured once",
                tenant.name
            ));
        }
    }
    let mut config = ServeConfig::new(tenants);
    if let Some(n) = max_running {
        config = config.max_running(n);
    }
    if let Some(n) = shed_queued {
        config = config.shed_queued_jobs(n);
    }
    if let Some(n) = shed_pool_depth {
        config = config.shed_pool_depth(n);
    }
    Ok(Args {
        graph: graph.ok_or_else(|| format!("--graph is required\n{USAGE}"))?,
        k: k.ok_or_else(|| format!("--k is required\n{USAGE}"))?,
        listen,
        seed,
        pool_threads,
        config,
    })
}

fn run(args: Args) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.graph)
        .map_err(|e| format!("cannot read {}: {e}", args.graph.display()))?;
    let graph = waso_graph::io::from_str(&text).map_err(|e| format!("parse error: {e}"))?;
    eprintln!(
        "loaded {} nodes, {} edges from {}",
        graph.num_nodes(),
        graph.num_edges(),
        args.graph.display()
    );

    // All tenants share one process-wide pool, attached up front so its
    // width is a deployment choice, not whatever the first spec asks.
    let threads = args.pool_threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(2)
    });
    let session = WasoSession::new(graph)
        .k(args.k)
        .seed(args.seed)
        .attach_pool(Arc::new(SharedPool::new(threads)));

    for tenant in &args.config.tenants {
        eprintln!(
            "tenant {} (quota {} inflight)",
            tenant.name, tenant.max_inflight
        );
    }
    let mut server = Server::start(session, args.config);
    let addr = server
        .listen(&args.listen)
        .map_err(|e| format!("cannot bind {}: {e}", args.listen))?;
    // Machine-scrapable (the CI smoke test reads this line).
    println!("listening on {addr}");

    // Serve until killed.
    loop {
        std::thread::park();
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv) {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn numeric_flags_parse_at_native_types() {
        let args = parse_args(&argv(&[
            "--graph",
            "g.waso",
            "--k",
            "4",
            "--tenant",
            "acme=2",
            "--pool-threads",
            "3",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(args.k, 4);
        assert_eq!(args.pool_threads, Some(3));
        assert_eq!(args.seed, 9);
    }

    #[test]
    fn negative_values_are_typed_errors_not_wraps() {
        // `--k -1` used to wrap to 2^64 - 1 via `parse::<u64>() as usize`.
        for (flag, what) in [
            ("--k", "k"),
            ("--pool-threads", "pool-threads"),
            ("--max-running", "max-running"),
            ("--shed-queued", "shed-queued"),
        ] {
            let err = parse_args(&argv(&[
                "--graph", "g.waso", "--k", "4", "--tenant", "acme=2", flag, "-1",
            ]))
            .err()
            .unwrap();
            assert_eq!(err, format!("bad {what} '-1'"), "flag {flag}");
        }
    }

    #[test]
    fn overflowing_values_are_typed_errors_not_truncations() {
        let err = parse_args(&argv(&[
            "--graph",
            "g.waso",
            "--k",
            "99999999999999999999",
            "--tenant",
            "acme=2",
        ]))
        .err()
        .unwrap();
        assert_eq!(err, "bad k '99999999999999999999'");
    }
}

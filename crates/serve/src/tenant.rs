//! Tenant configuration and the fair dispatch queue.

use std::collections::VecDeque;

/// One tenant the server will accept `SUBMIT`s from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantConfig {
    /// The name clients put on the `SUBMIT` line. A single
    /// whitespace-free token (the protocol grammar cannot carry more).
    pub name: String,
    /// Admission quota: the tenant may have at most this many jobs
    /// **inflight** (queued + running) at once; further `SUBMIT`s are
    /// refused with `ERR QUOTA` until one finishes. Clamped to ≥ 1.
    pub max_inflight: usize,
}

impl TenantConfig {
    pub fn new(name: impl Into<String>, max_inflight: usize) -> Self {
        Self {
            name: name.into(),
            max_inflight: max_inflight.max(1),
        }
    }

    /// Parses the CLI's `NAME=QUOTA` form (`alice=4`).
    pub fn parse(text: &str) -> Result<Self, String> {
        let (name, quota) = text
            .split_once('=')
            .ok_or_else(|| format!("tenant {text:?} is not NAME=QUOTA"))?;
        if name.is_empty() || name.chars().any(char::is_whitespace) {
            return Err(format!("bad tenant name {name:?}"));
        }
        let quota: usize = quota
            .parse()
            .map_err(|_| format!("bad tenant quota {quota:?}"))?;
        if quota == 0 {
            return Err(format!("tenant {name:?} quota must be ≥ 1"));
        }
        Ok(Self::new(name, quota))
    }
}

/// Round-robin dispatch across per-tenant FIFO queues.
///
/// Each tenant owns one queue; a rotating cursor picks the next
/// non-empty queue, so a tenant that floods its quota's worth of jobs
/// cannot starve the others — with `t` tenants waiting, each gets every
/// `t`-th dispatch slot, while jobs *within* a tenant keep submission
/// order.
#[derive(Debug)]
pub(crate) struct FairQueue {
    /// One FIFO of job ids per tenant, indexed by tenant id
    /// (configuration order).
    queues: Vec<VecDeque<u64>>,
    /// The tenant the next dispatch looks at first.
    cursor: usize,
    len: usize,
}

impl FairQueue {
    pub fn new(tenants: usize) -> Self {
        Self {
            queues: (0..tenants).map(|_| VecDeque::new()).collect(),
            cursor: 0,
            len: 0,
        }
    }

    /// Total queued jobs across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn push(&mut self, tenant: usize, job: u64) {
        // An out-of-range tenant index drops the push rather than panic:
        // callers validate the tenant by name before queueing.
        if let Some(queue) = self.queues.get_mut(tenant) {
            queue.push_back(job);
            self.len += 1;
        }
    }

    /// The next job in round-robin order, advancing the cursor **past**
    /// the tenant served so its remaining jobs wait their next turn.
    pub fn pop(&mut self) -> Option<u64> {
        let t = self.queues.len();
        for i in 0..t {
            let idx = (self.cursor + i) % t;
            if let Some(job) = self.queues.get_mut(idx).and_then(VecDeque::pop_front) {
                self.cursor = (idx + 1) % t;
                self.len -= 1;
                return Some(job);
            }
        }
        None
    }

    /// Removes a queued job wherever it sits (cancellation). Returns
    /// whether it was present.
    pub fn remove(&mut self, job: u64) -> bool {
        for queue in &mut self.queues {
            if let Some(pos) = queue.iter().position(|&j| j == job) {
                queue.remove(pos);
                self.len -= 1;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_interleaves_tenants() {
        let mut q = FairQueue::new(3);
        // Tenant 0 floods; tenants 1 and 2 submit one job each, later.
        for job in 0..4 {
            q.push(0, job);
        }
        q.push(1, 10);
        q.push(2, 20);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).collect();
        // One slot per waiting tenant per round, FIFO within a tenant.
        assert_eq!(order, vec![0, 10, 20, 1, 2, 3]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn remove_unlinks_queued_jobs() {
        let mut q = FairQueue::new(2);
        q.push(0, 1);
        q.push(0, 2);
        q.push(1, 3);
        assert!(q.remove(2));
        assert!(!q.remove(2), "already gone");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn tenant_configs_parse_the_cli_form() {
        assert_eq!(
            TenantConfig::parse("alice=4").unwrap(),
            TenantConfig::new("alice", 4)
        );
        for bad in ["alice", "=4", "alice=0", "alice=x", "a b=1"] {
            assert!(TenantConfig::parse(bad).is_err(), "{bad:?}");
        }
    }
}

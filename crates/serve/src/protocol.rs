//! The wire protocol `waso-serve` speaks: length-prefixed text frames
//! carrying one typed [`Request`] or [`Response`] each.
//!
//! # Framing
//!
//! A frame is the payload's byte length in ASCII decimal, a newline,
//! then exactly that many payload bytes (UTF-8 text):
//!
//! ```text
//! 23
//! SUBMIT alice cbas-nd:budget=200
//! ```
//!
//! Length-prefixing makes message boundaries explicit — payloads may
//! contain newlines (error messages do) — and lets the reader reject
//! oversized or corrupt frames *before* buffering them
//! ([`FrameError`], surfaced to clients as an `ERR BAD_FRAME`).
//! Frames are capped at [`MAX_FRAME`] bytes.
//!
//! # Request grammar
//!
//! ```text
//! SUBMIT <tenant> <spec>     enqueue a solve for <tenant>; replies JOB <id>
//! POLL <id>                  non-blocking job state
//! WAIT <id>                  block until the job reaches a terminal state
//! CANCEL <id>                cancel a queued or running job
//! STATS                      server-wide counters
//! ```
//!
//! # Response grammar
//!
//! ```text
//! JOB <id>
//! QUEUED
//! RUNNING <stages> <samples> [<willingness> <node,node,...>]
//! DONE <termination> <willingness> <node,node,...> <samples>
//! CANCELLED
//! STATS queued=N running=N finished=N shed=N tenants=N pool_queued=N pool_workers=N memo_hits=N memo_misses=N memo_invalidated=N
//! ERR <CODE> [<message>]
//! ```
//!
//! Every variant round-trips through its text form bit-exactly (floats
//! use Rust's shortest round-trip formatting) — pinned by the proptests
//! in `tests/protocol_props.rs`.

use std::fmt;
use std::io::{self, BufRead, Read, Write};

use waso::algos::Termination;

/// Hard cap on a frame's payload size. Large enough for any response the
/// server produces (a `DONE` line grows with `k`, not with the graph);
/// small enough that a garbage length prefix cannot make the reader
/// allocate unbounded memory.
pub const MAX_FRAME: usize = 64 * 1024;

/// Why a frame could not be decoded. The framing layer cannot resync
/// after any of these (the stream position is ambiguous), so servers
/// reply `ERR BAD_FRAME` and close the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length line was not a bare ASCII decimal.
    BadLength(String),
    /// The declared length exceeds [`MAX_FRAME`].
    Oversize(usize),
    /// The payload bytes were not UTF-8.
    BadUtf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadLength(line) => write!(f, "bad frame length {line:?}"),
            FrameError::Oversize(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::BadUtf8 => write!(f, "frame payload is not UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: decimal length, newline, payload.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME, "outbound frame exceeds cap");
    write!(w, "{}\n{payload}", payload.len())?;
    w.flush()
}

/// Hard cap on the length *prefix* line. A valid prefix is at most the
/// digits of [`MAX_FRAME`] plus the newline; anything longer is garbage,
/// and without this bound a client streaming bytes that never contain a
/// newline would make the reader buffer them without limit.
const MAX_LEN_LINE: u64 = 32;

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); an EOF *inside* a frame is an
/// [`io::ErrorKind::UnexpectedEof`] error.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<Result<String, FrameError>>> {
    let mut line = String::new();
    let n = Read::take(&mut *r, MAX_LEN_LINE).read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') && n as u64 == MAX_LEN_LINE {
        return Ok(Some(Err(FrameError::BadLength(line))));
    }
    let trimmed = line.trim_end_matches('\n');
    let len: usize = match trimmed.parse() {
        Ok(n) => n,
        Err(_) => return Ok(Some(Err(FrameError::BadLength(trimmed.to_string())))),
    };
    if len > MAX_FRAME {
        return Ok(Some(Err(FrameError::Oversize(len))));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(match String::from_utf8(buf) {
        Ok(s) => Ok(s),
        Err(_) => Err(FrameError::BadUtf8),
    }))
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Enqueue a solve of `spec` on behalf of `tenant`.
    Submit { tenant: String, spec: String },
    /// Non-blocking state of a job.
    Poll { job: u64 },
    /// Block until the job reaches a terminal state, then return it.
    Wait { job: u64 },
    /// Cancel a queued or running job (idempotent).
    Cancel { job: u64 },
    /// Server-wide counters.
    Stats,
}

impl Request {
    /// Parses one request payload. The error string is the human half of
    /// the `ERR BAD_REQUEST` the server replies with.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut parts = text.splitn(3, ' ');
        let verb = parts.next().unwrap_or("");
        match verb {
            "SUBMIT" => {
                let tenant = parts
                    .next()
                    .filter(|t| !t.is_empty())
                    .ok_or("SUBMIT needs a tenant name")?;
                if tenant.chars().any(char::is_whitespace) {
                    return Err(format!("bad tenant name {tenant:?}"));
                }
                let spec = parts.next().filter(|s| !s.is_empty()).ok_or_else(|| {
                    "SUBMIT needs a solver spec (NAME[:key=value,...])".to_string()
                })?;
                Ok(Request::Submit {
                    tenant: tenant.to_string(),
                    spec: spec.to_string(),
                })
            }
            "POLL" | "WAIT" | "CANCEL" => {
                let id = parts
                    .next()
                    .ok_or_else(|| format!("{verb} needs a job id"))?;
                if parts.next().is_some() {
                    return Err(format!("{verb} takes exactly one argument"));
                }
                let job: u64 = id.parse().map_err(|_| format!("bad job id {id:?}"))?;
                Ok(match verb {
                    "POLL" => Request::Poll { job },
                    "WAIT" => Request::Wait { job },
                    _ => Request::Cancel { job },
                })
            }
            "STATS" => {
                if parts.next().is_some() {
                    return Err("STATS takes no arguments".to_string());
                }
                Ok(Request::Stats)
            }
            other => Err(format!("unknown request verb {other:?}")),
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Submit { tenant, spec } => write!(f, "SUBMIT {tenant} {spec}"),
            Request::Poll { job } => write!(f, "POLL {job}"),
            Request::Wait { job } => write!(f, "WAIT {job}"),
            Request::Cancel { job } => write!(f, "CANCEL {job}"),
            Request::Stats => write!(f, "STATS"),
        }
    }
}

/// Why a request was refused — the typed half of an `ERR` response.
/// Distinct codes let clients react programmatically: back off on
/// [`ErrCode::Shed`], fix the spec on [`ErrCode::BadSpec`], give up on
/// [`ErrCode::UnknownTenant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// The frame itself was undecodable; the connection is closed after
    /// this reply (the stream cannot be resynced).
    BadFrame,
    /// The frame decoded but was not a well-formed request.
    BadRequest,
    /// `SUBMIT` named a tenant the server was not configured with.
    UnknownTenant,
    /// The tenant is at its `max_inflight` quota; retry after one of its
    /// jobs finishes.
    Quota,
    /// The server is load-shedding: its queue (or the pool's chunk
    /// backlog) crossed the configured threshold. Retry with backoff.
    Shed,
    /// The spec did not resolve to a buildable solver.
    BadSpec,
    /// `POLL`/`WAIT`/`CANCEL` named a job this server never issued.
    UnknownJob,
    /// The solve itself failed (infeasible instance, constraint the
    /// solver cannot honour, deadline with no incumbent, solver panic).
    Failed,
}

impl ErrCode {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::BadFrame => "BAD_FRAME",
            ErrCode::BadRequest => "BAD_REQUEST",
            ErrCode::UnknownTenant => "UNKNOWN_TENANT",
            ErrCode::Quota => "QUOTA",
            ErrCode::Shed => "SHED",
            ErrCode::BadSpec => "BAD_SPEC",
            ErrCode::UnknownJob => "UNKNOWN_JOB",
            ErrCode::Failed => "FAILED",
        }
    }

    /// Parses a wire token.
    pub fn parse(token: &str) -> Option<Self> {
        Some(match token {
            "BAD_FRAME" => ErrCode::BadFrame,
            "BAD_REQUEST" => ErrCode::BadRequest,
            "UNKNOWN_TENANT" => ErrCode::UnknownTenant,
            "QUOTA" => ErrCode::Quota,
            "SHED" => ErrCode::Shed,
            "BAD_SPEC" => ErrCode::BadSpec,
            "UNKNOWN_JOB" => ErrCode::UnknownJob,
            "FAILED" => ErrCode::Failed,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The `STATS` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Jobs admitted and not yet dispatched.
    pub queued: u64,
    /// Jobs dispatched and not yet finished.
    pub running: u64,
    /// Jobs in a terminal state (done, failed, or cancelled).
    pub finished: u64,
    /// Submissions refused with [`ErrCode::Shed`] since startup.
    pub shed: u64,
    /// Configured tenants.
    pub tenants: u64,
    /// The shared pool's in-flight chunk backlog at snapshot time.
    pub pool_queued: u64,
    /// The shared pool's worker count.
    pub pool_workers: u64,
    /// Solves the session answered from its memo (no solver ran).
    pub memo_hits: u64,
    /// Cacheable solves that had to run.
    pub memo_misses: u64,
    /// Memo entries invalidated by graph deltas.
    pub memo_invalidated: u64,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `SUBMIT` accepted; poll/wait/cancel with this id.
    Job(u64),
    /// The job is admitted and waiting for a dispatch slot.
    Queued,
    /// The job is solving. `incumbent` is the latest-only watch view of
    /// its best-so-far group (`None` before the first completed stage).
    Running {
        stages: u32,
        samples: u64,
        incumbent: Option<(f64, Vec<u32>)>,
    },
    /// Terminal: the solve produced a group.
    Done {
        termination: Termination,
        willingness: f64,
        nodes: Vec<u32>,
        samples: u64,
    },
    /// Terminal: the job was cancelled before producing a group.
    Cancelled,
    /// The `STATS` counters.
    Stats(StatsReply),
    /// The request was refused; see [`ErrCode`].
    Error { code: ErrCode, message: String },
}

/// `1,2,3`, or `-` for an empty list.
fn encode_nodes(nodes: &[u32]) -> String {
    if nodes.is_empty() {
        return "-".to_string();
    }
    nodes
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_nodes(text: &str) -> Result<Vec<u32>, String> {
    if text == "-" {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|t| t.parse().map_err(|_| format!("bad node id {t:?}")))
        .collect()
}

fn parse_termination(token: &str) -> Result<Termination, String> {
    Ok(match token {
        "completed" => Termination::Completed,
        "deadline" => Termination::Deadline,
        "cancelled" => Termination::Cancelled,
        other => return Err(format!("unknown termination {other:?}")),
    })
}

impl Response {
    /// Parses one response payload (the client half; servers only encode).
    pub fn parse(text: &str) -> Result<Self, String> {
        let (verb, rest) = match text.split_once(' ') {
            Some((v, r)) => (v, r),
            None => (text, ""),
        };
        let fields: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(' ').collect()
        };
        // Slice patterns (not indexing) so a short field list is a parse
        // error, never a panic — this runs on the serve reply path.
        match verb {
            "JOB" => match fields[..] {
                [id] => Ok(Response::Job(
                    id.parse().map_err(|_| format!("bad job id {id:?}"))?,
                )),
                _ => Err(format!("JOB takes 1 field, got {}", fields.len())),
            },
            "QUEUED" => match fields[..] {
                [] => Ok(Response::Queued),
                _ => Err(format!("QUEUED takes 0 fields, got {}", fields.len())),
            },
            "RUNNING" => {
                let (head, incumbent_fields) = match fields[..] {
                    [s, n] => ((s, n), None),
                    [s, n, w, nodes] => ((s, n), Some((w, nodes))),
                    _ => {
                        return Err(format!("RUNNING takes 2 or 4 fields, got {}", fields.len()));
                    }
                };
                let stages = head
                    .0
                    .parse()
                    .map_err(|_| format!("bad stage count {:?}", head.0))?;
                let samples = head
                    .1
                    .parse()
                    .map_err(|_| format!("bad sample count {:?}", head.1))?;
                let incumbent = match incumbent_fields {
                    Some((w, nodes)) => {
                        let w = w.parse().map_err(|_| format!("bad willingness {w:?}"))?;
                        Some((w, parse_nodes(nodes)?))
                    }
                    None => None,
                };
                Ok(Response::Running {
                    stages,
                    samples,
                    incumbent,
                })
            }
            "DONE" => match fields[..] {
                [termination, willingness, nodes, samples] => Ok(Response::Done {
                    termination: parse_termination(termination)?,
                    willingness: willingness
                        .parse()
                        .map_err(|_| format!("bad willingness {willingness:?}"))?,
                    nodes: parse_nodes(nodes)?,
                    samples: samples
                        .parse()
                        .map_err(|_| format!("bad sample count {samples:?}"))?,
                }),
                _ => Err(format!("DONE takes 4 fields, got {}", fields.len())),
            },
            "CANCELLED" => match fields[..] {
                [] => Ok(Response::Cancelled),
                _ => Err(format!("CANCELLED takes 0 fields, got {}", fields.len())),
            },
            "STATS" => {
                let mut stats = StatsReply::default();
                for field in &fields {
                    let (key, value) = field
                        .split_once('=')
                        .ok_or_else(|| format!("bad stats field {field:?}"))?;
                    let value: u64 = value
                        .parse()
                        .map_err(|_| format!("bad stats value {field:?}"))?;
                    match key {
                        "queued" => stats.queued = value,
                        "running" => stats.running = value,
                        "finished" => stats.finished = value,
                        "shed" => stats.shed = value,
                        "tenants" => stats.tenants = value,
                        "pool_queued" => stats.pool_queued = value,
                        "pool_workers" => stats.pool_workers = value,
                        "memo_hits" => stats.memo_hits = value,
                        "memo_misses" => stats.memo_misses = value,
                        "memo_invalidated" => stats.memo_invalidated = value,
                        other => return Err(format!("unknown stats key {other:?}")),
                    }
                }
                Ok(Response::Stats(stats))
            }
            "ERR" => {
                // The message is everything after the code, verbatim —
                // it may contain spaces and newlines.
                let (code, message) = match rest.split_once(' ') {
                    Some((c, m)) => (c, m),
                    None => (rest, ""),
                };
                let code =
                    ErrCode::parse(code).ok_or_else(|| format!("unknown ERR code {code:?}"))?;
                Ok(Response::Error {
                    code,
                    message: message.to_string(),
                })
            }
            other => Err(format!("unknown response verb {other:?}")),
        }
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Job(id) => write!(f, "JOB {id}"),
            Response::Queued => write!(f, "QUEUED"),
            Response::Running {
                stages,
                samples,
                incumbent,
            } => {
                write!(f, "RUNNING {stages} {samples}")?;
                if let Some((w, nodes)) = incumbent {
                    write!(f, " {w} {}", encode_nodes(nodes))?;
                }
                Ok(())
            }
            Response::Done {
                termination,
                willingness,
                nodes,
                samples,
            } => write!(
                f,
                "DONE {termination} {willingness} {} {samples}",
                encode_nodes(nodes)
            ),
            Response::Cancelled => write!(f, "CANCELLED"),
            Response::Stats(s) => write!(
                f,
                "STATS queued={} running={} finished={} shed={} tenants={} \
                 pool_queued={} pool_workers={} memo_hits={} memo_misses={} \
                 memo_invalidated={}",
                s.queued,
                s.running,
                s.finished,
                s.shed,
                s.tenants,
                s.pool_queued,
                s.pool_workers,
                s.memo_hits,
                s.memo_misses,
                s.memo_invalidated
            ),
            Response::Error { code, message } => {
                if message.is_empty() {
                    write!(f, "ERR {code}")
                } else {
                    write!(f, "ERR {code} {message}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "SUBMIT alice cbas-nd:budget=200").unwrap();
        write_frame(&mut buf, "").unwrap();
        write_frame(&mut buf, "multi\nline\npayload").unwrap();
        let mut r = io::BufReader::new(&buf[..]);
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap().unwrap(),
            "SUBMIT alice cbas-nd:budget=200"
        );
        assert_eq!(read_frame(&mut r).unwrap().unwrap().unwrap(), "");
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap().unwrap(),
            "multi\nline\npayload"
        );
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn bad_frames_are_typed_not_io_errors() {
        let mut r = io::BufReader::new(&b"x9\nzzzzzzzzz"[..]);
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap().unwrap_err(),
            FrameError::BadLength("x9".to_string())
        );
        let huge = format!("{}\n", MAX_FRAME + 1);
        let mut r = io::BufReader::new(huge.as_bytes());
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap().unwrap_err(),
            FrameError::Oversize(MAX_FRAME + 1)
        );
        let mut r = io::BufReader::new(&b"2\n\xff\xfe"[..]);
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap().unwrap_err(),
            FrameError::BadUtf8
        );
        // EOF mid-payload is an io error, not a clean close.
        let mut r = io::BufReader::new(&b"10\nshort"[..]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn newline_free_length_prefix_is_rejected_without_buffering_it() {
        // A peer streaming digits with no newline must hit BadLength at
        // the prefix bound, not make the reader buffer the whole stream.
        let garbage = vec![b'1'; 1 << 20];
        let mut r = io::BufReader::new(&garbage[..]);
        match read_frame(&mut r).unwrap().unwrap().unwrap_err() {
            FrameError::BadLength(line) => assert!(line.len() <= 32, "buffered {}", line.len()),
            other => panic!("expected BadLength, got {other:?}"),
        }
    }

    #[test]
    fn requests_parse_and_reject() {
        assert_eq!(
            Request::parse("SUBMIT alice cbas-nd:budget=200").unwrap(),
            Request::Submit {
                tenant: "alice".into(),
                spec: "cbas-nd:budget=200".into()
            }
        );
        assert_eq!(Request::parse("POLL 7").unwrap(), Request::Poll { job: 7 });
        assert_eq!(Request::parse("STATS").unwrap(), Request::Stats);
        for bad in [
            "",
            "NOPE",
            "SUBMIT",
            "SUBMIT alice",
            "POLL",
            "POLL x",
            "POLL 1 2",
            "STATS now",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn error_messages_survive_spaces_and_emptiness() {
        for resp in [
            Response::Error {
                code: ErrCode::Quota,
                message: "tenant alice is at 4 inflight jobs".into(),
            },
            Response::Error {
                code: ErrCode::Shed,
                message: String::new(),
            },
        ] {
            assert_eq!(Response::parse(&resp.to_string()).unwrap(), resp);
        }
    }
}

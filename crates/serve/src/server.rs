//! The serving front door: admission control, fair dispatch, and the
//! thread-per-connection TCP loop.
//!
//! A [`Server`] multiplexes many tenants onto **one** [`WasoSession`]
//! (and therefore one process-wide `SharedPool`). Its lifecycle:
//!
//! 1. **Admission** ([`Server::handle`] on a `SUBMIT`): the tenant must
//!    be configured (`ERR UNKNOWN_TENANT`), the spec must build
//!    (`ERR BAD_SPEC`), the server must not be load-shedding
//!    (`ERR SHED`), and the tenant must be under its inflight quota
//!    (`ERR QUOTA`). Admitted jobs get an id, a **submit timestamp**,
//!    and a slot in the tenant's FIFO.
//! 2. **Dispatch** (the dispatcher thread): whenever fewer than
//!    `max_running` jobs are running, the next job is picked
//!    **round-robin across tenants** — a flooding tenant cannot starve
//!    the others — and submitted to the session. A spec carrying
//!    `deadline_from_submit=` has its deadline re-armed against the
//!    *admission* timestamp, so time spent queued behind other tenants
//!    counts against the SLA.
//! 3. **Completion** (one waiter thread per running job): the result is
//!    parked in the job table for `POLL`/`WAIT`, the tenant's quota slot
//!    frees, and the dispatcher wakes. The table retains the newest
//!    [`ServeConfig::retain_finished`] terminal responses; older ones
//!    are evicted and answer `ERR UNKNOWN_JOB`, so a long-running
//!    server's memory is bounded by its retention cap, not by the total
//!    jobs it has ever served.
//!
//! Load shedding is admission-time: a `SUBMIT` is refused with
//! `ERR SHED` when the server-wide queue reaches
//! [`ServeConfig::shed_queued_jobs`], or when the shared pool's
//! in-flight chunk backlog exceeds [`ServeConfig::shed_pool_depth`] —
//! the queue bound is the deterministic signal, the pool bound the
//! saturation backstop.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use waso::prelude::*;

use crate::protocol::{read_frame, write_frame, ErrCode, Request, Response, StatsReply};
use crate::tenant::{FairQueue, TenantConfig};

/// Server-side policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The tenants `SUBMIT` will accept, each with its inflight quota.
    pub tenants: Vec<TenantConfig>,
    /// Dispatch width: at most this many jobs run concurrently; the rest
    /// wait in the fair queue. Clamped to ≥ 1.
    pub max_running: usize,
    /// Load-shed bound: refuse `SUBMIT`s while this many jobs are
    /// already queued (waiting for a dispatch slot). Clamped to ≥ 1.
    pub shed_queued_jobs: usize,
    /// Optional second load-shed signal: refuse `SUBMIT`s while the
    /// shared pool's in-flight chunk backlog exceeds this.
    pub shed_pool_depth: Option<u64>,
    /// Finished-job retention: the server keeps at most this many
    /// terminal jobs' responses around for later `POLL`/`WAIT`; beyond
    /// it the oldest are evicted and answer `ERR UNKNOWN_JOB`. Bounds
    /// the job table on a long-running server. Clamped to ≥ 1.
    pub retain_finished: usize,
}

impl ServeConfig {
    /// Builds a config over `tenants` with default policy knobs.
    ///
    /// # Panics
    ///
    /// If two tenants share a name: `SUBMIT` resolves tenants by name,
    /// so a duplicate's quota would be silently dead configuration.
    pub fn new(tenants: Vec<TenantConfig>) -> Self {
        for (i, tenant) in tenants.iter().enumerate() {
            assert!(
                !tenants.iter().take(i).any(|t| t.name == tenant.name),
                "duplicate tenant {:?}: tenants are resolved by name, so each may be configured once",
                tenant.name
            );
        }
        Self {
            tenants,
            max_running: 2,
            shed_queued_jobs: 16,
            shed_pool_depth: None,
            retain_finished: 1024,
        }
    }

    pub fn max_running(mut self, n: usize) -> Self {
        self.max_running = n.max(1);
        self
    }

    pub fn shed_queued_jobs(mut self, n: usize) -> Self {
        self.shed_queued_jobs = n.max(1);
        self
    }

    pub fn shed_pool_depth(mut self, depth: u64) -> Self {
        self.shed_pool_depth = Some(depth);
        self
    }

    pub fn retain_finished(mut self, n: usize) -> Self {
        self.retain_finished = n.max(1);
        self
    }
}

/// Where a job is in its lifecycle.
enum JobState {
    /// Admitted, waiting for a dispatch slot.
    Queued,
    /// Dispatched; the control is the live progress/cancel surface.
    Running(Arc<JobControl>),
    /// Terminal; the parked response answers every later `POLL`/`WAIT`.
    Finished(Response),
}

struct JobEntry {
    tenant: usize,
    spec: SolverSpec,
    /// Admission time — the anchor `deadline_from_submit=` is re-armed
    /// against at dispatch, so queue wait counts against the SLA.
    submitted_at: Instant,
    state: JobState,
    /// A `CANCEL` landed in the dispatch window — after the dispatcher
    /// popped the job off the queue but before it was marked `Running`.
    /// The dispatcher applies it right after arming the control.
    cancel_requested: bool,
}

/// Everything the mutex guards.
struct State {
    jobs: HashMap<u64, JobEntry>,
    queue: FairQueue,
    /// Per-tenant inflight (queued + running) job counts, indexed like
    /// `config.tenants`.
    inflight: Vec<usize>,
    /// Terminal jobs, oldest first — the eviction order once the table
    /// holds more than `retain_finished` of them.
    finished_order: VecDeque<u64>,
    running: usize,
    finished: u64,
    shed: u64,
    next_job: u64,
    shutdown: bool,
}

impl State {
    /// Marks `job` terminal with `response`, then evicts the oldest
    /// finished entries past the retention cap so the table stays
    /// bounded however long the server runs.
    fn park_finished(&mut self, job: u64, response: Response, retain: usize) {
        // The entry can be gone if the job was already evicted past the
        // retention cap; parking is then a no-op rather than a panic
        // that would poison every connection sharing this mutex.
        if let Some(entry) = self.jobs.get_mut(&job) {
            entry.state = JobState::Finished(response);
            self.finished += 1;
            self.finished_order.push_back(job);
        }
        while self.finished_order.len() > retain {
            match self.finished_order.pop_front() {
                Some(evicted) => {
                    self.jobs.remove(&evicted);
                }
                None => break,
            }
        }
    }

    /// Pops the next job that still has a table entry, claiming a
    /// running slot for it. Queue ids whose entry has vanished are
    /// drained and skipped — an orphaned id must not consume a slot.
    fn pop_dispatchable(&mut self) -> Option<(u64, SolverSpec, Instant)> {
        while let Some(job) = self.queue.pop() {
            if let Some(entry) = self.jobs.get(&job) {
                let spec = entry.spec.clone();
                let submitted_at = entry.submitted_at;
                self.running += 1;
                return Some((job, spec, submitted_at));
            }
        }
        None
    }
}

struct Inner {
    session: WasoSession,
    config: ServeConfig,
    state: Mutex<State>,
    /// Notified on admission (dispatcher), slot-freeing completion
    /// (dispatcher + `WAIT`ers), and shutdown (everyone).
    wake: Condvar,
}

/// The multi-tenant serving front door. See the module docs for the
/// request lifecycle; construct with [`Server::start`], expose over TCP
/// with [`Server::listen`], or drive in-process via [`Server::handle`].
pub struct Server {
    inner: Arc<Inner>,
    dispatcher: Option<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    addr: Option<SocketAddr>,
}

impl Server {
    /// Starts the dispatcher over `session`. The session's graph, group
    /// size, seed, and attached pool are fixed for the server's lifetime
    /// — every tenant solves the same instance, so identical
    /// `(spec, seed)` submissions return identical groups no matter how
    /// they interleave.
    pub fn start(session: WasoSession, config: ServeConfig) -> Self {
        let tenants = config.tenants.len();
        let inner = Arc::new(Inner {
            session,
            config,
            state: Mutex::new(State {
                jobs: HashMap::new(),
                queue: FairQueue::new(tenants),
                inflight: vec![0; tenants],
                finished_order: VecDeque::new(),
                running: 0,
                finished: 0,
                shed: 0,
                next_job: 1,
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("waso-serve-dispatch".into())
                .spawn(move || inner.dispatch_loop())
                // audit:allow(P1, P2): startup-time, before any connection exists — a server without its dispatcher can serve nothing, so fail fast
                .expect("spawning the dispatcher thread")
        };
        Self {
            inner,
            dispatcher: Some(dispatcher),
            acceptor: None,
            addr: None,
        }
    }

    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// thread-per-connection accept loop. Returns the bound address.
    pub fn listen(&mut self, addr: impl ToSocketAddrs) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let inner = Arc::clone(&self.inner);
        let acceptor = std::thread::Builder::new()
            .name("waso-serve-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if inner.locked().shutdown {
                        return;
                    }
                    if let Ok(stream) = stream {
                        let inner = Arc::clone(&inner);
                        let _ = std::thread::Builder::new()
                            .name("waso-serve-conn".into())
                            .spawn(move || serve_connection(&inner, stream));
                    }
                }
            })?;
        self.acceptor = Some(acceptor);
        self.addr = Some(local);
        Ok(local)
    }

    /// The bound address, once [`Server::listen`] has been called.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Handles one request in-process — the same entry point the TCP
    /// loop uses, so in-process and over-the-wire behavior cannot drift.
    pub fn handle(&self, request: Request) -> Response {
        self.inner.handle(request)
    }

    /// Stops accepting, cancels every live job, and joins the server's
    /// own threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.inner.locked();
            if st.shutdown {
                return;
            }
            st.shutdown = true;
            for entry in st.jobs.values() {
                if let JobState::Running(control) = &entry.state {
                    control.cancel();
                }
            }
        }
        self.inner.wake.notify_all();
        // Unblock the accept loop: it only re-checks the shutdown flag
        // when a connection arrives.
        if let Some(addr) = self.addr {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    fn locked(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn handle(&self, request: Request) -> Response {
        match request {
            Request::Submit { tenant, spec } => self.submit(&tenant, &spec),
            Request::Poll { job } => self.poll(job),
            Request::Wait { job } => self.wait(job),
            Request::Cancel { job } => self.cancel(job),
            Request::Stats => Response::Stats(self.stats()),
        }
    }

    fn submit(&self, tenant: &str, spec: &str) -> Response {
        let Some(tidx) = self.config.tenants.iter().position(|t| t.name == tenant) else {
            return err(
                ErrCode::UnknownTenant,
                format!("tenant {tenant:?} is not configured on this server"),
            );
        };
        // Resolve the spec before taking the lock — parse + registry
        // lookup needs no server state. A build dry-run catches the
        // per-solver key checks (e.g. `dgreedy:budget=` is a parseable
        // spec that no solver accepts), so invalid work is refused at
        // admission instead of failing asynchronously after dispatch.
        let spec = match self.session.registry().parse(spec) {
            Ok(spec) => spec,
            Err(e) => return err(ErrCode::BadSpec, e.to_string()),
        };
        if let Err(e) = self.session.registry().build(&spec) {
            return err(ErrCode::BadSpec, e.to_string());
        }
        let mut st = self.locked();
        if st.shutdown {
            return err(ErrCode::Failed, "server is shutting down".to_string());
        }
        if st.queue.len() >= self.config.shed_queued_jobs {
            st.shed += 1;
            return err(
                ErrCode::Shed,
                format!(
                    "{} jobs queued (bound {})",
                    st.queue.len(),
                    self.config.shed_queued_jobs
                ),
            );
        }
        if let Some(bound) = self.config.shed_pool_depth {
            let depth = self.session.pool_stats().map_or(0, |s| s.total_queued());
            if depth > bound {
                st.shed += 1;
                return err(
                    ErrCode::Shed,
                    format!("pool backlog {depth} chunks (bound {bound})"),
                );
            }
        }
        // `tidx` comes from the name lookup above, so these lookups cannot
        // miss; `get` keeps the connection path panic-free regardless.
        let quota = self.config.tenants.get(tidx).map_or(0, |t| t.max_inflight);
        if st.inflight.get(tidx).is_none_or(|&n| n >= quota) {
            return err(
                ErrCode::Quota,
                format!("tenant {tenant:?} is at its quota of {quota} inflight jobs"),
            );
        }
        let job = st.next_job;
        st.next_job += 1;
        st.jobs.insert(
            job,
            JobEntry {
                tenant: tidx,
                spec,
                submitted_at: Instant::now(),
                state: JobState::Queued,
                cancel_requested: false,
            },
        );
        st.queue.push(tidx, job);
        if let Some(n) = st.inflight.get_mut(tidx) {
            *n += 1;
        }
        drop(st);
        self.wake.notify_all();
        Response::Job(job)
    }

    fn poll(&self, job: u64) -> Response {
        let st = self.locked();
        match st.jobs.get(&job) {
            None => unknown_job(job),
            Some(entry) => match &entry.state {
                JobState::Queued => Response::Queued,
                JobState::Running(control) => {
                    let progress = control.progress();
                    Response::Running {
                        stages: progress.stages_done,
                        samples: progress.samples_spent,
                        // The latest-only watch view: reading it can
                        // neither block the solve nor miss the newest
                        // value, no matter how rarely clients poll.
                        incumbent: control
                            .latest_incumbent()
                            .map(|i| (i.willingness, node_ids(&i.nodes))),
                    }
                }
                JobState::Finished(response) => response.clone(),
            },
        }
    }

    fn wait(&self, job: u64) -> Response {
        let mut st = self.locked();
        loop {
            match st.jobs.get(&job) {
                None => return unknown_job(job),
                Some(entry) => match &entry.state {
                    JobState::Finished(response) => return response.clone(),
                    _ if st.shutdown => {
                        return err(ErrCode::Failed, "server is shutting down".to_string())
                    }
                    _ => {}
                },
            }
            st = self.wake.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn cancel(&self, job: u64) -> Response {
        let mut st = self.locked();
        let Some(entry) = st.jobs.get(&job) else {
            return unknown_job(job);
        };
        match &entry.state {
            // `Queued` alone is not proof the job is still ours to
            // finalize: the dispatcher pops a job and briefly releases
            // the lock before marking it `Running`. Unlinking it from
            // the queue is the arbiter — if that fails, the dispatcher
            // owns the job, so leave it a pending cancel (applied right
            // after the control exists) instead of finalizing here,
            // which would double-free its quota and running slots.
            JobState::Queued => {
                let tenant = entry.tenant;
                if st.queue.remove(job) {
                    let retain = self.config.retain_finished;
                    st.park_finished(job, Response::Cancelled, retain);
                    if let Some(n) = st.inflight.get_mut(tenant) {
                        *n -= 1;
                    }
                    drop(st);
                    // A WAITer of this job is parked on the condvar.
                    self.wake.notify_all();
                } else if let Some(entry) = st.jobs.get_mut(&job) {
                    entry.cancel_requested = true;
                }
            }
            // The solve stops at its next per-sample stop check; the
            // waiter thread parks the (cancelled) outcome as usual.
            JobState::Running(control) => control.cancel(),
            JobState::Finished(_) => {}
        }
        Response::Cancelled
    }

    fn stats(&self) -> StatsReply {
        let pool = self.session.pool_stats();
        let memo = self.session.memo_stats();
        let st = self.locked();
        StatsReply {
            queued: st.queue.len() as u64,
            running: st.running as u64,
            finished: st.finished,
            shed: st.shed,
            tenants: self.config.tenants.len() as u64,
            pool_queued: pool.as_ref().map_or(0, PoolStats::total_queued),
            pool_workers: pool.as_ref().map_or(0, |p| p.threads as u64),
            memo_hits: memo.hits,
            memo_misses: memo.misses,
            memo_invalidated: memo.invalidated,
        }
    }

    /// The dispatcher: picks queued jobs round-robin across tenants
    /// whenever a running slot is free, submits them to the session, and
    /// leaves one waiter thread parking each result.
    fn dispatch_loop(self: Arc<Self>) {
        loop {
            let (job, spec, submitted_at) = {
                let mut st = self.locked();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.running < self.config.max_running {
                        if let Some(popped) = st.pop_dispatchable() {
                            break popped;
                        }
                    }
                    st = self.wake.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            };
            // Solver construction and thread spawning happen outside the
            // lock; POLL/SUBMIT stay responsive under dispatch.
            match self.session.submit(&spec) {
                Ok(handle) => {
                    if let Some(ms) = spec.deadline_from_submit {
                        // Re-arm against the admission timestamp: the
                        // session armed dispatch-relative (all it can
                        // see), and deadlines combine earliest-wins, so
                        // this strictly tightens it to submit-relative.
                        handle
                            .control()
                            .arm_deadline_at(submitted_at + Duration::from_millis(ms));
                    }
                    let cancel_requested = {
                        let mut st = self.locked();
                        match st.jobs.get_mut(&job) {
                            Some(entry) => {
                                entry.state = JobState::Running(Arc::clone(handle.control()));
                                entry.cancel_requested
                            }
                            // The entry vanished mid-dispatch: nothing
                            // can observe this job any more, so stop the
                            // solve rather than burn the slot on it.
                            None => true,
                        }
                    };
                    if cancel_requested {
                        // A CANCEL landed while we were mid-dispatch;
                        // honour it now that the control exists. The
                        // waiter below parks the cancelled outcome.
                        handle.control().cancel();
                    }
                    let inner = Arc::clone(&self);
                    let _ = std::thread::Builder::new()
                        .name("waso-serve-wait".into())
                        .spawn(move || {
                            // `wait` panics if the job's coordinator died
                            // (a solver bug); contain it to this job.
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    handle.wait()
                                }));
                            let response = match outcome {
                                Ok(Ok(result)) => done_response(&result),
                                Ok(Err(e)) => solve_error_response(&e),
                                Err(_) => err(ErrCode::Failed, "solver panicked".to_string()),
                            };
                            inner.finish_dispatched(job, response);
                        });
                }
                // Build failures (e.g. a constraint the solver cannot
                // honour) surface as this job's terminal state.
                Err(e) => self.finish_dispatched(job, solve_error_response(&e)),
            }
        }
    }

    /// Parks a dispatched job's terminal response and frees its slots.
    fn finish_dispatched(&self, job: u64, response: Response) {
        {
            let mut st = self.locked();
            if let Some(entry) = st.jobs.get(&job) {
                let tenant = entry.tenant;
                st.park_finished(job, response, self.config.retain_finished);
                if let Some(n) = st.inflight.get_mut(tenant) {
                    *n -= 1;
                }
            }
            // The slot frees even if the entry is gone — a leaked slot
            // would quietly shrink dispatch width forever.
            st.running -= 1;
        }
        self.wake.notify_all();
    }
}

fn err(code: ErrCode, message: String) -> Response {
    Response::Error { code, message }
}

fn unknown_job(job: u64) -> Response {
    err(ErrCode::UnknownJob, format!("no job {job} on this server"))
}

/// Sorted ids — a canonical encoding, so clients can compare groups
/// across responses (and against direct solves) bytewise.
fn node_ids(nodes: &[NodeId]) -> Vec<u32> {
    let mut ids: Vec<u32> = nodes.iter().map(|v| v.0).collect();
    ids.sort_unstable();
    ids
}

fn done_response(result: &SolveResult) -> Response {
    Response::Done {
        termination: result.stats.termination,
        willingness: result.group.willingness(),
        nodes: node_ids(result.group.nodes()),
        samples: result.stats.samples_drawn,
    }
}

/// A cancelled job with no incumbent reports `CANCELLED`; every other
/// solve failure is an `ERR FAILED` carrying the session's message.
fn solve_error_response(error: &SessionError) -> Response {
    if let SessionError::Solve(SolveError::NoIncumbent {
        reason: Termination::Cancelled,
    }) = error
    {
        return Response::Cancelled;
    }
    err(ErrCode::Failed, error.to_string())
}

/// One connection: read a frame, handle, reply, repeat. An undecodable
/// frame gets `ERR BAD_FRAME` and the connection closes (the stream
/// cannot be resynced); a malformed request gets `ERR BAD_REQUEST` and
/// the connection lives on.
fn serve_connection(inner: &Inner, stream: TcpStream) {
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader) {
            Ok(None) | Err(_) => return,
            Ok(Some(Ok(payload))) => {
                let response = match Request::parse(&payload) {
                    Ok(request) => inner.handle(request),
                    Err(message) => err(ErrCode::BadRequest, message),
                };
                if write_frame(&mut writer, &response.to_string()).is_err() {
                    return;
                }
            }
            Ok(Some(Err(frame_error))) => {
                let response = err(ErrCode::BadFrame, frame_error.to_string());
                let _ = write_frame(&mut writer, &response.to_string());
                return;
            }
        }
    }
}

/// A blocking client for the `waso-serve` protocol — used by the tests,
/// the CI smoke script, and `waso-solve --server`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// One request/response round trip. Protocol-level refusals come
    /// back as [`Response::Error`]; an `Err` here is transport failure.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &request.to_string())?;
        match read_frame(&mut self.reader)? {
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Some(Err(e)) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            Some(Ok(payload)) => {
                Response::parse(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            }
        }
    }

    pub fn submit(&mut self, tenant: &str, spec: &str) -> io::Result<Response> {
        self.call(&Request::Submit {
            tenant: tenant.to_string(),
            spec: spec.to_string(),
        })
    }

    pub fn poll(&mut self, job: u64) -> io::Result<Response> {
        self.call(&Request::Poll { job })
    }

    pub fn wait(&mut self, job: u64) -> io::Result<Response> {
        self.call(&Request::Wait { job })
    }

    pub fn cancel(&mut self, job: u64) -> io::Result<Response> {
        self.call(&Request::Cancel { job })
    }

    pub fn stats(&mut self) -> io::Result<Response> {
        self.call(&Request::Stats)
    }
}

//! # waso-serve — a multi-tenant serving front door for WASO solves
//!
//! This crate turns the [`waso::WasoSession`] job-handle API into a
//! network service: one process holds one session (one graph, one
//! process-wide `SharedPool`), and any number of **tenants** submit
//! solver specs over a tiny length-prefixed text protocol
//! ([`protocol`]). The server owns the policy the session deliberately
//! does not:
//!
//! * **admission control** — unknown tenants and unbuildable specs are
//!   refused with typed codes before any work happens;
//! * **quotas** — each tenant is capped at a configured number of
//!   inflight jobs ([`TenantConfig::max_inflight`] → `ERR QUOTA`);
//! * **fairness** — queued jobs are dispatched round-robin across
//!   tenants, so one flooding tenant cannot starve the rest;
//! * **load shedding** — past a configurable queue depth (or pool
//!   chunk backlog) new submissions get `ERR SHED` instead of an
//!   ever-growing queue;
//! * **submit-anchored deadlines** — a spec's `deadline_from_submit=`
//!   is armed against the admission timestamp, so time queued behind
//!   other tenants counts against the SLA.
//!
//! Everything the solvers guarantee survives the front door: solves
//! are pure functions of `(instance, spec, seed)`, so a `DONE` response
//! is bit-identical to the same solve made directly on the session, no
//! matter how many tenants interleave (pinned by `tests/serving.rs`).
//!
//! ```no_run
//! use waso::prelude::*;
//! use waso_serve::{Client, ServeConfig, Server, TenantConfig};
//!
//! // Server process: one graph, two tenants, width-2 dispatch.
//! let graph = waso_datasets::synthetic::facebook_like_n(200, 3);
//! let session = WasoSession::new(graph).k(6).seed(42);
//! let config = ServeConfig::new(vec![
//!     TenantConfig::new("alice", 4),
//!     TenantConfig::new("bob", 2),
//! ]);
//! let mut server = Server::start(session, config);
//! let addr = server.listen("127.0.0.1:0").unwrap();
//!
//! // Client process: submit, then block for the result.
//! let mut client = Client::connect(addr).unwrap();
//! let job = match client.submit("alice", "cbas-nd:budget=500,stages=5").unwrap() {
//!     waso_serve::protocol::Response::Job(id) => id,
//!     other => panic!("refused: {other}"),
//! };
//! let done = client.wait(job).unwrap();
//! println!("{done}");
//! ```

pub mod protocol;
pub mod server;
pub mod tenant;

pub use protocol::{ErrCode, Request, Response, StatsReply};
pub use server::{Client, ServeConfig, Server};
pub use tenant::TenantConfig;

//! `CBAS-ND` — CBAS with Neighbour Differentiation (§4).
//!
//! Extends staged CBAS with per-start-node *node-selection probability
//! vectors* updated by the cross-entropy method ([`crate::cross_entropy`]):
//!
//! 1. stage 1 samples with the uniform vector `p_{i,1,j} = (k-1)/(n-1)`;
//! 2. after each stage, the top-ρ elite samples of each start node re-fit
//!    its vector via Eq. (4) with smoothing `w` (γ monotone across stages);
//! 3. budget moves between start nodes by the OCBA rule
//!    ([`crate::ocba`]) or its Gaussian variant
//!    ([`crate::gaussian`], `CBAS-ND-G` of Appendix A);
//! 4. optional backtracking (§4.4.2): when a vector's squared distance to
//!    its previous stage falls below `z_t`, the update is reverted so the
//!    next stage re-samples from the older, more diverse distribution.
//!
//! Theorem 6 shows this converges to the optimum faster than CBAS for the
//! same budget; the Figure 5/7/8 harnesses measure exactly that.
//!
//! [`CbasNd`] is a thin configuration over the shared
//! [`crate::engine::StagedEngine`] — cross-entropy candidate distribution,
//! uniform-OCBA or Gaussian allocation, serial execution. The stage loop,
//! prune accounting and best-tracking merge live in the engine; the
//! elite/γ update lives with the vectors in
//! [`crate::cross_entropy::update_vector`].

use waso_core::WasoInstance;
use waso_graph::NodeId;

use crate::cbas::CbasConfig;
use crate::engine::{StagedEngine, StartMode};
use crate::gaussian::Allocation;
use crate::{SolveError, SolveResult, Solver};

/// Configuration of [`CbasNd`].
#[derive(Debug, Clone)]
pub struct CbasNdConfig {
    /// The staged-CBAS parameters (budget, start nodes, stages, …).
    pub base: CbasConfig,
    /// Elite fraction ρ of the cross-entropy update (paper default 0.3).
    pub rho: f64,
    /// Smoothing weight `w` of the vector update (paper default 0.9).
    pub smoothing: f64,
    /// Backtracking threshold `z_t` (§4.4.2); `None` disables backtracking.
    pub backtrack_threshold: Option<f64>,
    /// Budget-allocation rule: uniform OCBA (paper default) or Gaussian
    /// (`CBAS-ND-G`, Appendix A).
    pub allocation: Allocation,
}

impl CbasNdConfig {
    /// Budget `T` with the paper's §5.1 defaults: ρ = 0.3, w = 0.9,
    /// uniform-OCBA allocation, no backtracking.
    pub fn with_budget(budget: u64) -> Self {
        Self {
            base: CbasConfig::with_budget(budget),
            rho: 0.3,
            smoothing: 0.9,
            backtrack_threshold: None,
            allocation: Allocation::UniformOcba,
        }
    }

    /// Small-budget preset for examples and doctests (T = 200, r = 4).
    pub fn fast() -> Self {
        Self {
            base: CbasConfig::fast(),
            ..Self::with_budget(200)
        }
    }

    /// Switches to the Gaussian allocation of Appendix A (`CBAS-ND-G`).
    pub fn gaussian(mut self) -> Self {
        self.allocation = Allocation::Gaussian;
        self
    }

    /// The CBAS-ND settings a [`crate::SolverSpec`] carries: the staged
    /// base ([`CbasConfig::from_spec`]) plus the cross-entropy knobs
    /// (ρ, smoothing `w`, §4.4.2 backtracking threshold).
    pub fn from_spec(spec: &crate::SolverSpec) -> Self {
        let defaults = Self::with_budget(spec.budget_or_default());
        Self {
            base: CbasConfig::from_spec(spec),
            rho: spec.rho.unwrap_or(defaults.rho),
            smoothing: spec.smoothing.unwrap_or(defaults.smoothing),
            backtrack_threshold: spec.backtrack,
            allocation: defaults.allocation,
        }
    }

    /// Enables §4.4.2 backtracking with threshold `z_t`.
    pub fn with_backtracking(mut self, z_t: f64) -> Self {
        self.backtrack_threshold = Some(z_t);
        self
    }
}

/// The CBAS-ND solver: [`crate::engine::StagedEngine`] with the
/// cross-entropy candidate distribution.
#[derive(Debug, Clone)]
pub struct CbasNd {
    config: CbasNdConfig,
    /// Incumbent offered via [`Solver::warm_start`], forwarded to the
    /// engine so the best-so-far starts from it instead of from nothing.
    incumbent: Option<Vec<NodeId>>,
}

impl CbasNd {
    /// Creates the solver.
    pub fn new(config: CbasNdConfig) -> Self {
        Self {
            config,
            incumbent: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CbasNdConfig {
        &self.config
    }

    /// Crate alias used by the online planner (the confirmed attendees
    /// seed every sample). Same contract as the
    /// [`Solver::solve_with_required`] implementation below.
    pub(crate) fn solve_with_seeds(
        &mut self,
        instance: &WasoInstance,
        seeds: &[NodeId],
        seed: u64,
    ) -> Result<SolveResult, SolveError> {
        Solver::solve_with_required(self, instance, seeds, seed)
    }

    fn engine(&self) -> StagedEngine {
        let engine = StagedEngine::from_cbasnd(&self.config);
        match &self.incumbent {
            Some(nodes) => engine.warm_start(nodes.clone()),
            None => engine,
        }
    }
}

impl Solver for CbasNd {
    fn name(&self) -> &'static str {
        match self.config.allocation {
            Allocation::UniformOcba => "cbas-nd",
            Allocation::Gaussian => "cbas-nd-g",
        }
    }

    fn capabilities(&self) -> crate::Capabilities {
        crate::Capabilities {
            required_attendees: true,
            randomized: true,
            anytime: true,
            warm_start: true,
            ..crate::Capabilities::default()
        }
    }

    /// Stores the incumbent; every subsequent solve seeds its
    /// best-so-far from it (when feasible — see
    /// [`StagedEngine::warm_start`]). The sample stream is untouched, so
    /// a warm-started solve is a pure function of
    /// (instance, config, seed, incumbent).
    fn warm_start(&mut self, incumbent: &waso_core::Group) {
        self.incumbent = Some(incumbent.nodes().to_vec());
    }

    fn solve_seeded(
        &mut self,
        instance: &WasoInstance,
        seed: u64,
    ) -> Result<SolveResult, SolveError> {
        self.engine().solve(instance, StartMode::Fresh, seed)
    }

    /// Solves with *required attendees*: every sample grows from the given
    /// partial solution, so all `required` nodes appear in the answer.
    ///
    /// This powers two paper features: the §4.4.1 online extension (the
    /// confirmed attendees are required) and the §6 future-work item
    /// "allow users to specify some attendees that must be included in a
    /// certain group activity".
    ///
    /// `required` must contain no duplicates or blocked nodes and have at
    /// most `k` members. The required set itself need not be connected —
    /// feasibility of the full group is validated on the way out
    /// (`Err(SolveError::NoFeasibleGroup)` when no sample can connect
    /// everything).
    fn solve_with_required(
        &mut self,
        instance: &WasoInstance,
        required: &[NodeId],
        seed: u64,
    ) -> Result<SolveResult, SolveError> {
        if required.is_empty() {
            return self.solve_seeded(instance, seed);
        }
        if required.len() > instance.k() {
            return Err(SolveError::NoFeasibleGroup);
        }
        self.engine()
            .solve(instance, StartMode::Partial(required), seed)
    }

    /// Anytime CBAS-ND: stage-boundary cancel/deadline checks,
    /// `patience=` convergence stops and incumbent streaming, for fresh
    /// and required-attendee solves alike. Serial — the (ignored) `pool`
    /// is for solvers whose backend fans out.
    fn solve_controlled(
        &mut self,
        instance: &std::sync::Arc<waso_core::WasoInstance>,
        required: &[NodeId],
        seed: u64,
        _pool: Option<&crate::SharedPool>,
        control: &crate::JobControl,
    ) -> Result<SolveResult, SolveError> {
        if required.len() > instance.k() {
            return Err(SolveError::NoFeasibleGroup);
        }
        let mode = if required.is_empty() {
            StartMode::Fresh
        } else {
            StartMode::Partial(required)
        };
        self.engine()
            .solve_controlled(instance, mode, seed, control)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waso_graph::{generate, GraphBuilder, ScoreModel};

    fn figure1_instance() -> WasoInstance {
        let mut b = GraphBuilder::new();
        let v1 = b.add_node(8.0);
        let v2 = b.add_node(7.0);
        let v3 = b.add_node(6.0);
        let v4 = b.add_node(5.0);
        b.add_edge_symmetric(v1, v2, 1.0).unwrap();
        b.add_edge_symmetric(v2, v3, 2.0).unwrap();
        b.add_edge_symmetric(v3, v4, 4.0).unwrap();
        WasoInstance::new(b.build(), 3).unwrap()
    }

    fn random_instance(n: usize, k: usize, seed: u64) -> WasoInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = generate::barabasi_albert(n, 3, &mut rng);
        let g = ScoreModel::paper_default().realize(&topo, &mut rng);
        WasoInstance::new(g, k).unwrap()
    }

    #[test]
    fn finds_the_figure1_optimum() {
        let mut solver = CbasNd::new(CbasNdConfig::fast());
        let res = solver.solve_seeded(&figure1_instance(), 1).unwrap();
        assert_eq!(res.group.willingness(), 30.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let inst = random_instance(50, 5, 1);
        let a = CbasNd::new(CbasNdConfig::fast())
            .solve_seeded(&inst, 9)
            .unwrap();
        let b = CbasNd::new(CbasNdConfig::fast())
            .solve_seeded(&inst, 9)
            .unwrap();
        assert_eq!(a.group, b.group);
        assert_eq!(a.stats.samples_drawn, b.stats.samples_drawn);
    }

    #[test]
    fn budget_accounting_is_exact() {
        let inst = random_instance(60, 6, 2);
        let mut cfg = CbasNdConfig::with_budget(120);
        cfg.base.stages = Some(4);
        let res = CbasNd::new(cfg).solve_seeded(&inst, 3).unwrap();
        assert_eq!(res.stats.samples_drawn, 120);
        assert_eq!(res.stats.stages, 4);
    }

    #[test]
    fn gaussian_variant_also_solves() {
        let inst = random_instance(50, 5, 3);
        let mut cfg = CbasNdConfig::with_budget(100).gaussian();
        cfg.base.stages = Some(4);
        let mut solver = CbasNd::new(cfg);
        assert_eq!(solver.name(), "cbas-nd-g");
        let res = solver.solve_seeded(&inst, 4).unwrap();
        assert_eq!(res.group.len(), 5);
        assert_eq!(res.stats.samples_drawn, 100);
    }

    #[test]
    fn backtracking_reverts_converged_vectors() {
        let inst = random_instance(40, 4, 5);
        // Huge threshold: every update counts as converged → reverts.
        let mut cfg = CbasNdConfig::with_budget(80).with_backtracking(1e9);
        cfg.base.stages = Some(4);
        let res = CbasNd::new(cfg).solve_seeded(&inst, 5).unwrap();
        assert!(res.stats.backtracks > 0);

        // Zero threshold: never converged → never reverts.
        let mut cfg = CbasNdConfig::with_budget(80).with_backtracking(0.0);
        cfg.base.stages = Some(4);
        let res = CbasNd::new(cfg).solve_seeded(&inst, 5).unwrap();
        assert_eq!(res.stats.backtracks, 0);
    }

    #[test]
    fn matches_or_beats_cbas_on_average() {
        // Theorem 6's claim, measured: same budget, averaged over seeds.
        use crate::cbas::{Cbas, CbasConfig};
        let inst = random_instance(120, 8, 7);
        let budget = 150u64;
        let mut nd_total = 0.0;
        let mut cbas_total = 0.0;
        for seed in 0..8 {
            let mut nd_cfg = CbasNdConfig::with_budget(budget);
            nd_cfg.base.stages = Some(5);
            let nd = CbasNd::new(nd_cfg).solve_seeded(&inst, seed).unwrap();
            let mut c_cfg = CbasConfig::with_budget(budget);
            c_cfg.stages = Some(5);
            let cb = Cbas::new(c_cfg).solve_seeded(&inst, seed).unwrap();
            nd_total += nd.group.willingness();
            cbas_total += cb.group.willingness();
        }
        assert!(
            nd_total >= cbas_total * 0.98,
            "CBAS-ND ({nd_total:.2}) should not lose to CBAS ({cbas_total:.2})"
        );
    }

    #[test]
    fn partial_seeding_keeps_confirmed_attendees() {
        let inst = random_instance(50, 6, 8);
        let seeds = [NodeId(0), NodeId(1)];
        // Ensure the seeds are adjacent in this BA graph (node 1 is in the
        // seed clique, node 0 too).
        let mut cfg = CbasNdConfig::with_budget(60);
        cfg.base.stages = Some(3);
        let res = CbasNd::new(cfg).solve_with_seeds(&inst, &seeds, 2).unwrap();
        assert!(res.group.contains(NodeId(0)));
        assert!(res.group.contains(NodeId(1)));
        assert_eq!(res.group.len(), 6);
    }

    #[test]
    fn required_attendees_always_appear() {
        let inst = random_instance(60, 6, 21);
        let required = [NodeId(2), NodeId(3)];
        let mut cfg = CbasNdConfig::with_budget(80);
        cfg.base.stages = Some(3);
        let res = CbasNd::new(cfg)
            .solve_with_required(&inst, &required, 4)
            .unwrap();
        for &v in &required {
            assert!(res.group.contains(v), "{v} missing from {}", res.group);
        }
        res.group.validate(&inst).expect("feasible group");
    }

    #[test]
    fn too_many_required_is_infeasible() {
        let inst = random_instance(30, 3, 22);
        let required: Vec<NodeId> = (0..4u32).map(NodeId).collect();
        let err = CbasNd::new(CbasNdConfig::fast())
            .solve_with_required(&inst, &required, 0)
            .unwrap_err();
        assert_eq!(err, crate::SolveError::NoFeasibleGroup);
    }

    #[test]
    fn disconnected_required_set_is_bridged_or_rejected() {
        // Path 0-1-2-3-4: requiring {0, 4} with k = 5 forces the bridge
        // through all intermediate nodes.
        let mut b = waso_graph::GraphBuilder::new();
        let ids: Vec<NodeId> = (0..5).map(|i| b.add_node(i as f64)).collect();
        for w in ids.windows(2) {
            b.add_edge_symmetric(w[0], w[1], 1.0).unwrap();
        }
        let inst = WasoInstance::new(b.build(), 5).unwrap();
        let mut cfg = CbasNdConfig::with_budget(40);
        cfg.base.stages = Some(2);
        let res = CbasNd::new(cfg.clone())
            .solve_with_required(&inst, &[NodeId(0), NodeId(4)], 1)
            .unwrap();
        assert_eq!(res.group.len(), 5);
        res.group
            .validate(&inst)
            .expect("bridged group is connected");

        // k = 3 cannot connect 0 and 4 on a path — infeasible.
        let inst3 = WasoInstance::new(
            {
                let mut b = waso_graph::GraphBuilder::new();
                let ids: Vec<NodeId> = (0..5).map(|i| b.add_node(i as f64)).collect();
                for w in ids.windows(2) {
                    b.add_edge_symmetric(w[0], w[1], 1.0).unwrap();
                }
                b.build()
            },
            3,
        )
        .unwrap();
        let err = CbasNd::new(cfg)
            .solve_with_required(&inst3, &[NodeId(0), NodeId(4)], 1)
            .unwrap_err();
        assert_eq!(err, crate::SolveError::NoFeasibleGroup);
    }

    #[test]
    fn start_override_is_respected() {
        let inst = figure1_instance();
        let mut cfg = CbasNdConfig::fast();
        cfg.base.start_override = Some(vec![NodeId(0)]);
        let res = CbasNd::new(cfg).solve_seeded(&inst, 0).unwrap();
        assert!(res.group.contains(NodeId(0)));
        assert_eq!(res.stats.start_nodes, 1);
    }
}

//! [`SharedPool`] — the process-wide, self-healing worker pool.
//!
//! One set of owned worker threads serves **any number of concurrent
//! solves** ("jobs"): every `WasoSession` of a process can attach to the
//! same pool, and independent jobs of a `solve_batch` run over it at the
//! same time. Three ideas make that safe and fast:
//!
//! * **Job-level scheduling.** Every solve submits itself as a job with a
//!   unique id. Per stage, the job's coordinator deals the stage's item
//!   list across the workers ([`Deal::Striped`] round-robin or
//!   [`Deal::Chunked`] contiguous ranges) and tags each chunk with its
//!   job id and stage number (the job's *epoch*). Workers interleave
//!   chunks of different jobs in FIFO order, so a light job's chunks flow
//!   between a heavy job's chunks instead of queueing behind the heavy
//!   job as a whole.
//! * **Per-(job, worker) reply channels.** Each job attaches to each
//!   worker with its own reply channel. A worker that panics unwinds its
//!   job table, dropping every reply sender it held — so *every* attached
//!   job observes the death as a disconnect on its own result channel,
//!   never as a hang. `std::sync::mpsc` delivers all sent messages before
//!   reporting disconnection, so a reply that was actually produced is
//!   never re-drawn.
//! * **Generation-tagged slots.** Each worker slot carries a generation
//!   counter. The first coordinator to observe a death respawns the
//!   worker under the slot's lock and bumps the generation; coordinators
//!   that observed the same dead generation find it already healed,
//!   re-attach, and re-issue exactly the chunks whose replies never
//!   arrived. The pool never poisons: a panicked worker costs one respawn
//!   and a re-draw of its in-flight samples, nothing else.
//!
//! Determinism is untouched by any of this: samples draw from per-item
//! RNG streams and merge by item index, so *which* worker (or its
//! replacement) draws a sample — and in what deal pattern — is invisible
//! in results. A solve over a shared pool is bit-identical to the same
//! solve run serially, regardless of how many other jobs or sessions
//! share the pool (`tests/properties.rs` pins this down; the
//! failure-injection suite pins the healing path).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use waso_graph::NodeId;

use super::{draw_span, take_share, PoolSpares, SolveCtx, Span, StageExec};
use crate::sampler::{Sample, Sampler};

/// How many consecutive instant worker deaths a coordinator tolerates
/// while healing one slot before concluding the failure is deterministic
/// (e.g. a sampler bug that kills every replacement too) and panicking
/// loudly instead of respawning forever.
const MAX_HEALS_PER_CHUNK: usize = 16;

/// How a job's stage items are dealt across the pool's workers. Both
/// deals cover every item exactly once and merge by item index, so they
/// produce **bit-identical results** — only the schedule differs.
/// Chunked deals keep each worker's items contiguous, which matters for
/// heavy-tailed per-sample costs (see the ROADMAP's work-stealing item).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Deal {
    /// Worker `w` of `T` draws items `w, w+T, w+2T, …` (the historical
    /// round-robin stripe).
    #[default]
    Striped,
    /// Worker `w` draws the contiguous range `[w·c, (w+1)·c)` with
    /// `c = ⌈items/T⌉`.
    Chunked,
}

/// The per-slot deal of one stage: which workers get which [`Span`]s.
/// Empty spans are skipped (no message, no reply).
fn deal_spans(deal: Deal, n_items: usize, workers: usize) -> Vec<(usize, Span)> {
    let workers = workers.max(1);
    match deal {
        Deal::Striped => (0..workers.min(n_items))
            .map(|w| (w, Span::stripe(w, workers)))
            .collect(),
        Deal::Chunked => {
            let c = n_items.div_ceil(workers).max(1);
            (0..workers)
                .map(|w| {
                    (
                        w,
                        Span {
                            offset: w * c,
                            stride: 1,
                            limit: c,
                        },
                    )
                })
                .filter(|&(_, span)| span.offset < n_items)
                .collect()
        }
    }
}

/// A message to a shared-pool worker. Every variant names the job it
/// belongs to; `Chunk` additionally carries the job's stage number — the
/// epoch tag the failure-injection hook keys on.
enum WorkerMsg {
    /// Start serving a job: build a sampler for its instance, hold its
    /// context and reply sender until `Detach`.
    Attach {
        job: u64,
        ctx: Arc<SolveCtx>,
        reply: Sender<ChunkReply>,
    },
    /// Draw one span of the job's current stage.
    Chunk {
        job: u64,
        stage: u64,
        span: Span,
        buf: Vec<(usize, Option<Sample>)>,
        recycled: Vec<Vec<NodeId>>,
    },
    /// The job is over; drop its context, sampler and reply sender.
    Detach { job: u64 },
}

/// One chunk's answer: the drawn `(item index, sample)` pairs plus the
/// emptied recycling container going back to the job's spares.
struct ChunkReply {
    buf: Vec<(usize, Option<Sample>)>,
    empties: Vec<Vec<NodeId>>,
    /// Whether the span was drawn in full (`false`: the job's stop signal
    /// tripped mid-span; the engine abandons the stage).
    complete: bool,
}

/// Worker-side state for one attached job.
struct WorkerJob {
    ctx: Arc<SolveCtx>,
    sampler: Sampler,
    reply: Sender<ChunkReply>,
}

/// The test-only failure hook: arms one `(slot, stage)` pair; the worker
/// in that slot panics on the first chunk it receives for that stage.
/// Fires once, then disarms itself.
#[derive(Default)]
struct FailPoint {
    armed: AtomicBool,
    plan: Mutex<Option<(usize, u64)>>,
}

impl FailPoint {
    fn arm(&self, slot: usize, stage: u64) {
        *self.plan.lock().unwrap_or_else(PoisonError::into_inner) = Some((slot, stage));
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Panics iff the armed plan matches; called by workers per chunk.
    fn check(&self, slot: usize, stage: u64) {
        if !self.armed.load(Ordering::Relaxed) {
            return;
        }
        let mut plan = self.plan.lock().unwrap_or_else(PoisonError::into_inner);
        if *plan == Some((slot, stage)) {
            *plan = None;
            self.armed.store(false, Ordering::SeqCst);
            drop(plan); // release before unwinding — don't poison the hook
                        // audit:allow(P2): test-only fault-injection hook — panicking on cue is its entire purpose, and it only fires when a test arms it
            panic!("injected failure: shared-pool worker {slot} at stage {stage}");
        }
    }
}

/// One worker slot of the pool. The generation counter distinguishes a
/// slot's successive incarnations, so concurrent coordinators that saw
/// the same death respawn at most one replacement.
struct Slot {
    generation: u64,
    tx: Sender<WorkerMsg>,
    handle: Option<JoinHandle<()>>,
}

/// Per-slot utilization gauge, shared between the pool (snapshot reads)
/// and the slot's current worker thread (writes). The gauge belongs to
/// the *slot*, not the thread: a respawned replacement inherits it, so
/// `chunks_processed` counts the slot's lifetime work.
#[derive(Debug, Default)]
struct WorkerGauge {
    /// `true` while the worker is drawing a chunk (between dequeue and
    /// reply), `false` while parked on its inbox.
    busy: AtomicBool,
    /// Chunks the slot has fully processed over its lifetime.
    chunks: AtomicU64,
}

/// A point-in-time utilization snapshot of one worker slot
/// (see [`SharedPool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Whether the worker was mid-chunk when the snapshot was taken.
    pub busy: bool,
    /// Chunks the slot has processed over the pool's lifetime.
    pub chunks_processed: u64,
}

/// A point-in-time health snapshot of a [`SharedPool`] — the
/// observability surface a serving deployment scrapes (and the
/// `--figure pool` bench driver prints). All numbers are racy by nature:
/// they describe the instant of the call, not a consistent cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker count (fixed at construction).
    pub threads: usize,
    /// Jobs currently attached (submitted, not yet finished/dropped).
    pub active_jobs: usize,
    /// Per-job queue depth: chunks dispatched to workers and not yet
    /// collected, keyed by job id. A consistently deep entry is a job
    /// whose coordinator is falling behind (or a saturated pool).
    pub queued_chunks: Vec<(u64, u64)>,
    /// Per-slot busy/idle flags and lifetime chunk counters.
    pub workers: Vec<WorkerStats>,
    /// Workers respawned after a panic ([`SharedPool::respawned_workers`]).
    pub respawned_workers: u64,
}

impl PoolStats {
    /// Total in-flight chunks across every active job.
    pub fn total_queued(&self) -> u64 {
        self.queued_chunks.iter().map(|&(_, d)| d).sum()
    }

    /// Workers busy at snapshot time.
    pub fn busy_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.busy).count()
    }
}

impl std::fmt::Display for PoolStats {
    /// One line for logs/benches: `3 workers (1 busy), 2 jobs, 5 queued
    /// chunks, 0 respawns`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} workers ({} busy), {} jobs, {} queued chunks, {} respawns",
            self.threads,
            self.busy_workers(),
            self.active_jobs,
            self.total_queued(),
            self.respawned_workers
        )
    }
}

/// The process-wide, self-healing worker pool. See the module docs for
/// the scheduling and recovery model; construction is [`SharedPool::new`]
/// (round-robin deal) or [`SharedPool::with_deal`]. Share one across
/// sessions with `Arc<SharedPool>` — every method takes `&self`.
pub struct SharedPool {
    slots: Vec<Mutex<Slot>>,
    /// Slot-lifetime utilization gauges; replacements inherit their
    /// slot's gauge.
    gauges: Vec<Arc<WorkerGauge>>,
    threads: usize,
    deal: Deal,
    next_job: AtomicU64,
    respawns: AtomicU64,
    /// In-flight chunk counts per active job (dispatched, not collected).
    job_depths: Mutex<BTreeMap<u64, u64>>,
    fail: Arc<FailPoint>,
}

impl std::fmt::Debug for SharedPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPool")
            .field("threads", &self.threads)
            .field("deal", &self.deal)
            .field("respawns", &self.respawns.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

fn spawn_worker(
    slot: usize,
    fail: Arc<FailPoint>,
    gauge: Arc<WorkerGauge>,
) -> (Sender<WorkerMsg>, JoinHandle<()>) {
    let (tx, rx) = channel::<WorkerMsg>();
    let handle = std::thread::Builder::new()
        .name(format!("waso-pool-{slot}"))
        .spawn(move || worker_loop(slot, rx, fail, gauge))
        // audit:allow(P2): thread exhaustion at pool construction/heal — a pool that cannot run workers cannot make progress, so fail fast
        .expect("spawning a shared-pool worker thread");
    (tx, handle)
}

/// The worker body: a job table keyed by job id, chunks drawn with the
/// job's own sampler and answered on the job's own reply channel. A chunk
/// for an unknown job id is stale (the job detached or its coordinator
/// died) and is dropped; a reply that cannot be delivered detaches the
/// job explicitly — teardown never depends on channel-drop ordering.
fn worker_loop(
    slot: usize,
    rx: Receiver<WorkerMsg>,
    fail: Arc<FailPoint>,
    gauge: Arc<WorkerGauge>,
) {
    let mut jobs: BTreeMap<u64, WorkerJob> = BTreeMap::new();
    // A replacement inherits its slot's gauge; clear the busy flag its
    // panicked predecessor may have left set.
    gauge.busy.store(false, Ordering::Relaxed);
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Attach { job, ctx, reply } => {
                let mut sampler = Sampler::for_instance(&ctx.instance);
                sampler.set_blocked(ctx.blocked.clone());
                jobs.insert(
                    job,
                    WorkerJob {
                        ctx,
                        sampler,
                        reply,
                    },
                );
            }
            WorkerMsg::Detach { job } => {
                jobs.remove(&job);
            }
            WorkerMsg::Chunk {
                job,
                stage,
                span,
                mut buf,
                mut recycled,
            } => {
                gauge.busy.store(true, Ordering::Relaxed);
                fail.check(slot, stage);
                let Some(entry) = jobs.get_mut(&job) else {
                    gauge.busy.store(false, Ordering::Relaxed);
                    continue; // stale chunk of a detached job
                };
                buf.clear();
                for spent in recycled.drain(..) {
                    entry.sampler.recycle(spent);
                }
                let complete = draw_span(
                    &mut entry.sampler,
                    &entry.ctx.instance,
                    &entry.ctx.shared,
                    entry.ctx.partial.as_deref(),
                    stage,
                    entry.ctx.seed,
                    span,
                    entry.ctx.stop.as_deref(),
                    &mut buf,
                );
                // Gauge updates precede the reply send: the channel's
                // synchronization publishes them, so a coordinator that
                // has collected every reply observes an idle pool.
                gauge.chunks.fetch_add(1, Ordering::Relaxed);
                gauge.busy.store(false, Ordering::Relaxed);
                let gone = entry
                    .reply
                    .send(ChunkReply {
                        buf,
                        empties: recycled,
                        complete,
                    })
                    .is_err();
                if gone {
                    jobs.remove(&job); // coordinator gone: explicit detach
                }
            }
        }
    }
}

impl SharedPool {
    /// A pool of `threads` owned workers (clamped to ≥ 1), round-robin
    /// deal.
    pub fn new(threads: usize) -> Self {
        Self::with_deal(threads, Deal::Striped)
    }

    /// A pool with an explicit [`Deal`]. The deal affects scheduling
    /// only — results are bit-identical either way.
    pub fn with_deal(threads: usize, deal: Deal) -> Self {
        let threads = threads.max(1);
        let fail = Arc::new(FailPoint::default());
        let gauges: Vec<Arc<WorkerGauge>> = (0..threads)
            .map(|_| Arc::new(WorkerGauge::default()))
            .collect();
        let slots = gauges
            .iter()
            .enumerate()
            .map(|(s, gauge)| {
                let (tx, handle) = spawn_worker(s, Arc::clone(&fail), Arc::clone(gauge));
                Mutex::new(Slot {
                    generation: 0,
                    tx,
                    handle: Some(handle),
                })
            })
            .collect();
        Self {
            slots,
            gauges,
            threads,
            deal,
            next_job: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            job_depths: Mutex::new(BTreeMap::new()),
            fail,
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The deal pattern jobs are scheduled with.
    pub fn deal(&self) -> Deal {
        self.deal
    }

    /// How many workers have been respawned after a panic over the pool's
    /// lifetime. Zero on a healthy pool; observability for the
    /// failure-injection suite and for serving-side health checks.
    pub fn respawned_workers(&self) -> u64 {
        self.respawns.load(Ordering::SeqCst)
    }

    /// A point-in-time health snapshot: active jobs, per-job queue
    /// depths (chunks dispatched but not yet collected), per-worker
    /// busy/idle flags and lifetime chunk counters, and the respawn
    /// count. Cheap — a handful of relaxed atomic loads plus one short
    /// lock — so serving deployments can scrape it on every health poll.
    pub fn stats(&self) -> PoolStats {
        let queued_chunks: Vec<(u64, u64)> = self
            .job_depths
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&job, &depth)| (job, depth))
            .collect();
        PoolStats {
            threads: self.threads,
            active_jobs: queued_chunks.len(),
            queued_chunks,
            workers: self
                .gauges
                .iter()
                .map(|g| WorkerStats {
                    busy: g.busy.load(Ordering::Relaxed),
                    chunks_processed: g.chunks.load(Ordering::Relaxed),
                })
                .collect(),
            respawned_workers: self.respawned_workers(),
        }
    }

    /// Adjusts one job's in-flight chunk gauge (`None` removes the job).
    fn track_depth(&self, job: u64, delta: Option<i64>) {
        let mut depths = self
            .job_depths
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match delta {
            None => {
                depths.remove(&job);
            }
            Some(d) => {
                let slot = depths.entry(job).or_insert(0);
                *slot = slot.saturating_add_signed(d);
            }
        }
    }

    /// Test-only failure injection: the worker in `slot` panics on the
    /// next chunk it receives for stage `stage` (of any job). Fires once.
    /// The pool detects the death, respawns the worker and re-issues the
    /// lost samples — results are unchanged; see the failure-injection
    /// test suite. A `slot >= threads()` never fires. Hidden from the
    /// documented API: this exists for the cross-crate test suites and
    /// chaos drills, not for production callers (when disarmed — always,
    /// outside those suites — it costs one relaxed atomic load per
    /// chunk).
    #[doc(hidden)]
    pub fn inject_worker_panic(&self, slot: usize, stage: u64) {
        self.fail.arm(slot, stage);
    }

    /// Submits one solve as a job: attaches it to every worker and
    /// returns its coordinator handle (the solve's [`StageExec`]).
    /// Dropping the handle detaches the job.
    pub(crate) fn submit(&self, ctx: Arc<SolveCtx>) -> PoolJob<'_> {
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        self.track_depth(id, Some(0)); // job is now visible in stats()
        let mut job = PoolJob {
            pool: self,
            ctx,
            id,
            links: Vec::with_capacity(self.threads),
            spares: PoolSpares::default(),
        };
        for s in 0..self.threads {
            job.relink(s, None);
        }
        job
    }

    /// The current `(sender, generation)` of `slot`, respawning its
    /// worker first when the caller observed generation `seen_dead` fail.
    /// Slot locks serialize respawns: whichever coordinator gets there
    /// first replaces the thread, everyone else sees the bumped
    /// generation and just re-attaches. `None` for an out-of-range slot
    /// — callers treat that like a dead worker they cannot heal.
    fn live_slot(&self, slot: usize, seen_dead: Option<u64>) -> Option<(Sender<WorkerMsg>, u64)> {
        let mut guard = self
            .slots
            .get(slot)?
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if seen_dead == Some(guard.generation) {
            if let Some(handle) = guard.handle.take() {
                // The thread has panicked (or is unwinding); join returns
                // its Err payload, which the respawn supersedes.
                let _ = handle.join();
            }
            let gauge = self.gauges.get(slot).map(Arc::clone).unwrap_or_default();
            let (tx, handle) = spawn_worker(slot, Arc::clone(&self.fail), gauge);
            guard.tx = tx;
            guard.handle = Some(handle);
            guard.generation += 1;
            self.respawns.fetch_add(1, Ordering::SeqCst);
        }
        Some((guard.tx.clone(), guard.generation))
    }
}

impl Drop for SharedPool {
    fn drop(&mut self) {
        // Explicit shutdown: close every worker's inbox first (all
        // workers start exiting concurrently), then join. Jobs cannot be
        // in flight here — a live job borrows the pool.
        for slot in &mut self.slots {
            let slot = slot.get_mut().unwrap_or_else(PoisonError::into_inner);
            let (dead_tx, _) = channel();
            slot.tx = dead_tx;
        }
        for slot in &mut self.slots {
            let slot = slot.get_mut().unwrap_or_else(PoisonError::into_inner);
            if let Some(handle) = slot.handle.take() {
                // A worker that panicked already surfaced the failure to
                // its coordinators; the join result adds nothing here.
                let _ = handle.join();
            }
        }
    }
}

/// A job's link to one worker slot: the slot's sender as of the
/// generation the job last attached at, plus the job's private reply
/// channel for that worker.
struct Link {
    tx: Sender<WorkerMsg>,
    generation: u64,
    reply_rx: Receiver<ChunkReply>,
}

/// One solve's coordinator handle over a [`SharedPool`]: submits a chunk
/// per worker per stage, collects and merges the replies, and heals dead
/// workers as it finds them. Detaches the job from every worker on drop.
pub(crate) struct PoolJob<'p> {
    pool: &'p SharedPool,
    ctx: Arc<SolveCtx>,
    id: u64,
    links: Vec<Link>,
    spares: PoolSpares,
}

impl PoolJob<'_> {
    /// (Re-)attaches this job to `slot`. `seen_dead` carries the
    /// generation the caller observed failing (None on first attach);
    /// the pool respawns the worker if nobody else has yet.
    fn relink(&mut self, slot: usize, seen_dead: Option<u64>) {
        let mut seen = seen_dead;
        for _ in 0..MAX_HEALS_PER_CHUNK {
            // An out-of-range slot cannot be healed; fall through to the
            // give-up abort below instead of indexing out of bounds.
            let Some((tx, generation)) = self.pool.live_slot(slot, seen) else {
                break;
            };
            let (reply_tx, reply_rx) = channel();
            let attached = tx
                .send(WorkerMsg::Attach {
                    job: self.id,
                    ctx: Arc::clone(&self.ctx),
                    reply: reply_tx,
                })
                .is_ok();
            if attached {
                let link = Link {
                    tx,
                    generation,
                    reply_rx,
                };
                if let Some(l) = self.links.get_mut(slot) {
                    *l = link;
                } else {
                    debug_assert_eq!(slot, self.links.len());
                    self.links.push(link);
                }
                return;
            }
            // The replacement died before taking the attach — treat this
            // generation as dead too and try again.
            seen = Some(generation);
        }
        // audit:allow(P2): designed abort — after MAX_HEALS_PER_CHUNK consecutive respawn failures the host is too sick to solve; the serve waiter thread shields jobs with catch_unwind
        panic!("shared-pool worker {slot} died {MAX_HEALS_PER_CHUNK} times in a row; giving up");
    }

    /// Sends one chunk to `slot`, healing (respawn + re-attach) on a dead
    /// worker until the send lands.
    fn dispatch(
        &mut self,
        slot: usize,
        stage: u64,
        span: Span,
        slab: &mut Vec<Vec<NodeId>>,
        per_worker: usize,
    ) {
        let buf = self.spares.bufs.pop().unwrap_or_default();
        let recycled = take_share(slab, &mut self.spares.recycle_containers, per_worker);
        let mut msg = WorkerMsg::Chunk {
            job: self.id,
            stage,
            span,
            buf,
            recycled,
        };
        loop {
            // deal_spans only produces slots in 0..links.len(), so a
            // missing link is unreachable; drop the chunk over panicking.
            let Some(link) = self.links.get(slot) else {
                debug_assert!(false, "dispatch to unlinked slot {slot}");
                return;
            };
            match link.tx.send(msg) {
                Ok(()) => {
                    self.pool.track_depth(self.id, Some(1));
                    return;
                }
                Err(std::sync::mpsc::SendError(undelivered)) => {
                    // Dead worker noticed at dispatch: heal, then re-send
                    // the identical chunk. relink panics if replacements
                    // keep dying, so this loop terminates.
                    let seen = link.generation;
                    self.relink(slot, Some(seen));
                    msg = undelivered;
                }
            }
        }
    }

    /// Collects `slot`'s reply for the given chunk, healing and
    /// re-issuing the chunk when the worker died with it in flight.
    /// Returns whether the chunk was drawn in full (`false`: the job's
    /// stop signal tripped mid-span).
    fn collect(
        &mut self,
        slot: usize,
        stage: u64,
        span: Span,
        results: &mut [Option<Sample>],
    ) -> bool {
        for _ in 0..MAX_HEALS_PER_CHUNK {
            // Same invariant as dispatch: every dealt slot has a link.
            let Some(link) = self.links.get(slot) else {
                debug_assert!(false, "collect from unlinked slot {slot}");
                return false;
            };
            match link.reply_rx.recv() {
                Ok(ChunkReply {
                    mut buf,
                    empties,
                    complete,
                }) => {
                    for (j, s) in buf.drain(..) {
                        if let Some(r) = results.get_mut(j) {
                            *r = s;
                        }
                    }
                    self.spares.bufs.push(buf);
                    self.spares.recycle_containers.push(empties);
                    self.pool.track_depth(self.id, Some(-1));
                    return complete;
                }
                Err(_) => {
                    // The worker died before answering: its in-flight
                    // samples were never drawn (mpsc delivers every sent
                    // reply before disconnecting), so re-issuing the span
                    // draws each exactly once. The dead worker's buffers
                    // are gone; the replacement starts with fresh ones.
                    let seen = link.generation;
                    self.relink(slot, Some(seen));
                    if let Some(link) = self.links.get(slot) {
                        let _ = link.tx.send(WorkerMsg::Chunk {
                            job: self.id,
                            stage,
                            span,
                            buf: Vec::new(),
                            recycled: Vec::new(),
                        });
                    }
                    // A failed re-send means the replacement died too; the
                    // next recv errors immediately and we heal again.
                }
            }
        }
        // audit:allow(P2): designed abort — after MAX_HEALS_PER_CHUNK consecutive worker deaths on one chunk the host is too sick to solve; the serve waiter thread shields jobs with catch_unwind
        panic!(
            "shared-pool worker {slot} died {MAX_HEALS_PER_CHUNK} times re-drawing one chunk; giving up"
        );
    }
}

impl StageExec for PoolJob<'_> {
    fn run_stage(
        &mut self,
        stage: u64,
        results: &mut [Option<Sample>],
        slab: &mut Vec<Vec<NodeId>>,
    ) -> bool {
        let spans = deal_spans(self.pool.deal, results.len(), self.links.len());
        let per_worker = slab.len().div_ceil(spans.len().max(1));
        for &(slot, span) in &spans {
            self.dispatch(slot, stage, span, slab, per_worker);
        }
        // Every dispatched chunk is collected even after one comes back
        // incomplete — workers answer in order, and leaving a reply in
        // flight would corrupt the next stage.
        let mut all_complete = true;
        for &(slot, span) in &spans {
            all_complete &= self.collect(slot, stage, span, results);
        }
        all_complete
    }
}

impl Drop for PoolJob<'_> {
    fn drop(&mut self) {
        self.pool.track_depth(self.id, None);
        for link in &self.links {
            // Explicit detach; a dead worker (send error) holds no state
            // for this job anyway, and replies still in flight are
            // dropped with our receiver — teardown is ordering-free.
            let _ = link.tx.send(WorkerMsg::Detach { job: self.id });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{StageShared, WorkItem};
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waso_core::WasoInstance;
    use waso_graph::{generate, ScoreModel};

    fn instance(n: usize, k: usize, seed: u64) -> Arc<WasoInstance> {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = generate::barabasi_albert(n, 3, &mut rng);
        let g = ScoreModel::paper_default().realize(&topo, &mut rng);
        Arc::new(WasoInstance::new(g, k).unwrap())
    }

    /// A fresh one-stage context: `samples` draws of start node 0.
    fn ctx_with_items(inst: &Arc<WasoInstance>, samples: usize, seed: u64) -> Arc<SolveCtx> {
        let shared = StageShared::new(Vec::new(), 1);
        {
            let mut items = shared.write_items();
            for q in 0..samples {
                items.push(WorkItem {
                    start_index: 0,
                    start: waso_graph::NodeId(0),
                    q: q as u64,
                });
            }
        }
        Arc::new(SolveCtx {
            instance: Arc::clone(inst),
            blocked: None,
            shared,
            seed,
            partial: None,
            stop: None,
        })
    }

    fn stage_results(pool: &SharedPool, ctx: &Arc<SolveCtx>, samples: usize) -> Vec<Option<f64>> {
        let mut job = pool.submit(Arc::clone(ctx));
        let mut results: Vec<Option<Sample>> = vec![None; samples];
        let mut slab = Vec::new();
        job.run_stage(0, &mut results, &mut slab);
        results
            .into_iter()
            .map(|s| s.map(|s| s.willingness))
            .collect()
    }

    #[test]
    fn deals_cover_every_item_exactly_once() {
        for deal in [Deal::Striped, Deal::Chunked] {
            for n in [0usize, 1, 3, 7, 8, 23] {
                for workers in [1usize, 2, 4, 8] {
                    let spans = deal_spans(deal, n, workers);
                    let mut seen = vec![0u32; n];
                    for &(_, span) in &spans {
                        let mut j = span.offset;
                        let mut left = span.limit;
                        while j < n && left > 0 {
                            seen[j] += 1;
                            j += span.stride;
                            left -= 1;
                        }
                    }
                    assert!(
                        seen.iter().all(|&c| c == 1),
                        "{deal:?} n={n} workers={workers}: {seen:?}"
                    );
                    // No empty assignments are dealt.
                    assert!(spans.iter().all(|&(_, s)| s.offset < n || n == 0));
                }
            }
        }
    }

    #[test]
    fn striped_and_chunked_deals_agree() {
        let inst = instance(40, 4, 1);
        for threads in [1usize, 2, 3, 8] {
            let striped = SharedPool::with_deal(threads, Deal::Striped);
            let chunked = SharedPool::with_deal(threads, Deal::Chunked);
            let a = stage_results(&striped, &ctx_with_items(&inst, 17, 7), 17);
            let b = stage_results(&chunked, &ctx_with_items(&inst, 17, 7), 17);
            assert_eq!(a, b, "threads={threads}");
            assert!(a.iter().any(|s| s.is_some()));
        }
    }

    #[test]
    fn concurrent_jobs_from_many_threads_are_independent() {
        let pool = SharedPool::new(3);
        let inst = instance(50, 5, 2);
        // Baseline: each job alone.
        let baselines: Vec<_> = (0..4u64)
            .map(|seed| stage_results(&pool, &ctx_with_items(&inst, 12, seed), 12))
            .collect();
        // The same four jobs raced from four OS threads.
        let raced: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u64)
                .map(|seed| {
                    let pool = &pool;
                    let inst = &inst;
                    scope.spawn(move || stage_results(pool, &ctx_with_items(inst, 12, seed), 12))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(baselines, raced);
        assert_eq!(pool.respawned_workers(), 0);
    }

    #[test]
    fn injected_panic_heals_and_redraws_in_flight_samples() {
        let inst = instance(40, 4, 3);
        let healthy = {
            let pool = SharedPool::new(2);
            stage_results(&pool, &ctx_with_items(&inst, 10, 5), 10)
        };
        for slot in 0..2 {
            let pool = SharedPool::new(2);
            pool.inject_worker_panic(slot, 0);
            let wounded = stage_results(&pool, &ctx_with_items(&inst, 10, 5), 10);
            assert_eq!(wounded, healthy, "slot={slot}");
            assert_eq!(pool.respawned_workers(), 1, "slot={slot}");
            // The healed pool keeps serving new jobs.
            let again = stage_results(&pool, &ctx_with_items(&inst, 10, 5), 10);
            assert_eq!(again, healthy, "slot={slot}");
            assert_eq!(pool.respawned_workers(), 1, "slot={slot}");
        }
    }

    #[test]
    fn job_drop_with_chunk_in_flight_neither_hangs_nor_wedges_the_pool() {
        // The regression for relying on channel-drop ordering: a job is
        // dropped with a dispatched, uncollected chunk. The worker's
        // reply send fails (our receiver is gone) and it must detach the
        // job explicitly; the pool then serves the next job normally and
        // drops without hanging.
        let inst = instance(30, 3, 4);
        let pool = SharedPool::new(2);
        {
            let ctx = ctx_with_items(&inst, 8, 9);
            let mut job = pool.submit(Arc::clone(&ctx));
            let mut slab = Vec::new();
            job.dispatch(0, 0, Span::stripe(0, 2), &mut slab, 0);
            // Dropped here: detach overtakes (or trails) the in-flight
            // reply — either order must be harmless.
        }
        let ctx = ctx_with_items(&inst, 8, 9);
        let results = stage_results(&pool, &ctx, 8);
        assert!(results.iter().any(|s| s.is_some()));
        assert_eq!(pool.respawned_workers(), 0);
        drop(pool); // must join cleanly — a hang fails the test by timeout
    }

    #[test]
    fn stats_track_jobs_chunks_and_workers() {
        let inst = instance(40, 4, 8);
        let pool = SharedPool::new(2);
        // Idle pool: no jobs, nothing queued, nobody busy, no work done.
        let idle = pool.stats();
        assert_eq!(idle.threads, 2);
        assert_eq!(idle.active_jobs, 0);
        assert_eq!(idle.total_queued(), 0);
        assert_eq!(idle.busy_workers(), 0);
        assert_eq!(idle.workers.len(), 2);

        // A job with one dispatched, uncollected chunk shows up in the
        // per-job queue depths.
        let ctx = ctx_with_items(&inst, 8, 3);
        let mut job = pool.submit(Arc::clone(&ctx));
        let mut slab = Vec::new();
        let mid = pool.stats();
        assert_eq!(mid.active_jobs, 1);
        job.dispatch(0, 0, Span::stripe(0, 2), &mut slab, 0);
        let busy = pool.stats();
        assert_eq!(busy.queued_chunks.len(), 1);
        assert_eq!(busy.total_queued(), 1);
        job.collect(0, 0, Span::stripe(0, 2), &mut vec![None; 8]);
        let collected = pool.stats();
        assert_eq!(collected.total_queued(), 0);
        assert_eq!(collected.active_jobs, 1, "job still attached");
        drop(job);

        // After a full stage the job is gone and the workers have
        // processed its chunks.
        let _ = stage_results(&pool, &ctx_with_items(&inst, 8, 3), 8);
        let done = pool.stats();
        assert_eq!(done.active_jobs, 0);
        assert_eq!(done.busy_workers(), 0);
        let total: u64 = done.workers.iter().map(|w| w.chunks_processed).sum();
        assert!(total >= 3, "both stages' chunks counted: {total}");
        assert_eq!(done.respawned_workers, 0);
        // The one-liner renders every gauge.
        let line = done.to_string();
        assert!(line.contains("2 workers"), "{line}");
        assert!(line.contains("0 jobs"), "{line}");
    }

    #[test]
    fn stale_links_heal_at_dispatch_after_another_jobs_panic() {
        // Two jobs share a one-worker pool. Job A's chunk triggers the
        // injected panic and A heals at collect; job B's link predates
        // the death, so B's next dispatch hits the send-error path and
        // must re-attach to the replacement — without a second respawn.
        let inst = instance(30, 3, 6);
        let healthy = {
            let p = SharedPool::new(1);
            stage_results(&p, &ctx_with_items(&inst, 6, 1), 6)
        };
        let pool = SharedPool::new(1);
        let ctx_b = ctx_with_items(&inst, 6, 1);
        let mut job_b = pool.submit(Arc::clone(&ctx_b));
        pool.inject_worker_panic(0, 0);
        let a = stage_results(&pool, &ctx_with_items(&inst, 6, 1), 6);
        assert_eq!(a, healthy);
        assert_eq!(pool.respawned_workers(), 1);
        let mut results: Vec<Option<Sample>> = vec![None; 6];
        let mut slab = Vec::new();
        job_b.run_stage(0, &mut results, &mut slab);
        let b: Vec<_> = results
            .into_iter()
            .map(|s| s.map(|s| s.willingness))
            .collect();
        assert_eq!(b, healthy);
        assert_eq!(pool.respawned_workers(), 1, "no spurious second respawn");
    }
}

//! `CBAS` — Computational Budget Allocation for Start nodes (§3).
//!
//! Phase 1 selects the `m` nodes with the largest `η + Σ incident τ` as
//! start nodes. Phase 2 runs `r` stages: each stage re-divides its share of
//! the total budget `T` across start nodes by the OCBA ratio of Theorem 3
//! (see [`crate::ocba`]), prunes zero-budget start nodes, and grows each
//! allocated sample by *uniform* random candidate selection
//! ([`crate::sampler`]). The best sampled solution over all stages is the
//! answer; Theorem 5 lower-bounds its expected quality
//! ([`crate::theory::expected_quality_ratio`]).
//!
//! [`Cbas`] is a thin configuration over the shared
//! [`crate::engine::StagedEngine`]: uniform candidate distribution,
//! uniform-OCBA allocation, serial execution. The stage loop itself lives
//! in the engine, not here.

use std::sync::Arc;

use waso_core::WasoInstance;
use waso_graph::{BitSet, NodeId};

use crate::engine::{Distribution, StagedEngine, StartMode};
use crate::exec::{ExecBackend, SharedPool};
use crate::ocba::derive_stages;
use crate::sampler::{default_num_start_nodes, select_start_nodes};
use crate::spec::PoolMode;
use crate::{SolveError, SolveResult, Solver};

/// Configuration shared by CBAS and (via [`crate::CbasNdConfig`]) CBAS-ND.
#[derive(Debug, Clone)]
pub struct CbasConfig {
    /// Total computational budget `T` — the number of final solutions to
    /// sample (§3: "the tradeoff between the solution quality and execution
    /// time can be easily controlled by assigning different T").
    pub budget: u64,
    /// Number of start nodes `m`; `None` → the paper's default `⌈n/k⌉`.
    pub num_start_nodes: Option<usize>,
    /// Stage count `r`; `None` → derived per Example 1
    /// ([`crate::ocba::derive_stages`]).
    pub stages: Option<u32>,
    /// Closeness ratio α of Theorem 4 (paper default 0.99; Example 1 uses
    /// 0.9). Only used when `stages` is `None`.
    pub alpha: f64,
    /// Correct-selection probability target `P_b` (pseudo-code `P(CS)`,
    /// Example 1 uses 0.7). Only used when `stages` is `None`.
    pub p_b: f64,
    /// Pinned start nodes (user-study "-i" mode); overrides phase 1.
    pub start_override: Option<Vec<NodeId>>,
    /// Nodes that may not appear in any solution (declined invitees,
    /// §4.4.1).
    pub blocked: Option<BitSet>,
    /// Wall-clock deadline, measured from solve start. When it elapses
    /// the engine stops dealing work at the next stage boundary and
    /// returns the current incumbent tagged
    /// [`crate::Termination::Deadline`]. `None` (the default) never
    /// stops on time.
    pub deadline: Option<std::time::Duration>,
    /// Early-stop patience: after this many consecutive stages without an
    /// incumbent improvement the engine stops (a convergence stop —
    /// [`crate::Termination::Completed`] with `truncated` set). `None`
    /// runs every stage.
    pub patience: Option<u32>,
}

impl CbasConfig {
    /// Budget `T` with the paper's defaults elsewhere.
    pub fn with_budget(budget: u64) -> Self {
        Self {
            budget,
            num_start_nodes: None,
            stages: None,
            alpha: 0.99,
            p_b: 0.7,
            start_override: None,
            blocked: None,
            deadline: None,
            patience: None,
        }
    }

    /// A small-budget preset for examples and doctests (T = 200, r = 4).
    pub fn fast() -> Self {
        Self {
            stages: Some(4),
            ..Self::with_budget(200)
        }
    }

    /// The staged-sampling settings a [`crate::SolverSpec`] carries
    /// (budget, stages, start-node count, pinned starts, the anytime
    /// `deadline_ms=`/`patience=` knobs); everything else keeps the
    /// paper's defaults. Shared with [`crate::CbasNdConfig::from_spec`].
    ///
    /// `deadline_from_submit=` folds in by earliest-deadline-wins: a
    /// session arms it from the actual submit instant (so queue wait
    /// counts), but for direct `registry.build` callers — where submit
    /// and start coincide — treating it as a start-relative deadline
    /// keeps the knob from being silently inert.
    pub fn from_spec(spec: &crate::SolverSpec) -> Self {
        Self {
            stages: spec.stages,
            num_start_nodes: spec.start_nodes,
            start_override: spec.starts.clone(),
            deadline: spec
                .deadline_ms
                .into_iter()
                .chain(spec.deadline_from_submit)
                .min()
                .map(std::time::Duration::from_millis),
            patience: spec.patience,
            ..Self::with_budget(spec.budget_or_default())
        }
    }

    pub(crate) fn resolve_starts(&self, instance: &WasoInstance) -> Vec<NodeId> {
        match &self.start_override {
            Some(s) => s.clone(),
            None => {
                let g = instance.graph();
                let m = self
                    .num_start_nodes
                    .unwrap_or_else(|| default_num_start_nodes(g.num_nodes(), instance.k()));
                select_start_nodes(g, m, self.blocked.as_ref())
            }
        }
    }

    pub(crate) fn resolve_stages(&self, instance: &WasoInstance, m: usize) -> u32 {
        self.stages.unwrap_or_else(|| {
            derive_stages(
                self.budget,
                instance.k(),
                instance.graph().num_nodes(),
                m,
                self.alpha,
                self.p_b,
            )
        })
    }
}

/// The CBAS solver: [`crate::engine::StagedEngine`] with the uniform
/// candidate distribution — serial by default, pooled when a worker count
/// is set (`cbas:threads=N`; the engine's `Uniform × Pool` cell,
/// bit-identical to serial for every thread count).
#[derive(Debug, Clone)]
pub struct Cbas {
    config: CbasConfig,
    threads: Option<usize>,
    pool: PoolMode,
}

impl Cbas {
    /// Creates the (serial) solver.
    pub fn new(config: CbasConfig) -> Self {
        Self {
            config,
            threads: None,
            pool: PoolMode::default(),
        }
    }

    /// Creates the solver on the pooled backend with `threads` workers
    /// (≥ 1). Same answer as serial CBAS for any count.
    pub fn with_threads(config: CbasConfig, threads: usize) -> Self {
        Self {
            config,
            threads: Some(threads.max(1)),
            pool: PoolMode::default(),
        }
    }

    /// Selects where a pooled solve's workers come from (`pool=shared`
    /// routes through the session's [`SharedPool`], `pool=private` spawns
    /// a per-solve pool). Scheduling only; the answer is identical.
    pub fn pool_mode(mut self, pool: PoolMode) -> Self {
        self.pool = pool;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &CbasConfig {
        &self.config
    }

    /// Worker count, when the pooled backend is selected.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    fn engine(&self) -> StagedEngine {
        let engine = StagedEngine::new(self.config.clone(), Distribution::Uniform);
        match self.threads {
            Some(threads) => engine.backend(ExecBackend::Pool { threads }),
            None => engine,
        }
    }
}

impl Solver for Cbas {
    fn name(&self) -> &'static str {
        "cbas"
    }

    fn capabilities(&self) -> crate::Capabilities {
        crate::Capabilities {
            randomized: true,
            // Instance-accurate: only a threads-configured CBAS actually
            // fans out (the registry entry advertises the knob itself).
            parallel: self.threads.is_some(),
            anytime: true,
            ..crate::Capabilities::default()
        }
    }

    fn solve_seeded(
        &mut self,
        instance: &WasoInstance,
        seed: u64,
    ) -> Result<SolveResult, SolveError> {
        self.engine().solve(instance, StartMode::Fresh, seed)
    }

    fn pool_threads(&self) -> Option<usize> {
        match self.pool {
            // A private-pool solve never routes through the shared pool:
            // solve_seeded spawns (and tears down) its own workers.
            PoolMode::Private => None,
            PoolMode::Shared => self.threads,
        }
    }

    fn solve_pooled(
        &mut self,
        instance: &Arc<WasoInstance>,
        required: &[NodeId],
        seed: u64,
        pool: &SharedPool,
    ) -> Result<SolveResult, SolveError> {
        if !required.is_empty() {
            // CBAS has no partial-solution growth; the session rejects
            // this combination before building, this is the backstop.
            return Err(SolveError::RequiredUnsupported { solver: "cbas" });
        }
        self.engine()
            .solve_in_pool(pool, instance, StartMode::Fresh, seed)
    }

    /// Anytime CBAS: the engine checks `control` at every stage boundary
    /// (cancel/deadline), honours `patience=`, and streams incumbents.
    fn solve_controlled(
        &mut self,
        instance: &Arc<WasoInstance>,
        required: &[NodeId],
        seed: u64,
        pool: Option<&SharedPool>,
        control: &crate::JobControl,
    ) -> Result<SolveResult, SolveError> {
        if !required.is_empty() {
            return Err(SolveError::RequiredUnsupported { solver: "cbas" });
        }
        match pool {
            Some(pool) => self.engine().solve_in_pool_controlled(
                pool,
                instance,
                StartMode::Fresh,
                seed,
                control,
            ),
            None => self
                .engine()
                .solve_controlled(instance, StartMode::Fresh, seed, control),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use waso_graph::{generate, GraphBuilder, ScoreModel};

    fn figure1_instance() -> WasoInstance {
        let mut b = GraphBuilder::new();
        let v1 = b.add_node(8.0);
        let v2 = b.add_node(7.0);
        let v3 = b.add_node(6.0);
        let v4 = b.add_node(5.0);
        b.add_edge_symmetric(v1, v2, 1.0).unwrap();
        b.add_edge_symmetric(v2, v3, 2.0).unwrap();
        b.add_edge_symmetric(v3, v4, 4.0).unwrap();
        WasoInstance::new(b.build(), 3).unwrap()
    }

    #[test]
    fn finds_the_figure1_optimum() {
        let mut solver = Cbas::new(CbasConfig::fast());
        let res = solver.solve_seeded(&figure1_instance(), 1).unwrap();
        assert_eq!(res.group.willingness(), 30.0);
        assert_eq!(res.group.nodes(), &[NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn budget_is_fully_spent_on_feasible_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let topo = generate::barabasi_albert(80, 4, &mut rng);
        let g = ScoreModel::paper_default().realize(&topo, &mut rng);
        let inst = WasoInstance::new(g, 6).unwrap();
        let mut solver = Cbas::new(CbasConfig {
            budget: 150,
            stages: Some(3),
            ..CbasConfig::with_budget(150)
        });
        let res = solver.solve_seeded(&inst, 2).unwrap();
        assert_eq!(res.stats.samples_drawn, 150);
        assert_eq!(res.stats.stages, 3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let inst = figure1_instance();
        let a = Cbas::new(CbasConfig::fast())
            .solve_seeded(&inst, 11)
            .unwrap();
        let b = Cbas::new(CbasConfig::fast())
            .solve_seeded(&inst, 11)
            .unwrap();
        assert_eq!(a.group, b.group);
        assert_eq!(a.stats.samples_drawn, b.stats.samples_drawn);
    }

    #[test]
    fn more_budget_never_hurts_on_average() {
        // Weak sanity: with the same seed, T=200 ≥ quality of T=4 on a graph
        // where the optimum needs luck.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let topo = generate::watts_strogatz(60, 3, 0.2, &mut rng);
        let g = ScoreModel::paper_default().realize(&topo, &mut rng);
        let inst = WasoInstance::new(g, 5).unwrap();

        let small = Cbas::new(CbasConfig {
            stages: Some(1),
            ..CbasConfig::with_budget(4)
        })
        .solve_seeded(&inst, 3)
        .unwrap();
        let large = Cbas::new(CbasConfig {
            stages: Some(4),
            ..CbasConfig::with_budget(400)
        })
        .solve_seeded(&inst, 3)
        .unwrap();
        assert!(large.group.willingness() >= small.group.willingness());
    }

    #[test]
    fn blocked_nodes_never_selected() {
        let inst = figure1_instance();
        let mut blocked = BitSet::new(4);
        blocked.insert(3); // exclude v4 — the optimum must become 27
        let mut solver = Cbas::new(CbasConfig {
            blocked: Some(blocked),
            ..CbasConfig::fast()
        });
        let res = solver.solve_seeded(&inst, 1).unwrap();
        assert!(!res.group.contains(NodeId(3)));
        assert_eq!(res.group.willingness(), 27.0);
    }

    #[test]
    fn isolated_start_nodes_are_pruned_not_fatal() {
        // High-interest isolated node attracts a start slot but cannot grow.
        let mut b = GraphBuilder::new();
        let hub = b.add_node(100.0);
        let ids: Vec<NodeId> = (0..5).map(|i| b.add_node(i as f64 * 0.1)).collect();
        for w in ids.windows(2) {
            b.add_edge_symmetric(w[0], w[1], 1.0).unwrap();
        }
        let _ = hub;
        let inst = WasoInstance::new(b.build(), 3).unwrap();
        let mut solver = Cbas::new(CbasConfig {
            num_start_nodes: Some(3),
            stages: Some(2),
            ..CbasConfig::with_budget(60)
        });
        let res = solver.solve_seeded(&inst, 0).unwrap();
        assert!(!res.group.contains(NodeId(0)));
        assert!(res.stats.pruned_start_nodes >= 1);
    }

    #[test]
    fn pooled_cbas_is_bit_identical_to_serial() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let topo = generate::barabasi_albert(70, 3, &mut rng);
        let g = ScoreModel::paper_default().realize(&topo, &mut rng);
        let inst = WasoInstance::new(g, 5).unwrap();
        let mut cfg = CbasConfig::with_budget(120);
        cfg.stages = Some(4);
        let serial = Cbas::new(cfg.clone()).solve_seeded(&inst, 8).unwrap();
        for threads in [1, 2, 4, 8] {
            let pooled = Cbas::with_threads(cfg.clone(), threads)
                .solve_seeded(&inst, 8)
                .unwrap();
            assert_eq!(pooled.group, serial.group, "threads={threads}");
            assert_eq!(pooled.stats.samples_drawn, serial.stats.samples_drawn);
            assert_eq!(
                pooled.stats.pruned_start_nodes,
                serial.stats.pruned_start_nodes
            );
        }
    }

    #[test]
    fn infeasible_instance_reports_no_group() {
        // Singleton components, k = 2.
        let mut b = GraphBuilder::new();
        b.add_node(1.0);
        b.add_node(1.0);
        let inst = WasoInstance::new(b.build(), 2).unwrap();
        let err = Cbas::new(CbasConfig::fast())
            .solve_seeded(&inst, 0)
            .unwrap_err();
        assert_eq!(err, SolveError::NoFeasibleGroup);
    }

    #[test]
    fn stage_override_and_derivation() {
        let inst = figure1_instance();
        let cfg = CbasConfig {
            stages: Some(7),
            ..CbasConfig::with_budget(70)
        };
        assert_eq!(cfg.resolve_stages(&inst, 2), 7);
        let derived = CbasConfig::with_budget(70);
        assert!(derived.resolve_stages(&inst, 2) >= 1);
    }
}

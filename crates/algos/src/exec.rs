//! Execution backends for the [`crate::engine::StagedEngine`].
//!
//! The engine's stage loop is backend-agnostic: it describes one stage as a
//! flat list of [`WorkItem`]s (one per sample to draw) and asks an executor
//! to fill a result slot per item. Two executors exist:
//!
//! * [`ExecBackend::Serial`] — one reusable [`Sampler`] on the calling
//!   thread;
//! * [`ExecBackend::Pool`] — a **persistent pool of workers spawned once
//!   per solve**. Workers park on a job channel between stages; the
//!   per-stage cost is two channel messages per worker, not a thread spawn.
//!   Each worker owns its `Sampler` (and thus its `GrowthWorkspace` and
//!   weight buffer) for the whole solve, and result buffers are recycled
//!   through the job channel, so steady-state stages allocate nothing
//!   beyond the sampled node lists themselves.
//!
//! Determinism: every `(start node, stage, sample)` triple draws from its
//! own RNG stream ([`crate::sample_seed`]), and results are keyed by item
//! index, so *which* worker draws a sample is irrelevant — any thread count
//! (including the serial executor) produces bit-identical solves.
//!
//! Stall cutoff: a failed draw means the start's component is smaller than
//! `k`, so every other draw of that start fails too (deterministically).
//! Both executors publish stalls in [`StageShared::stalled`] and skip the
//! start's remaining items — their result slots stay `None`, which is
//! exactly what drawing them would produce, so the cutoff is invisible to
//! the merge. This keeps the historical break-on-first-stall cost profile
//! and keeps serial/pooled wall-clock comparable on stall-heavy graphs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::RwLock;

use rand::rngs::StdRng;
use rand::SeedableRng;
use waso_core::WasoInstance;
use waso_graph::{BitSet, NodeId};

use crate::cross_entropy::ProbabilityVector;
use crate::sampler::{Sample, Sampler};

/// How a [`crate::engine::StagedEngine`] executes a stage's samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecBackend {
    /// Draw every sample on the calling thread (CBAS / CBAS-ND).
    Serial,
    /// Fan samples out across a persistent pool of `threads` workers
    /// (§5.3.1, Figure 5(d)). Bit-identical to [`ExecBackend::Serial`] for
    /// every thread count.
    Pool {
        /// Worker count (clamped to ≥ 1 by the solvers that build this).
        threads: usize,
    },
}

/// One unit of stage work: draw sample `q` of start node `start_index`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WorkItem {
    /// Index into the engine's start-node roster.
    pub start_index: u32,
    /// The start node itself.
    pub start: NodeId,
    /// Sample number within this `(start, stage)` pair — the RNG stream id.
    pub q: u64,
}

/// Read-mostly state shared between the engine (coordinator) and pool
/// workers. The coordinator mutates the locked fields only *between*
/// stages — while every worker is parked on its job channel — under a
/// write lock; workers hold read locks for the duration of one stage. The
/// serial executor reads the same structure (uncontended, one lock per
/// stage) so the engine has a single code path.
pub(crate) struct StageShared {
    /// The current stage's flattened work list (reused across stages).
    pub items: RwLock<Vec<WorkItem>>,
    /// Per-start-node selection vectors; empty for the uniform
    /// distribution (CBAS).
    pub vectors: RwLock<Vec<ProbabilityVector>>,
    /// One flag per start node, set (never cleared — a stall is a
    /// permanent property of the start's component) on the first failed
    /// draw. Relaxed ordering suffices: the flags only avoid provably
    /// futile work, results are identical whether a racing worker sees
    /// them or not.
    pub stalled: Vec<AtomicBool>,
}

impl StageShared {
    pub fn new(vectors: Vec<ProbabilityVector>, num_starts: usize) -> Self {
        Self {
            items: RwLock::new(Vec::new()),
            vectors: RwLock::new(vectors),
            stalled: (0..num_starts).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    #[inline]
    fn is_stalled(&self, start_index: u32) -> bool {
        self.stalled[start_index as usize].load(Ordering::Relaxed)
    }

    #[inline]
    fn mark_stalled(&self, start_index: u32) {
        self.stalled[start_index as usize].store(true, Ordering::Relaxed);
    }
}

/// Draws one work item with the given sampler. `vectors` is empty for the
/// uniform distribution; otherwise it holds one vector per start node.
#[inline]
fn draw_item(
    sampler: &mut Sampler,
    instance: &WasoInstance,
    item: WorkItem,
    vectors: &[ProbabilityVector],
    stage: u64,
    seed: u64,
) -> Option<Sample> {
    let mut rng = StdRng::seed_from_u64(crate::sample_seed(
        seed,
        item.start_index as u64,
        stage,
        item.q,
    ));
    let probs = vectors.get(item.start_index as usize);
    sampler.sample(instance, item.start, probs, &mut rng)
}

/// A stage executor: fills `results[j]` with the outcome of item `j`.
pub(crate) trait StageExec {
    fn run_stage(&mut self, stage: u64, results: &mut [Option<Sample>]);
}

/// The calling-thread executor: one sampler, items drawn in order.
pub(crate) struct SerialExec<'a> {
    pub instance: &'a WasoInstance,
    pub shared: &'a StageShared,
    pub sampler: Sampler,
    pub seed: u64,
    /// Online-replanning mode: grow every sample from this partial
    /// solution instead of the item's start node (§4.4.1). Serial-only —
    /// the engine routes partial solves here regardless of backend.
    pub partial: Option<&'a [NodeId]>,
}

impl StageExec for SerialExec<'_> {
    fn run_stage(&mut self, stage: u64, results: &mut [Option<Sample>]) {
        let items = self.shared.items.read().expect("no poisoned stage locks");
        let vectors = self.shared.vectors.read().expect("no poisoned stage locks");
        for (j, &item) in items.iter().enumerate() {
            if self.shared.is_stalled(item.start_index) {
                continue; // slot stays None, as a draw would produce
            }
            results[j] = match self.partial {
                Some(seeds) => {
                    let mut rng = StdRng::seed_from_u64(crate::sample_seed(
                        self.seed,
                        item.start_index as u64,
                        stage,
                        item.q,
                    ));
                    self.sampler.sample_from_partial(
                        self.instance,
                        seeds,
                        vectors.get(item.start_index as usize),
                        &mut rng,
                    )
                }
                None => draw_item(
                    &mut self.sampler,
                    self.instance,
                    item,
                    &vectors,
                    stage,
                    self.seed,
                ),
            };
            if results[j].is_none() {
                self.shared.mark_stalled(item.start_index);
            }
        }
    }
}

/// One per-stage assignment sent to a parked worker. Carries a recycled
/// output buffer so steady-state stages perform no buffer allocation.
struct Job {
    stage: u64,
    buf: Vec<(usize, Option<Sample>)>,
}

/// The coordinator's handle to one pool worker: its job sender and its
/// dedicated result channel. Per-worker result channels (rather than one
/// shared channel) make worker death observable — a panicked worker drops
/// its sender, so the coordinator's `recv` errors instead of blocking
/// forever on a channel kept open by the surviving workers.
struct WorkerHandle {
    job_tx: Sender<Job>,
    result_rx: Receiver<Vec<(usize, Option<Sample>)>>,
}

/// The persistent worker pool: spawned once per solve inside a
/// `std::thread::scope`, fed one [`Job`] per worker per stage.
pub(crate) struct WorkerPool {
    workers: Vec<WorkerHandle>,
    spare_bufs: Vec<Vec<(usize, Option<Sample>)>>,
}

impl WorkerPool {
    /// Spawns `threads` workers onto `scope`. Each worker builds its
    /// sampler **once**, then loops: receive job → read-lock the stage's
    /// items and vectors → draw its stripe (items `w, w+T, w+2T, …`) →
    /// send the batch back. Workers exit when the pool (and with it the
    /// job senders) is dropped.
    pub fn spawn<'scope, 'env: 'scope>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        threads: usize,
        instance: &'env WasoInstance,
        blocked: &'env Option<BitSet>,
        shared: &'env StageShared,
        seed: u64,
    ) -> Self {
        let threads = threads.max(1);
        let mut workers = Vec::with_capacity(threads);
        for w in 0..threads {
            let (job_tx, job_rx) = channel::<Job>();
            let (result_tx, result_rx) = channel();
            workers.push(WorkerHandle { job_tx, result_rx });
            scope.spawn(move || {
                let mut sampler = Sampler::for_instance(instance);
                sampler.set_blocked(blocked.clone());
                while let Ok(Job { stage, mut buf }) = job_rx.recv() {
                    buf.clear();
                    {
                        let items = shared.items.read().expect("no poisoned stage locks");
                        let vectors = shared.vectors.read().expect("no poisoned stage locks");
                        let mut j = w;
                        while j < items.len() {
                            let item = items[j];
                            if !shared.is_stalled(item.start_index) {
                                let s =
                                    draw_item(&mut sampler, instance, item, &vectors, stage, seed);
                                if s.is_none() {
                                    shared.mark_stalled(item.start_index);
                                }
                                buf.push((j, s));
                            }
                            // Skipped items' result slots stay None — the
                            // outcome a draw would have produced.
                            j += threads;
                        }
                    }
                    if result_tx.send(buf).is_err() {
                        break; // coordinator gone mid-stage
                    }
                }
            });
        }
        Self {
            workers,
            spare_bufs: Vec::with_capacity(threads),
        }
    }
}

impl StageExec for WorkerPool {
    fn run_stage(&mut self, stage: u64, results: &mut [Option<Sample>]) {
        for worker in &self.workers {
            let buf = self.spare_bufs.pop().unwrap_or_default();
            worker
                .job_tx
                .send(Job { stage, buf })
                .expect("pool worker panicked");
        }
        // Collect each worker's batch from its own channel: a dead worker
        // surfaces as a recv error (its sender is dropped on unwind), and
        // the resulting coordinator panic lets `thread::scope` propagate
        // the worker's original panic instead of deadlocking.
        for worker in &self.workers {
            let mut batch = worker.result_rx.recv().expect("pool worker panicked");
            for (j, s) in batch.drain(..) {
                results[j] = s;
            }
            self.spare_bufs.push(batch);
        }
    }
}

//! Execution backends for the [`crate::engine::StagedEngine`].
//!
//! The engine's stage loop is backend-agnostic: it describes one stage as a
//! flat list of [`WorkItem`]s (one per sample to draw) and asks an executor
//! to fill a result slot per item. Three executors exist:
//!
//! * [`ExecBackend::Serial`] — one reusable [`Sampler`] on the calling
//!   thread;
//! * [`ExecBackend::Pool`] — a pool of workers spawned once per solve
//!   (scoped threads borrowing the solve's state). Workers park on a job
//!   channel between stages; the per-stage cost is two channel messages
//!   per worker, not a thread spawn.
//! * [`SolverPool`] — a **session-held** pool of owned threads that
//!   outlives any single solve. A solve attaches (shipping one
//!   [`SolveCtx`] `Arc` per worker), runs its stages over the same parked
//!   workers, and detaches; thread spawns are amortized across the
//!   thousands of solves a figure sweep or a serving session performs.
//!
//! All pooled paths serve [`crate::engine::StartMode::Partial`] too: a
//! partial solve's samples are independent draws growing from the same
//! seed set, so they stripe across workers exactly like fresh samples.
//!
//! Each worker owns its `Sampler` (and thus its `GrowthWorkspace` and
//! weight buffer) for the whole solve, result buffers are recycled through
//! the job channel, and the per-sample `Vec<NodeId>` node lists flow
//! coordinator → worker → coordinator through a slab (job messages carry
//! spent buffers back; see [`StageExec::run_stage`]) — steady-state stages
//! allocate nothing.
//!
//! Determinism: every `(start node, stage, sample)` triple draws from its
//! own RNG stream ([`crate::sample_seed`]), and results are keyed by item
//! index, so *which* worker draws a sample is irrelevant — any thread count
//! (including the serial executor) produces bit-identical solves.
//!
//! Stall cutoff: a failed draw means the start's component is smaller than
//! `k` (or the seed set cannot be completed), so every other draw of that
//! start fails too (deterministically). All executors publish stalls in
//! [`StageShared::stalled`] and skip the start's remaining items — their
//! result slots stay `None`, which is exactly what drawing them would
//! produce, so the cutoff is invisible to the merge. This keeps the
//! historical break-on-first-stall cost profile and keeps serial/pooled
//! wall-clock comparable on stall-heavy graphs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;

use rand::rngs::StdRng;
use rand::SeedableRng;
use waso_core::WasoInstance;
use waso_graph::{BitSet, NodeId};

use crate::cross_entropy::ProbabilityVector;
use crate::sampler::{Sample, Sampler};

/// How a [`crate::engine::StagedEngine`] executes a stage's samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecBackend {
    /// Draw every sample on the calling thread (CBAS / CBAS-ND).
    Serial,
    /// Fan samples out across a persistent pool of `threads` workers
    /// (§5.3.1, Figure 5(d)). Bit-identical to [`ExecBackend::Serial`] for
    /// every thread count.
    Pool {
        /// Worker count (clamped to ≥ 1 by the solvers that build this).
        threads: usize,
    },
}

/// One unit of stage work: draw sample `q` of start node `start_index`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WorkItem {
    /// Index into the engine's start-node roster.
    pub start_index: u32,
    /// The start node itself.
    pub start: NodeId,
    /// Sample number within this `(start, stage)` pair — the RNG stream id.
    pub q: u64,
}

/// Read-mostly state shared between the engine (coordinator) and pool
/// workers. The coordinator mutates the locked fields only *between*
/// stages — while every worker is parked on its job channel — under a
/// write lock; workers hold read locks for the duration of one stage. The
/// serial executor reads the same structure (uncontended, one lock per
/// stage) so the engine has a single code path.
pub(crate) struct StageShared {
    /// The current stage's flattened work list (reused across stages).
    pub items: RwLock<Vec<WorkItem>>,
    /// Per-start-node selection vectors; empty for the uniform
    /// distribution (CBAS).
    pub vectors: RwLock<Vec<ProbabilityVector>>,
    /// One flag per start node, set (never cleared — a stall is a
    /// permanent property of the start's component) on the first failed
    /// draw. Relaxed ordering suffices: the flags only avoid provably
    /// futile work, results are identical whether a racing worker sees
    /// them or not.
    pub stalled: Vec<AtomicBool>,
}

impl StageShared {
    pub fn new(vectors: Vec<ProbabilityVector>, num_starts: usize) -> Self {
        Self {
            items: RwLock::new(Vec::new()),
            vectors: RwLock::new(vectors),
            stalled: (0..num_starts).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    #[inline]
    fn is_stalled(&self, start_index: u32) -> bool {
        self.stalled[start_index as usize].load(Ordering::Relaxed)
    }

    #[inline]
    fn mark_stalled(&self, start_index: u32) {
        self.stalled[start_index as usize].store(true, Ordering::Relaxed);
    }
}

/// Everything one solve shares with the workers of a session-held
/// [`SolverPool`]. Owned (`Arc`ed instance, owned seed list) because the
/// pool's threads outlive any borrow a single solve could offer.
pub(crate) struct SolveCtx {
    /// The validated instance, cloned into an `Arc` once per solve (or
    /// once per *batch* — the session facade reuses one `Arc` across a
    /// whole `solve_batch`).
    pub instance: Arc<WasoInstance>,
    /// Blocked nodes (declined invitees, §4.4.1).
    pub blocked: Option<BitSet>,
    /// The stage state this solve's coordinator and workers share.
    pub shared: StageShared,
    /// The solve's master seed.
    pub seed: u64,
    /// [`crate::engine::StartMode::Partial`] seed set; `None` for fresh
    /// solves.
    pub partial: Option<Vec<NodeId>>,
}

/// Draws one work item with the given sampler. `vectors` is empty for the
/// uniform distribution; otherwise it holds one vector per start node. In
/// partial mode (`seeds` present) the sample grows from the whole seed set
/// instead of the item's start node — same RNG stream either way, so
/// partial solves stripe across workers exactly like fresh ones.
#[inline]
fn draw_item(
    sampler: &mut Sampler,
    instance: &WasoInstance,
    item: WorkItem,
    vectors: &[ProbabilityVector],
    stage: u64,
    seed: u64,
    partial: Option<&[NodeId]>,
) -> Option<Sample> {
    let mut rng = StdRng::seed_from_u64(crate::sample_seed(
        seed,
        item.start_index as u64,
        stage,
        item.q,
    ));
    let probs = vectors.get(item.start_index as usize);
    match partial {
        Some(seeds) => sampler.sample_from_partial(instance, seeds, probs, &mut rng),
        None => sampler.sample(instance, item.start, probs, &mut rng),
    }
}

/// Draws worker `w`'s stripe (items `w, w+T, w+2T, …`) of one stage into
/// `buf`. Shared verbatim by the scoped per-solve workers and the
/// session-held pool workers so the two can never drift behaviourally.
#[allow(clippy::too_many_arguments)]
fn draw_stripe(
    sampler: &mut Sampler,
    instance: &WasoInstance,
    shared: &StageShared,
    partial: Option<&[NodeId]>,
    stage: u64,
    seed: u64,
    w: usize,
    stride: usize,
    buf: &mut Vec<(usize, Option<Sample>)>,
) {
    let items = shared.items.read().expect("no poisoned stage locks");
    let vectors = shared.vectors.read().expect("no poisoned stage locks");
    let mut j = w;
    while j < items.len() {
        let item = items[j];
        if !shared.is_stalled(item.start_index) {
            let s = draw_item(sampler, instance, item, &vectors, stage, seed, partial);
            if s.is_none() {
                shared.mark_stalled(item.start_index);
            }
            buf.push((j, s));
        }
        // Skipped items' result slots stay None — the outcome a draw
        // would have produced.
        j += stride;
    }
}

/// A stage executor: fills `results[j]` with the outcome of item `j`.
/// `slab` carries the node buffers of already-consumed samples *into* the
/// call (the executor hands them to its samplers for reuse); executors
/// take what they need and leave the rest.
pub(crate) trait StageExec {
    fn run_stage(
        &mut self,
        stage: u64,
        results: &mut [Option<Sample>],
        slab: &mut Vec<Vec<NodeId>>,
    );
}

/// The calling-thread executor: one sampler, items drawn in order.
pub(crate) struct SerialExec<'a> {
    pub instance: &'a WasoInstance,
    pub shared: &'a StageShared,
    pub sampler: Sampler,
    pub seed: u64,
    /// Online-replanning / required-attendee mode: grow every sample from
    /// this partial solution instead of the item's start node (§4.4.1).
    pub partial: Option<&'a [NodeId]>,
}

impl StageExec for SerialExec<'_> {
    fn run_stage(
        &mut self,
        stage: u64,
        results: &mut [Option<Sample>],
        slab: &mut Vec<Vec<NodeId>>,
    ) {
        for buf in slab.drain(..) {
            self.sampler.recycle(buf);
        }
        let items = self.shared.items.read().expect("no poisoned stage locks");
        let vectors = self.shared.vectors.read().expect("no poisoned stage locks");
        for (j, &item) in items.iter().enumerate() {
            if self.shared.is_stalled(item.start_index) {
                continue; // slot stays None, as a draw would produce
            }
            results[j] = draw_item(
                &mut self.sampler,
                self.instance,
                item,
                &vectors,
                stage,
                self.seed,
                self.partial,
            );
            if results[j].is_none() {
                self.shared.mark_stalled(item.start_index);
            }
        }
    }
}

/// One per-stage assignment sent to a parked worker. Carries a recycled
/// output buffer and a share of the spent node-buffer slab, so
/// steady-state stages perform no allocation at all.
struct Job {
    stage: u64,
    buf: Vec<(usize, Option<Sample>)>,
    /// Spent `Sample::nodes` buffers flowing back to the worker's sampler.
    recycled: Vec<Vec<NodeId>>,
}

/// One worker's per-stage answer: its stripe results, plus the emptied
/// recycling container going back to the coordinator's spares.
struct StripeResult {
    buf: Vec<(usize, Option<Sample>)>,
    empties: Vec<Vec<NodeId>>,
}

/// Splits up to `per_worker` node buffers off `slab` into a recycled
/// container from `spares`.
fn take_share(
    slab: &mut Vec<Vec<NodeId>>,
    spares: &mut Vec<Vec<Vec<NodeId>>>,
    per_worker: usize,
) -> Vec<Vec<NodeId>> {
    let mut share = spares.pop().unwrap_or_default();
    let cut = slab.len().saturating_sub(per_worker);
    share.extend(slab.drain(cut..));
    share
}

/// The coordinator's handle to one pool worker: its job sender and its
/// dedicated result channel. Per-worker result channels (rather than one
/// shared channel) make worker death observable — a panicked worker drops
/// its sender, so the coordinator's `recv` errors instead of blocking
/// forever on a channel kept open by the surviving workers.
struct WorkerHandle {
    job_tx: Sender<Job>,
    result_rx: Receiver<StripeResult>,
}

/// Buffer spares a pooled coordinator keeps between stages.
#[derive(Default)]
struct PoolSpares {
    bufs: Vec<Vec<(usize, Option<Sample>)>>,
    recycle_containers: Vec<Vec<Vec<NodeId>>>,
}

/// The coordinator's view of one parked worker — how to hand it a stage
/// job and collect its stripe. Implemented by both pool flavours so the
/// dispatch/merge choreography exists exactly once.
trait StageWorker {
    fn send_stage(&self, job: Job);
    fn recv_result(&self) -> StripeResult;
}

impl StageWorker for WorkerHandle {
    fn send_stage(&self, job: Job) {
        self.job_tx.send(job).expect("pool worker panicked");
    }
    fn recv_result(&self) -> StripeResult {
        self.result_rx.recv().expect("pool worker panicked")
    }
}

/// Sends one stage's jobs to `workers` and merges their stripes into
/// `results` — the common coordinator half of both pool flavours. A dead
/// worker surfaces as a recv error (its sender is dropped on unwind), and
/// the resulting coordinator panic propagates the failure instead of
/// deadlocking.
fn run_pooled_stage<W: StageWorker>(
    workers: &[W],
    spares: &mut PoolSpares,
    stage: u64,
    results: &mut [Option<Sample>],
    slab: &mut Vec<Vec<NodeId>>,
) {
    let per_worker = slab.len().div_ceil(workers.len().max(1));
    for worker in workers {
        let buf = spares.bufs.pop().unwrap_or_default();
        let recycled = take_share(slab, &mut spares.recycle_containers, per_worker);
        worker.send_stage(Job {
            stage,
            buf,
            recycled,
        });
    }
    for worker in workers {
        let StripeResult { mut buf, empties } = worker.recv_result();
        for (j, s) in buf.drain(..) {
            results[j] = s;
        }
        spares.bufs.push(buf);
        spares.recycle_containers.push(empties);
    }
}

/// The worker half of one stage: absorb the recycled buffers, draw the
/// stripe, send the batch back. Returns `false` when the coordinator is
/// gone and the worker should stop.
#[allow(clippy::too_many_arguments)]
fn work_stage(
    sampler: &mut Sampler,
    instance: &WasoInstance,
    shared: &StageShared,
    partial: Option<&[NodeId]>,
    seed: u64,
    w: usize,
    stride: usize,
    job: Job,
    result_tx: &Sender<StripeResult>,
) -> bool {
    let Job {
        stage,
        mut buf,
        mut recycled,
    } = job;
    buf.clear();
    for spent in recycled.drain(..) {
        sampler.recycle(spent);
    }
    draw_stripe(
        sampler, instance, shared, partial, stage, seed, w, stride, &mut buf,
    );
    result_tx
        .send(StripeResult {
            buf,
            empties: recycled,
        })
        .is_ok()
}

/// The per-solve worker pool: spawned once per solve inside a
/// `std::thread::scope`, fed one [`Job`] per worker per stage. One-shot
/// solves use this (it borrows the solve's state, so the instance is
/// never cloned); sessions and batch solves amortize further with the
/// owned [`SolverPool`].
pub(crate) struct WorkerPool {
    workers: Vec<WorkerHandle>,
    spares: PoolSpares,
}

impl WorkerPool {
    /// Spawns `threads` workers onto `scope`. Each worker builds its
    /// sampler **once**, then loops: receive job → read-lock the stage's
    /// items and vectors → draw its stripe (items `w, w+T, w+2T, …`) →
    /// send the batch back. Workers exit when the pool (and with it the
    /// job senders) is dropped.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn<'scope, 'env: 'scope>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        threads: usize,
        instance: &'env WasoInstance,
        blocked: &'env Option<BitSet>,
        shared: &'env StageShared,
        seed: u64,
        partial: Option<&'env [NodeId]>,
    ) -> Self {
        let threads = threads.max(1);
        let mut workers = Vec::with_capacity(threads);
        for w in 0..threads {
            let (job_tx, job_rx) = channel::<Job>();
            let (result_tx, result_rx) = channel();
            workers.push(WorkerHandle { job_tx, result_rx });
            scope.spawn(move || {
                let mut sampler = Sampler::for_instance(instance);
                sampler.set_blocked(blocked.clone());
                while let Ok(job) = job_rx.recv() {
                    if !work_stage(
                        &mut sampler,
                        instance,
                        shared,
                        partial,
                        seed,
                        w,
                        threads,
                        job,
                        &result_tx,
                    ) {
                        break; // coordinator gone mid-stage
                    }
                }
            });
        }
        Self {
            workers,
            spares: PoolSpares::default(),
        }
    }
}

impl StageExec for WorkerPool {
    fn run_stage(
        &mut self,
        stage: u64,
        results: &mut [Option<Sample>],
        slab: &mut Vec<Vec<NodeId>>,
    ) {
        run_pooled_stage(&self.workers, &mut self.spares, stage, results, slab);
    }
}

/// A message to a session-held pool worker.
enum PoolMsg {
    /// Begin serving a solve: build a sampler for the context's instance
    /// and hold the context until [`PoolMsg::Detach`].
    Attach(Arc<SolveCtx>),
    /// Draw one stage's stripe of the attached solve.
    Stage(Job),
    /// The solve is over; drop the context and sampler, park for the next.
    Detach,
}

/// A worker thread of a [`SolverPool`].
struct OwnedWorker {
    job_tx: Sender<PoolMsg>,
    result_rx: Receiver<StripeResult>,
    handle: Option<JoinHandle<()>>,
}

impl StageWorker for OwnedWorker {
    fn send_stage(&self, job: Job) {
        self.job_tx
            .send(PoolMsg::Stage(job))
            .expect("pool worker panicked");
    }
    fn recv_result(&self) -> StripeResult {
        self.result_rx.recv().expect("pool worker panicked")
    }
}

/// A **session-held** worker pool: `threads` owned OS threads spawned
/// once and reused by every pooled solve a session (or the bench batch
/// runner) performs, amortizing thread spawns across solves — the §5.3.1
/// parallel regime at serving scale.
///
/// A solve attaches (each worker receives the solve's [`SolveCtx`] and
/// builds a sampler for its instance), runs stages over the parked
/// workers, then detaches. The stripe layout, RNG streams and merge order
/// are identical to the per-solve [`WorkerPool`] and the serial executor,
/// so results are bit-identical to both, for every worker count —
/// including partial-mode (required-attendee / online-replanning) solves.
pub struct SolverPool {
    workers: Vec<OwnedWorker>,
    spares: PoolSpares,
    threads: usize,
}

impl std::fmt::Debug for SolverPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl SolverPool {
    /// Spawns a pool of `threads` owned workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut workers = Vec::with_capacity(threads);
        for w in 0..threads {
            let (job_tx, job_rx) = channel::<PoolMsg>();
            let (result_tx, result_rx) = channel::<StripeResult>();
            let handle = std::thread::Builder::new()
                .name(format!("waso-pool-{w}"))
                .spawn(move || {
                    let mut attached: Option<(Arc<SolveCtx>, Sampler)> = None;
                    while let Ok(msg) = job_rx.recv() {
                        match msg {
                            PoolMsg::Attach(ctx) => {
                                let mut sampler = Sampler::for_instance(&ctx.instance);
                                sampler.set_blocked(ctx.blocked.clone());
                                attached = Some((ctx, sampler));
                            }
                            PoolMsg::Detach => attached = None,
                            PoolMsg::Stage(job) => {
                                let (ctx, sampler) = attached
                                    .as_mut()
                                    .expect("stage job sent to a detached pool worker");
                                if !work_stage(
                                    sampler,
                                    &ctx.instance,
                                    &ctx.shared,
                                    ctx.partial.as_deref(),
                                    ctx.seed,
                                    w,
                                    threads,
                                    job,
                                    &result_tx,
                                ) {
                                    break; // pool dropped mid-stage
                                }
                            }
                        }
                    }
                })
                .expect("spawning a pool worker thread");
            workers.push(OwnedWorker {
                job_tx,
                result_rx,
                handle: Some(handle),
            });
        }
        Self {
            workers,
            spares: PoolSpares::default(),
            threads,
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches one solve to the pool. The returned guard is the solve's
    /// [`StageExec`]; dropping it detaches the workers.
    pub(crate) fn attach(&mut self, ctx: Arc<SolveCtx>) -> AttachedPool<'_> {
        for worker in &self.workers {
            worker
                .job_tx
                .send(PoolMsg::Attach(ctx.clone()))
                .expect("pool worker panicked");
        }
        AttachedPool { pool: self }
    }
}

impl Drop for SolverPool {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            // Dropping the sender unparks the worker's recv loop.
            let (dead_tx, _) = channel();
            worker.job_tx = dead_tx;
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                // A worker that panicked already surfaced the failure to
                // its coordinator; the join result adds nothing here.
                let _ = handle.join();
            }
        }
    }
}

/// One solve's executor over a session-held [`SolverPool`] — detaches the
/// workers on drop.
pub(crate) struct AttachedPool<'p> {
    pool: &'p mut SolverPool,
}

impl StageExec for AttachedPool<'_> {
    fn run_stage(
        &mut self,
        stage: u64,
        results: &mut [Option<Sample>],
        slab: &mut Vec<Vec<NodeId>>,
    ) {
        run_pooled_stage(
            &self.pool.workers,
            &mut self.pool.spares,
            stage,
            results,
            slab,
        );
    }
}

impl Drop for AttachedPool<'_> {
    fn drop(&mut self) {
        for worker in &self.pool.workers {
            // The pool may already be tearing down (worker gone); detach
            // failures are then unobservable and harmless.
            let _ = worker.job_tx.send(PoolMsg::Detach);
        }
    }
}

//! Execution backends for the [`crate::engine::StagedEngine`].
//!
//! The engine's stage loop is backend-agnostic: it describes one stage as a
//! flat list of [`WorkItem`]s (one per sample to draw) and asks an executor
//! to fill a result slot per item. Three executors exist:
//!
//! * [`ExecBackend::Serial`] — one reusable [`Sampler`] on the calling
//!   thread;
//! * [`ExecBackend::Pool`] — a pool of workers spawned once per solve
//!   (scoped threads borrowing the solve's state). Workers park on a job
//!   channel between stages; the per-stage cost is two channel messages
//!   per worker, not a thread spawn.
//! * [`SharedPool`] (module [`shared`]) — a **process-wide** pool of owned
//!   threads that any number of sessions and solves attach to
//!   concurrently, with a job-level scheduler and self-healing workers.
//!   [`SolverPool`] is its historical (session-held) name.
//!
//! All pooled paths serve [`crate::engine::StartMode::Partial`] too: a
//! partial solve's samples are independent draws growing from the same
//! seed set, so they deal across workers exactly like fresh samples.
//!
//! Each worker owns its `Sampler` (and thus its `GrowthWorkspace` and
//! weight buffer) for the whole solve, result buffers are recycled through
//! the job channel, and the per-sample `Vec<NodeId>` node lists flow
//! coordinator → worker → coordinator through a slab (job messages carry
//! spent buffers back; see [`StageExec::run_stage`]) — steady-state stages
//! allocate nothing.
//!
//! Determinism: every `(start node, stage, sample)` triple draws from its
//! own RNG stream ([`crate::sample_seed`]), and results are keyed by item
//! index, so *which* worker draws a sample — and in *what deal pattern*
//! ([`Deal`]) — is irrelevant: any thread count (including the serial
//! executor) produces bit-identical solves.
//!
//! Stall cutoff: a failed draw means the start's component is smaller than
//! `k` (or the seed set cannot be completed), so every other draw of that
//! start fails too (deterministically). All executors publish stalls in
//! [`StageShared::stalled`] and skip the start's remaining items — their
//! result slots stay `None`, which is exactly what drawing them would
//! produce, so the cutoff is invisible to the merge. This keeps the
//! historical break-on-first-stall cost profile and keeps serial/pooled
//! wall-clock comparable on stall-heavy graphs.

mod shared;

pub use shared::{Deal, PoolStats, SharedPool, WorkerStats};

/// Historical name of the owned worker pool. Since the SharedPool
/// scheduler landed, a "session-held" pool is simply a [`SharedPool`]
/// with a single tenant — the type is one and the same.
pub type SolverPool = SharedPool;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use rand::rngs::StdRng;
use rand::SeedableRng;
use waso_core::WasoInstance;
use waso_graph::{BitSet, NodeId};

use crate::cross_entropy::ProbabilityVector;
use crate::job::StopState;
use crate::sampler::{Sample, Sampler};

/// How a [`crate::engine::StagedEngine`] executes a stage's samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecBackend {
    /// Draw every sample on the calling thread (CBAS / CBAS-ND).
    Serial,
    /// Fan samples out across a persistent pool of `threads` workers
    /// (§5.3.1, Figure 5(d)). Bit-identical to [`ExecBackend::Serial`] for
    /// every thread count.
    Pool {
        /// Worker count (clamped to ≥ 1 by the solvers that build this).
        threads: usize,
    },
}

/// One unit of stage work: draw sample `q` of start node `start_index`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WorkItem {
    /// Index into the engine's start-node roster.
    pub start_index: u32,
    /// The start node itself.
    pub start: NodeId,
    /// Sample number within this `(start, stage)` pair — the RNG stream id.
    pub q: u64,
}

/// Read-mostly state shared between the engine (coordinator) and pool
/// workers. The coordinator mutates the locked fields only *between*
/// stages — while every worker is parked on its job channel — under a
/// write lock; workers hold read locks for the duration of one stage. The
/// serial executor reads the same structure (uncontended, one lock per
/// stage) so the engine has a single code path.
///
/// Lock poisoning is deliberately ignored (`PoisonError::into_inner`):
/// workers only ever *read* these fields, so a worker that panics while
/// holding a read guard leaves the data untouched — treating that as
/// poison would let one injected (or real) worker panic wedge every other
/// job sharing the state, defeating the pool's self-healing.
pub(crate) struct StageShared {
    /// The current stage's flattened work list (reused across stages).
    pub items: RwLock<Vec<WorkItem>>,
    /// Per-start-node selection vectors; empty for the uniform
    /// distribution (CBAS).
    pub vectors: RwLock<Vec<ProbabilityVector>>,
    /// One flag per start node, set (never cleared — a stall is a
    /// permanent property of the start's component) on the first failed
    /// draw. Relaxed ordering suffices: the flags only avoid provably
    /// futile work, results are identical whether a racing worker sees
    /// them or not.
    pub stalled: Vec<AtomicBool>,
}

impl StageShared {
    pub fn new(vectors: Vec<ProbabilityVector>, num_starts: usize) -> Self {
        Self {
            items: RwLock::new(Vec::new()),
            vectors: RwLock::new(vectors),
            stalled: (0..num_starts).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Read access that shrugs off poisoning (see the type docs).
    pub fn read_items(&self) -> RwLockReadGuard<'_, Vec<WorkItem>> {
        self.items.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Read access that shrugs off poisoning (see the type docs).
    pub fn read_vectors(&self) -> RwLockReadGuard<'_, Vec<ProbabilityVector>> {
        self.vectors.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Coordinator-side write access; poisoning recovery as above.
    pub fn write_items(&self) -> RwLockWriteGuard<'_, Vec<WorkItem>> {
        self.items.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Coordinator-side write access; poisoning recovery as above.
    pub fn write_vectors(&self) -> RwLockWriteGuard<'_, Vec<ProbabilityVector>> {
        self.vectors.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Out-of-range start indices read as "stalled": a worker holding a
    /// stale index must not draw from it, and certainly must not panic
    /// on the solve path.
    #[inline]
    fn is_stalled(&self, start_index: u32) -> bool {
        self.stalled
            .get(start_index as usize)
            .is_none_or(|s| s.load(Ordering::Relaxed))
    }

    #[inline]
    fn mark_stalled(&self, start_index: u32) {
        if let Some(s) = self.stalled.get(start_index as usize) {
            s.store(true, Ordering::Relaxed);
        }
    }
}

/// Everything one solve shares with the workers of a [`SharedPool`].
/// Owned (`Arc`ed instance, owned seed list) because the pool's threads
/// outlive any borrow a single solve could offer.
pub(crate) struct SolveCtx {
    /// The validated instance, cloned into an `Arc` once per solve (or
    /// once per *batch* — the session facade reuses one `Arc` across a
    /// whole `solve_batch`).
    pub instance: Arc<WasoInstance>,
    /// Blocked nodes (declined invitees, §4.4.1).
    pub blocked: Option<BitSet>,
    /// The stage state this solve's coordinator and workers share.
    pub shared: StageShared,
    /// The solve's master seed.
    pub seed: u64,
    /// [`crate::engine::StartMode::Partial`] seed set; `None` for fresh
    /// solves.
    pub partial: Option<Vec<NodeId>>,
    /// The job's cancel/deadline signal, checked between samples so a
    /// trip abandons the in-flight chunk instead of riding the stage out.
    /// `None` for uncontrolled solves (no check, no overhead).
    pub stop: Option<Arc<StopState>>,
}

/// Draws one work item with the given sampler. `vectors` is empty for the
/// uniform distribution; otherwise it holds one vector per start node. In
/// partial mode (`seeds` present) the sample grows from the whole seed set
/// instead of the item's start node — same RNG stream either way, so
/// partial solves stripe across workers exactly like fresh ones.
#[inline]
fn draw_item(
    sampler: &mut Sampler,
    instance: &WasoInstance,
    item: WorkItem,
    vectors: &[ProbabilityVector],
    stage: u64,
    seed: u64,
    partial: Option<&[NodeId]>,
) -> Option<Sample> {
    let mut rng = StdRng::seed_from_u64(crate::sample_seed(
        seed,
        item.start_index as u64,
        stage,
        item.q,
    ));
    let probs = vectors.get(item.start_index as usize);
    match partial {
        Some(seeds) => sampler.sample_from_partial(instance, seeds, probs, &mut rng),
        None => sampler.sample(instance, item.start, probs, &mut rng),
    }
}

/// One worker's share of a stage's item list: up to `limit` items starting
/// at `offset`, `stride` apart. A round-robin stripe for worker `w` of `T`
/// is `Span { offset: w, stride: T, limit: MAX }`; a contiguous chunk
/// `[lo, hi)` is `Span { offset: lo, stride: 1, limit: hi - lo }`. Results
/// are keyed by item index, so the deal pattern cannot affect the answer —
/// only the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Span {
    pub offset: usize,
    pub stride: usize,
    pub limit: usize,
}

impl Span {
    /// Worker `w`'s round-robin stripe in a deal over `stride` workers.
    pub fn stripe(w: usize, stride: usize) -> Self {
        Self {
            offset: w,
            stride,
            limit: usize::MAX,
        }
    }
}

/// Draws one span of the current stage into `buf`. Shared verbatim by the
/// scoped per-solve workers and the shared-pool workers so the two can
/// never drift behaviourally.
///
/// Returns `false` when `stop` tripped before the span finished: the
/// partial draws in `buf` belong to a stage the engine will abandon
/// wholesale (stopping "at the previous stage boundary"), so an early
/// exit here can never change a merged result — it only bounds how long
/// a cancel or deadline overshoots.
#[allow(clippy::too_many_arguments)]
fn draw_span(
    sampler: &mut Sampler,
    instance: &WasoInstance,
    shared: &StageShared,
    partial: Option<&[NodeId]>,
    stage: u64,
    seed: u64,
    span: Span,
    stop: Option<&StopState>,
    buf: &mut Vec<(usize, Option<Sample>)>,
) -> bool {
    let items = shared.read_items();
    let vectors = shared.read_vectors();
    let mut j = span.offset;
    let mut left = span.limit;
    while left > 0 {
        if stop.is_some_and(|s| s.stop_requested()) {
            return false;
        }
        let Some(&item) = items.get(j) else { break };
        if !shared.is_stalled(item.start_index) {
            let s = draw_item(sampler, instance, item, &vectors, stage, seed, partial);
            if s.is_none() {
                shared.mark_stalled(item.start_index);
            }
            buf.push((j, s));
        }
        // Skipped items' result slots stay None — the outcome a draw
        // would have produced.
        j += span.stride;
        left -= 1;
    }
    true
}

/// A stage executor: fills `results[j]` with the outcome of item `j`.
/// `slab` carries the node buffers of already-consumed samples *into* the
/// call (the executor hands them to its samplers for reuse); executors
/// take what they need and leave the rest.
///
/// Returns whether the stage ran to completion: `false` means the job's
/// stop signal tripped mid-stage, some result slots were never drawn,
/// and the engine must abandon the stage unmerged.
pub(crate) trait StageExec {
    fn run_stage(
        &mut self,
        stage: u64,
        results: &mut [Option<Sample>],
        slab: &mut Vec<Vec<NodeId>>,
    ) -> bool;
}

/// The calling-thread executor: one sampler, items drawn in order.
pub(crate) struct SerialExec<'a> {
    pub instance: &'a WasoInstance,
    pub shared: &'a StageShared,
    pub sampler: Sampler,
    pub seed: u64,
    /// Online-replanning / required-attendee mode: grow every sample from
    /// this partial solution instead of the item's start node (§4.4.1).
    pub partial: Option<&'a [NodeId]>,
    /// The job's stop signal, checked between samples like the pooled
    /// executors do.
    pub stop: Option<Arc<StopState>>,
}

impl StageExec for SerialExec<'_> {
    fn run_stage(
        &mut self,
        stage: u64,
        results: &mut [Option<Sample>],
        slab: &mut Vec<Vec<NodeId>>,
    ) -> bool {
        for buf in slab.drain(..) {
            self.sampler.recycle(buf);
        }
        let items = self.shared.read_items();
        let vectors = self.shared.read_vectors();
        for (j, &item) in items.iter().enumerate() {
            if self.stop.as_deref().is_some_and(StopState::stop_requested) {
                return false;
            }
            if self.shared.is_stalled(item.start_index) {
                continue; // slot stays None, as a draw would produce
            }
            results[j] = draw_item(
                &mut self.sampler,
                self.instance,
                item,
                &vectors,
                stage,
                self.seed,
                self.partial,
            );
            if results[j].is_none() {
                self.shared.mark_stalled(item.start_index);
            }
        }
        true
    }
}

/// One per-stage assignment sent to a parked worker. Carries a recycled
/// output buffer and a share of the spent node-buffer slab, so
/// steady-state stages perform no allocation at all.
struct Job {
    stage: u64,
    buf: Vec<(usize, Option<Sample>)>,
    /// Spent `Sample::nodes` buffers flowing back to the worker's sampler.
    recycled: Vec<Vec<NodeId>>,
}

/// One worker's per-stage answer: its span's results, plus the emptied
/// recycling container going back to the coordinator's spares.
struct SpanResult {
    buf: Vec<(usize, Option<Sample>)>,
    empties: Vec<Vec<NodeId>>,
    /// Whether the span was drawn in full (`false`: the job's stop signal
    /// tripped mid-span and the stage must be abandoned).
    complete: bool,
}

/// Splits up to `per_worker` node buffers off `slab` into a recycled
/// container from `spares`.
fn take_share(
    slab: &mut Vec<Vec<NodeId>>,
    spares: &mut Vec<Vec<Vec<NodeId>>>,
    per_worker: usize,
) -> Vec<Vec<NodeId>> {
    let mut share = spares.pop().unwrap_or_default();
    let cut = slab.len().saturating_sub(per_worker);
    share.extend(slab.drain(cut..));
    share
}

/// The coordinator's handle to one scoped pool worker: its job sender and
/// its dedicated result channel. Per-worker result channels (rather than
/// one shared channel) make worker death observable — a panicked worker
/// drops its sender, so the coordinator's `recv` errors instead of
/// blocking forever on a channel kept open by the surviving workers.
struct WorkerHandle {
    job_tx: Sender<Job>,
    result_rx: Receiver<SpanResult>,
}

/// Buffer spares a pooled coordinator keeps between stages.
#[derive(Default)]
struct PoolSpares {
    bufs: Vec<Vec<(usize, Option<Sample>)>>,
    recycle_containers: Vec<Vec<Vec<NodeId>>>,
}

/// The worker half of one stage: absorb the recycled buffers, draw the
/// span, send the batch back. Returns `false` when the coordinator is
/// gone and the worker should stop.
#[allow(clippy::too_many_arguments)]
fn work_stage(
    sampler: &mut Sampler,
    instance: &WasoInstance,
    shared: &StageShared,
    partial: Option<&[NodeId]>,
    seed: u64,
    span: Span,
    stop: Option<&StopState>,
    job: Job,
    result_tx: &Sender<SpanResult>,
) -> bool {
    let Job {
        stage,
        mut buf,
        mut recycled,
    } = job;
    buf.clear();
    for spent in recycled.drain(..) {
        sampler.recycle(spent);
    }
    let complete = draw_span(
        sampler, instance, shared, partial, stage, seed, span, stop, &mut buf,
    );
    result_tx
        .send(SpanResult {
            buf,
            empties: recycled,
            complete,
        })
        .is_ok()
}

/// The per-solve worker pool: spawned once per solve inside a
/// `std::thread::scope`, fed one [`Job`] per worker per stage. One-shot
/// solves use this (it borrows the solve's state, so the instance is
/// never cloned); sessions and batch solves amortize further with the
/// owned [`SharedPool`].
pub(crate) struct WorkerPool {
    workers: Vec<WorkerHandle>,
    spares: PoolSpares,
}

impl WorkerPool {
    /// Spawns `threads` workers onto `scope`. Each worker builds its
    /// sampler **once**, then loops: receive job → read-lock the stage's
    /// items and vectors → draw its stripe (items `w, w+T, w+2T, …`) →
    /// send the batch back. Workers exit when the pool (and with it the
    /// job senders) is dropped.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn<'scope, 'env: 'scope>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        threads: usize,
        instance: &'env WasoInstance,
        blocked: &'env Option<BitSet>,
        shared: &'env StageShared,
        seed: u64,
        partial: Option<&'env [NodeId]>,
        stop: Option<Arc<StopState>>,
    ) -> Self {
        let threads = threads.max(1);
        let mut workers = Vec::with_capacity(threads);
        for w in 0..threads {
            let (job_tx, job_rx) = channel::<Job>();
            let (result_tx, result_rx) = channel();
            let stop = stop.clone();
            workers.push(WorkerHandle { job_tx, result_rx });
            scope.spawn(move || {
                let mut sampler = Sampler::for_instance(instance);
                sampler.set_blocked(blocked.clone());
                let span = Span::stripe(w, threads);
                while let Ok(job) = job_rx.recv() {
                    if !work_stage(
                        &mut sampler,
                        instance,
                        shared,
                        partial,
                        seed,
                        span,
                        stop.as_deref(),
                        job,
                        &result_tx,
                    ) {
                        break; // coordinator gone mid-stage
                    }
                }
            });
        }
        Self {
            workers,
            spares: PoolSpares::default(),
        }
    }
}

impl StageExec for WorkerPool {
    /// Sends one stage's jobs to the workers and merges their stripes into
    /// `results`. A dead worker surfaces as a recv error (its sender is
    /// dropped on unwind), and the resulting coordinator panic propagates
    /// the failure instead of deadlocking — per-solve pools are scoped to
    /// the solve, so there is nothing to heal (the [`SharedPool`] is the
    /// self-healing flavour).
    fn run_stage(
        &mut self,
        stage: u64,
        results: &mut [Option<Sample>],
        slab: &mut Vec<Vec<NodeId>>,
    ) -> bool {
        let per_worker = slab.len().div_ceil(self.workers.len().max(1));
        for worker in &self.workers {
            let buf = self.spares.bufs.pop().unwrap_or_default();
            let recycled = take_share(slab, &mut self.spares.recycle_containers, per_worker);
            worker
                .job_tx
                .send(Job {
                    stage,
                    buf,
                    recycled,
                })
                .expect("per-solve pool worker panicked");
        }
        let mut all_complete = true;
        for worker in &self.workers {
            let SpanResult {
                mut buf,
                empties,
                complete,
            } = worker
                .result_rx
                .recv()
                .expect("per-solve pool worker panicked");
            all_complete &= complete;
            for (j, s) in buf.drain(..) {
                results[j] = s;
            }
            self.spares.bufs.push(buf);
            self.spares.recycle_containers.push(empties);
        }
        all_complete
    }
}

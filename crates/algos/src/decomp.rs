//! `Decomp` — scale-adaptive community decomposition (§5.3 scaling).
//!
//! Million-node graphs make whole-graph staged sampling expensive: the
//! default start-node count, the frontier sizes and the per-solve setup all
//! scale with `n`, while the group the paper asks for has `k ≪ n` members
//! that — on socially clustered graphs — overwhelmingly live inside one
//! community. `Decomp` exploits that:
//!
//! 1. **Partition** the graph with seeded label propagation
//!    ([`waso_graph::partition::label_propagation`]), optionally coarsened
//!    to a requested community count (`communities=`; `auto` keeps the
//!    propagation's answer).
//! 2. **Score** every community that can host a `k`-group by its
//!    willingness upper bound (Σ interests + Σ intra-community tightness —
//!    exactly `total_willingness_upper()` of the induced subgraph), and
//!    solve the `top=` best as independent induced-subgraph jobs with the
//!    `inner=` solver. Each job runs over a graph of community size, not
//!    `n`, which is where the speedup comes from; with a [`SharedPool`]
//!    attached, jobs submit their stages to the pool's workers.
//! 3. **Merge** by taking the best per-community group (score-preserving:
//!    a group inside one community has identical willingness in the parent
//!    graph), then run a **boundary repair** pass that tries swapping each
//!    member for a high-pair-weight neighbour across a community boundary —
//!    recovering groups the partition cut in half.
//!
//! Determinism: the partition is a function of `(graph, seed)`, community
//! jobs get `mix_seed(seed, rank, community)` streams, and the repair pass
//! is a deterministic best-improvement loop — so a fixed `(spec, seed)`
//! yields one answer at any pool width, proptest-pinned in
//! `tests/properties.rs`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use waso_core::{Group, GrowthWorkspace, WasoInstance};
use waso_graph::subgraph::{induced_subgraph, Induced};
use waso_graph::traversal::is_connected_subset;
use waso_graph::{label_propagation, NodeId, Partition};

use crate::job::{JobControl, Termination};
use crate::registry::SolverRegistry;
use crate::spec::{Capabilities, PoolMode, SolverSpec, SpecError};
use crate::{mix_seed, SharedPool, SolveError, SolveResult, Solver, SolverStats};

/// Label-propagation round cap; propagation converges much earlier on
/// clustered graphs, this only bounds adversarial inputs. Kept tight
/// because partitioning is the decomposition's one O(rounds · m) cost —
/// at n = 10^5 eight rounds already reproduce the sixteen-round
/// partition to within a handful of communities at half the wall time.
const MAX_LPA_ROUNDS: usize = 8;
/// Default for `top=`: how many best-scored communities get solved.
const DEFAULT_TOP: usize = 4;
/// Boundary-repair candidate cap: only the strongest cross-community
/// neighbours (by attached pair weight) are tried per round.
const REPAIR_CAP: usize = 64;

/// The community-decomposition composite solver (`decomp:` specs).
///
/// Construct via [`Decomp::from_spec`] or the registry
/// (`SolverRegistry::builtin().build(&spec)`).
pub struct Decomp {
    spec: SolverSpec,
    /// Canonical inner solver name (default `cbas-nd`).
    inner: String,
    /// The inner entry's supported option keys, for knob forwarding.
    inner_options: &'static [&'static str],
}

impl Decomp {
    /// Validates a `decomp:` spec and builds the solver.
    ///
    /// Rejections mirror the registry's "never silently ignore" rule: an
    /// unknown `inner=`, a recursive `inner=decomp`, `top=0`, or a tuning
    /// knob the chosen inner solver does not support are all typed
    /// [`SpecError`]s at build time, not surprises at solve time.
    pub fn from_spec(spec: &SolverSpec) -> Result<Self, SpecError> {
        spec.ensure_ce_ranges()?;
        spec.ensure_pool_has_threads()?;
        if spec.top == Some(0) {
            return Err(SpecError::OutOfRange {
                key: "top",
                value: "0".to_string(),
                expected: ">= 1",
            });
        }
        let registry = SolverRegistry::builtin();
        let inner_name = spec.inner.as_deref().unwrap_or("cbas-nd");
        let entry = registry
            .get(inner_name)
            .ok_or_else(|| SpecError::UnknownAlgorithm {
                name: inner_name.to_string(),
                known: registry.names(),
            })?;
        if entry.name == "decomp" {
            return Err(SpecError::BadValue {
                key: "inner",
                value: inner_name.to_string(),
            });
        }
        // Forwarded tuning knobs must be honoured by the inner solver.
        let forwarded: [(&'static str, bool); 9] = [
            ("budget", spec.budget.is_some()),
            ("stages", spec.stages.is_some()),
            ("start-nodes", spec.start_nodes.is_some()),
            ("threads", spec.threads.is_some()),
            ("pool", spec.pool.is_some()),
            ("rho", spec.rho.is_some()),
            ("smoothing", spec.smoothing.is_some()),
            ("backtrack", spec.backtrack.is_some()),
            ("patience", spec.patience.is_some()),
        ];
        for (key, set) in forwarded {
            if set && !entry.options.contains(&key) {
                return Err(SpecError::UnsupportedOption {
                    algorithm: entry.name,
                    key,
                });
            }
        }
        let decomp = Self {
            spec: spec.clone(),
            inner: entry.name.to_string(),
            inner_options: entry.options,
        };
        // Probe-build once so solve-time inner construction cannot fail.
        registry.build(&decomp.inner_spec(spec.budget_or_default()))?;
        Ok(decomp)
    }

    /// The inner solver's spec for one job of `budget` samples: the
    /// forwarded knobs (already validated as supported) plus the
    /// per-community budget share. Deadlines are *not* forwarded — the
    /// composite arms them once on the shared [`JobControl`], which every
    /// inner job observes.
    fn inner_spec(&self, budget: u64) -> SolverSpec {
        let mut s = SolverSpec::new(&self.inner);
        if self.inner_options.contains(&"budget") {
            s = s.budget(budget);
        }
        if let Some(r) = self.spec.stages {
            s = s.stages(r);
        }
        if let Some(m) = self.spec.start_nodes {
            s = s.start_nodes(m);
        }
        if let Some(t) = self.spec.threads {
            s = s.threads(t);
        }
        if let Some(p) = self.spec.pool {
            s = s.pool(p);
        }
        if let Some(rho) = self.spec.rho {
            s = s.rho(rho);
        }
        if let Some(w) = self.spec.smoothing {
            s = s.smoothing(w);
        }
        if let Some(z) = self.spec.backtrack {
            s = s.backtrack(z);
        }
        if let Some(p) = self.spec.patience {
            s = s.patience(p);
        }
        s
    }

    fn build_inner(&self, budget: u64) -> Box<dyn Solver + Send> {
        SolverRegistry::builtin()
            .build(&self.inner_spec(budget))
            .expect("inner spec was probe-built in Decomp::from_spec")
    }

    /// Whole-graph inner solve — the fallback whenever decomposition
    /// cannot help (one community, none large enough for a `k`-group, or
    /// required attendees straddling a boundary).
    fn solve_whole(
        &self,
        instance: &Arc<WasoInstance>,
        required: &[NodeId],
        seed: u64,
        pool: Option<&SharedPool>,
        control: &JobControl,
        t0: Instant,
    ) -> Result<SolveResult, SolveError> {
        let mut inner = self.build_inner(self.spec.budget_or_default());
        let mut res = inner.solve_controlled(instance, required, seed, pool, control)?;
        res.stats.elapsed = t0.elapsed();
        Ok(res)
    }

    fn run(
        &self,
        instance: &Arc<WasoInstance>,
        required: &[NodeId],
        seed: u64,
        pool: Option<&SharedPool>,
        control: &JobControl,
    ) -> Result<SolveResult, SolveError> {
        let t0 = Instant::now(); // audit:allow(D2): wall-clock feeds SolverStats timing only — never sampling or group choice
        if let Some(reason) = control.stop_reason() {
            return Err(SolveError::NoIncumbent { reason });
        }
        if let Some(ms) = self.spec.deadline_ms {
            control.arm_deadline(Duration::from_millis(ms));
        }
        let g = instance.graph();
        let k = instance.k();

        let mut partition = label_propagation(g, mix_seed(seed, 0xDEC0, 0), MAX_LPA_ROUNDS);
        if let Some(target) = self.spec.communities {
            // `communities=auto` (the 0 sentinel) keeps the propagation's
            // community count.
            if target >= 1 && partition.num_communities() > target {
                partition = partition.coarsen(g, target);
            }
        }

        // Only communities that can host a k-group are solvable alone.
        let mut candidates: Vec<usize> = (0..partition.num_communities())
            .filter(|&c| partition.members(c).len() >= k)
            .collect();

        if !required.is_empty() {
            // Decomposition helps only when every required attendee lives
            // in one qualifying community; otherwise the answer must span
            // boundaries and the whole graph is the honest search space.
            let home = partition.community_of(required[0]);
            let together = required.iter().all(|&v| partition.community_of(v) == home);
            if together && partition.members(home).len() >= k {
                candidates = vec![home];
            } else {
                return self.solve_whole(instance, required, seed, pool, control, t0);
            }
        }
        if partition.num_communities() < 2 || candidates.is_empty() {
            return self.solve_whole(instance, required, seed, pool, control, t0);
        }

        // Score = Σ interests + Σ intra-community directed tightness, which
        // is exactly `total_willingness_upper()` of the induced subgraph
        // (intra edges keep both directions) without materializing it.
        let mut score = vec![0.0f64; partition.num_communities()];
        for v in g.node_ids() {
            let cv = partition.community_of(v);
            score[cv] += g.interest(v);
            for (u, tau, _pw) in g.neighbor_entries(v) {
                if partition.community_of(u) == cv {
                    score[cv] += tau;
                }
            }
        }
        candidates.sort_by(|&a, &b| {
            score[b]
                .partial_cmp(&score[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let top = self.spec.top.unwrap_or(DEFAULT_TOP).min(candidates.len());
        candidates.truncate(top);

        let per_budget = (self.spec.budget_or_default() / candidates.len() as u64).max(1);
        let mut best: Option<Group> = None;
        let mut agg = SolverStats::default();
        let mut stopped: Option<Termination> = None;

        for (rank, &cid) in candidates.iter().enumerate() {
            if let Some(reason) = control.stop_reason() {
                stopped = Some(reason);
                break;
            }
            let members = partition.members(cid);
            let Induced {
                graph: sub_g,
                to_parent,
            } = induced_subgraph(g, members);
            let sub_instance = if instance.requires_connectivity() {
                WasoInstance::new(sub_g, k)
            } else {
                WasoInstance::without_connectivity(sub_g, k)
            }
            .map_err(SolveError::Invalid)?;
            // `members` is sorted by node id, so induced ids are positions.
            let sub_required: Vec<NodeId> = required
                .iter()
                .map(|v| {
                    let idx = members
                        .binary_search(v)
                        .expect("required attendees verified to live in this community");
                    NodeId(idx as u32)
                })
                .collect();

            let mut inner = self.build_inner(per_budget);
            let seed_c = mix_seed(seed, rank as u64 + 1, cid as u64);
            match inner.solve_controlled(
                &Arc::new(sub_instance),
                &sub_required,
                seed_c,
                pool,
                control,
            ) {
                Ok(res) => {
                    agg.samples_drawn += res.stats.samples_drawn;
                    agg.stages += res.stats.stages;
                    agg.start_nodes += res.stats.start_nodes;
                    agg.pruned_start_nodes += res.stats.pruned_start_nodes;
                    agg.backtracks += res.stats.backtracks;
                    agg.truncated |= res.stats.truncated;
                    // Lift to parent ids: willingness is identical because
                    // every pair edge of an intra-community group survives
                    // the induction.
                    let lifted = Group::new(instance, to_parent_ids(&to_parent, &res.group))
                        .map_err(SolveError::Invalid)?;
                    if best
                        .as_ref()
                        .map(|b| lifted.willingness() > b.willingness())
                        .unwrap_or(true)
                    {
                        best = Some(lifted);
                    }
                    let b = best.as_ref().expect("just set");
                    control.publish_stage(
                        agg.stages,
                        agg.samples_drawn,
                        Some((b.willingness(), b.nodes())),
                    );
                }
                // A community that cannot actually host a connected
                // k-group (propagation does not guarantee internal
                // connectivity) is skipped, not fatal.
                Err(SolveError::NoFeasibleGroup) => {}
                Err(SolveError::NoIncumbent { reason }) => {
                    stopped = Some(reason);
                    break;
                }
                Err(e) => return Err(e),
            }
        }

        let best = match best {
            Some(b) => b,
            None => {
                if let Some(reason) = stopped {
                    return Err(SolveError::NoIncumbent { reason });
                }
                return self.solve_whole(instance, required, seed, pool, control, t0);
            }
        };
        let repaired = boundary_repair(instance, &partition, best, required);

        agg.termination = control.stop_reason().unwrap_or(Termination::Completed);
        agg.truncated |= agg.termination != Termination::Completed;
        agg.elapsed = t0.elapsed();
        control.publish_stage(
            agg.stages,
            agg.samples_drawn,
            Some((repaired.willingness(), repaired.nodes())),
        );
        Ok(SolveResult {
            group: repaired,
            stats: agg,
        })
    }
}

/// Maps an induced-subgraph group back to parent node ids.
fn to_parent_ids(to_parent: &[NodeId], group: &Group) -> Vec<NodeId> {
    group.nodes().iter().map(|v| to_parent[v.index()]).collect()
}

/// Best-improvement swap pass over community boundaries.
///
/// Candidates are non-members adjacent to the group through a
/// cross-community edge, ranked by total attached pair weight (strongest
/// first, then smaller id) and capped at [`REPAIR_CAP`]. Each round tries
/// every (member out, candidate in) swap that keeps the group feasible —
/// connectivity is re-checked via BFS on the remainder plus a frontier
/// membership test — and takes the best strict willingness improvement,
/// breaking ties toward the smaller (in, out) id pair. At most `k` rounds,
/// so the pass is bounded and deterministic.
fn boundary_repair(
    instance: &WasoInstance,
    partition: &Partition,
    group: Group,
    required: &[NodeId],
) -> Group {
    let g = instance.graph();
    let k = instance.k();
    if k < 2 {
        return group;
    }
    let mut nodes: Vec<NodeId> = group.nodes().to_vec();
    let mut best_w = group.willingness();
    let mut ws = GrowthWorkspace::new(g.num_nodes());
    let mut improved_any = false;

    for _round in 0..k {
        // Cross-boundary candidates, ranked by attached pair weight.
        let mut attach: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
        for &s in &nodes {
            let cs = partition.community_of(s);
            for (y, _tau, pw) in g.neighbor_entries(s) {
                if nodes.binary_search(&y).is_err() && partition.community_of(y) != cs {
                    *attach.entry(y.0).or_insert(0.0) += pw;
                }
            }
        }
        let mut candidates: Vec<(NodeId, f64)> =
            attach.into_iter().map(|(y, w)| (NodeId(y), w)).collect();
        candidates.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        candidates.truncate(REPAIR_CAP);
        if candidates.is_empty() {
            break;
        }

        let mut best_swap: Option<(f64, NodeId, NodeId)> = None; // (W, in, out)
        for &x in &nodes {
            if required.contains(&x) {
                continue;
            }
            let rest: Vec<NodeId> = nodes.iter().copied().filter(|&v| v != x).collect();
            if instance.requires_connectivity() && !is_connected_subset(g, &rest) {
                continue;
            }
            ws.seed_set(g, &rest);
            let base = ws.willingness();
            for &(y, _) in &candidates {
                if instance.requires_connectivity() && !ws.frontier().contains(y) {
                    continue;
                }
                let w_new = base + ws.gain(g, y);
                let better = w_new > best_w + 1e-9
                    && best_swap
                        .as_ref()
                        .map(|&(bw, by, bx)| {
                            w_new > bw + 1e-9 || (w_new >= bw - 1e-9 && (y, x) < (by, bx))
                        })
                        .unwrap_or(true);
                if better {
                    best_swap = Some((w_new, y, x));
                }
            }
            ws.reset();
        }
        match best_swap {
            Some((w, y, x)) => {
                nodes.retain(|&v| v != x);
                nodes.push(y);
                nodes.sort_unstable();
                best_w = w;
                improved_any = true;
            }
            None => break,
        }
    }
    if improved_any {
        Group::new_unchecked(instance, nodes)
    } else {
        group
    }
}

impl Solver for Decomp {
    fn name(&self) -> &'static str {
        "decomp"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            required_attendees: true,
            parallel: true,
            randomized: true,
            anytime: true,
            ..Capabilities::default()
        }
    }

    fn solve_seeded(
        &mut self,
        instance: &WasoInstance,
        seed: u64,
    ) -> Result<SolveResult, SolveError> {
        self.solve_with_required(instance, &[], seed)
    }

    fn solve_with_required(
        &mut self,
        instance: &WasoInstance,
        required: &[NodeId],
        seed: u64,
    ) -> Result<SolveResult, SolveError> {
        let arc = Arc::new(instance.clone());
        self.run(&arc, required, seed, None, &JobControl::new())
    }

    fn pool_threads(&self) -> Option<usize> {
        match self.spec.pool {
            Some(PoolMode::Private) => None,
            _ => self.spec.threads,
        }
    }

    fn solve_pooled(
        &mut self,
        instance: &Arc<WasoInstance>,
        required: &[NodeId],
        seed: u64,
        pool: &SharedPool,
    ) -> Result<SolveResult, SolveError> {
        self.run(instance, required, seed, Some(pool), &JobControl::new())
    }

    fn solve_controlled(
        &mut self,
        instance: &Arc<WasoInstance>,
        required: &[NodeId],
        seed: u64,
        pool: Option<&SharedPool>,
        control: &JobControl,
    ) -> Result<SolveResult, SolveError> {
        self.run(instance, required, seed, pool, control)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_graph::GraphBuilder;

    fn build_clustered(k: usize) -> WasoInstance {
        // Deterministic hand-rolled two-community graph: nodes 0..8 form a
        // tight clique-ish block, 8..16 another, one weak bridge 7–8.
        let mut b = GraphBuilder::new();
        for i in 0..16 {
            b.add_node(5.0 + (i % 4) as f64);
        }
        let tight = 3.0;
        for base in [0u32, 8] {
            for i in base..base + 8 {
                for j in (i + 1)..base + 8 {
                    if (i + j) % 3 != 0 {
                        b.add_edge_symmetric(NodeId(i), NodeId(j), tight).unwrap();
                    }
                }
            }
        }
        b.add_edge_symmetric(NodeId(7), NodeId(8), 0.1).unwrap();
        WasoInstance::new(b.build(), k).unwrap()
    }

    fn decomp(spec: SolverSpec) -> Decomp {
        Decomp::from_spec(&spec).unwrap()
    }

    #[test]
    fn from_spec_validates() {
        assert!(Decomp::from_spec(&SolverSpec::new("decomp")).is_ok());
        assert!(matches!(
            Decomp::from_spec(&SolverSpec::new("decomp").inner("decomp")),
            Err(SpecError::BadValue { key: "inner", .. })
        ));
        assert!(matches!(
            Decomp::from_spec(&SolverSpec::new("decomp").inner("nope")),
            Err(SpecError::UnknownAlgorithm { .. })
        ));
        assert!(matches!(
            Decomp::from_spec(&SolverSpec::new("decomp").top(0)),
            Err(SpecError::OutOfRange { key: "top", .. })
        ));
        // Forwarded knobs the inner solver rejects are build-time errors.
        assert!(matches!(
            Decomp::from_spec(&SolverSpec::new("decomp").inner("dgreedy").rho(0.5)),
            Err(SpecError::UnsupportedOption {
                algorithm: "dgreedy",
                key: "rho"
            })
        ));
        // dgreedy inner without foreign knobs is fine.
        assert!(Decomp::from_spec(&SolverSpec::new("decomp").inner("dgreedy")).is_ok());
    }

    #[test]
    fn solves_clustered_graph_deterministically() {
        let inst = build_clustered(4);
        let spec = SolverSpec::new("decomp").budget(200).stages(3).top(2);
        let a = decomp(spec.clone()).solve_seeded(&inst, 11).unwrap();
        let b = decomp(spec).solve_seeded(&inst, 11).unwrap();
        assert_eq!(a.group, b.group);
        assert_eq!(a.group.len(), 4);
        a.group.validate(&inst).unwrap();
    }

    #[test]
    fn honours_required_attendees() {
        let inst = build_clustered(4);
        let spec = SolverSpec::new("decomp").budget(200).stages(3);
        // All required in one community.
        let res = decomp(spec.clone())
            .solve_with_required(&inst, &[NodeId(9), NodeId(10)], 3)
            .unwrap();
        assert!(res.group.contains(NodeId(9)) && res.group.contains(NodeId(10)));
        // Straddling the boundary forces the whole-graph fallback, which
        // must still honour the constraint.
        let res = decomp(spec)
            .solve_with_required(&inst, &[NodeId(7), NodeId(8)], 3)
            .unwrap();
        assert!(res.group.contains(NodeId(7)) && res.group.contains(NodeId(8)));
    }

    #[test]
    fn falls_back_when_no_community_fits_k() {
        // k larger than either community: decomposition cannot help, the
        // whole-graph fallback must still answer.
        let inst = build_clustered(10);
        let res = decomp(SolverSpec::new("decomp").budget(200).stages(2))
            .solve_seeded(&inst, 5)
            .unwrap();
        assert_eq!(res.group.len(), 10);
        res.group.validate(&inst).unwrap();
    }

    #[test]
    fn cancelled_before_start_returns_no_incumbent() {
        let inst = build_clustered(4);
        let control = JobControl::new();
        control.cancel();
        let err = decomp(SolverSpec::new("decomp").budget(100))
            .solve_controlled(&Arc::new(inst), &[], 1, None, &control)
            .unwrap_err();
        assert!(matches!(
            err,
            SolveError::NoIncumbent {
                reason: Termination::Cancelled
            }
        ));
    }

    #[test]
    fn community_score_matches_induced_upper_bound() {
        let inst = build_clustered(4);
        let g = inst.graph();
        let partition = label_propagation(g, 42, MAX_LPA_ROUNDS);
        for (c, members) in partition.communities() {
            let mut score = 0.0;
            for &v in members {
                score += g.interest(v);
                for (u, tau, _pw) in g.neighbor_entries(v) {
                    if partition.community_of(u) == c {
                        score += tau;
                    }
                }
            }
            let induced = induced_subgraph(g, members);
            assert!(
                (score - induced.graph.total_willingness_upper()).abs() < 1e-9,
                "community {c}: {} vs {}",
                score,
                induced.graph.total_willingness_upper()
            );
        }
    }

    #[test]
    fn boundary_repair_recovers_cross_boundary_swap() {
        // A 6-node graph where the best 3-group uses the bridge: members
        // {1,2,3} willingness-dominated, but node 4 across the boundary
        // attaches with a huge pair weight to 3.
        let mut b = GraphBuilder::new();
        for _ in 0..6 {
            b.add_node(1.0);
        }
        b.add_edge_symmetric(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge_symmetric(NodeId(1), NodeId(2), 1.0).unwrap();
        b.add_edge_symmetric(NodeId(2), NodeId(3), 1.0).unwrap();
        b.add_edge_symmetric(NodeId(3), NodeId(4), 10.0).unwrap();
        b.add_edge_symmetric(NodeId(4), NodeId(5), 1.0).unwrap();
        let inst = WasoInstance::new(b.build(), 3).unwrap();
        // Force a partition boundary between 3 and 4.
        let partition = Partition::from_raw_labels(&[0, 0, 0, 0, 1, 1]);
        let start = Group::new(&inst, vec![NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        let repaired = boundary_repair(&inst, &partition, start, &[]);
        assert!(repaired.contains(NodeId(4)), "{:?}", repaired.nodes());
        assert!(repaired.willingness() > 6.0);
    }

    #[test]
    fn required_members_survive_repair() {
        let inst = build_clustered(4);
        let spec = SolverSpec::new("decomp").budget(150).stages(2);
        let req = [NodeId(0)];
        let res = decomp(spec).solve_with_required(&inst, &req, 7).unwrap();
        assert!(res.group.contains(NodeId(0)));
    }
}

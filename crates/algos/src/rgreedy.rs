//! `RGreedy` — randomized greedy (§4.1).
//!
//! RGreedy "associates each neighbouring node with a different probability
//! according to its interest score and social tightness scores of the edges
//! incident to the partial solution S_{t-1}" — i.e. the candidate's
//! willingness contribution `Δ(v) = η_v + Σ_{u∈S} (τ_{v,u} + τ_{u,v})`. It
//! is the randomized version of the greedy algorithm with `m` start nodes;
//! every expansion step prices *every* candidate (a marginal-gain
//! evaluation per neighbour), which is exactly why the paper finds it
//! orders of magnitude slower than CBAS (Figures 5, 7, 8 — it cannot
//! finish large `k` at all).
//!
//! Fidelity note: §4.1 also writes the selection ratio as
//! `W({v_i} ∪ S) / W({v_j} ∪ S)`. That expression adds the constant `W(S)`
//! to every candidate's weight, so as the group grows all candidates tend
//! to the *same* probability and RGreedy would degenerate into uniform
//! sampling — contradicting the paper's own measurements, where RGreedy's
//! quality tracks CBAS-ND (Figures 5(f), 7). We therefore implement the
//! textual description (Δ-proportional selection); the `W(S)+Δ` variant is
//! available as [`RGreedyConfig::include_base_willingness`] for ablation
//! (see the `bench` crate's ablation benchmarks).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use waso_core::{Group, WasoInstance};
use waso_graph::NodeId;

use crate::sampler::{default_num_start_nodes, select_start_nodes, Sampler};
use crate::{mix_seed, SolveError, SolveResult, Solver, SolverStats};

/// Configuration of [`RGreedy`].
#[derive(Debug, Clone)]
pub struct RGreedyConfig {
    /// Total number of sampled final solutions (`T`).
    pub budget: u64,
    /// Number of start nodes (`m`); `None` → the paper's default `⌈n/k⌉`.
    pub num_start_nodes: Option<usize>,
    /// Pinned start nodes (user-study "-i" mode); overrides selection.
    pub start_override: Option<Vec<NodeId>>,
    /// Use the paper's literal `W(S ∪ {v})`-proportional weights instead of
    /// Δ-proportional ones (see the module docs; ablation only).
    pub include_base_willingness: bool,
}

impl RGreedyConfig {
    /// Budget `T`, defaults elsewhere.
    pub fn with_budget(budget: u64) -> Self {
        Self {
            budget,
            num_start_nodes: None,
            start_override: None,
            include_base_willingness: false,
        }
    }

    /// The settings a [`crate::SolverSpec`] carries (budget, start-node
    /// count, pinned starts). The `W(S)+Δ` ablation variant is
    /// deliberately not spec-reachable — it exists only for the ablation
    /// benchmarks.
    pub fn from_spec(spec: &crate::SolverSpec) -> Self {
        Self {
            num_start_nodes: spec.start_nodes,
            start_override: spec.starts.clone(),
            ..Self::with_budget(spec.budget_or_default())
        }
    }
}

/// Randomized greedy solver.
#[derive(Debug, Clone)]
pub struct RGreedy {
    config: RGreedyConfig,
}

impl RGreedy {
    /// Creates the solver.
    pub fn new(config: RGreedyConfig) -> Self {
        Self { config }
    }
}

impl Solver for RGreedy {
    fn name(&self) -> &'static str {
        "rgreedy"
    }

    fn capabilities(&self) -> crate::Capabilities {
        crate::Capabilities {
            randomized: true,
            ..crate::Capabilities::default()
        }
    }

    fn solve_seeded(
        &mut self,
        instance: &WasoInstance,
        seed: u64,
    ) -> Result<SolveResult, SolveError> {
        let t0 = Instant::now(); // audit:allow(D2): wall-clock feeds SolverStats timing only — never sampling or group choice
        let g = instance.graph();
        let n = g.num_nodes();
        let k = instance.k();

        let starts: Vec<NodeId> = match &self.config.start_override {
            Some(s) => s.clone(),
            None => {
                let m = self
                    .config
                    .num_start_nodes
                    .unwrap_or_else(|| default_num_start_nodes(n, k));
                select_start_nodes(g, m, None)
            }
        };
        if starts.is_empty() {
            return Err(SolveError::NoFeasibleGroup);
        }

        let m = starts.len();
        let budget = self.config.budget.max(1);
        let per_start = (budget / m as u64).max(1);

        let mut sampler = Sampler::new(n);
        let mut best: Option<(f64, Vec<NodeId>)> = None;
        let mut drawn = 0u64;
        // Reused per-step buffer of cumulative selection weights.
        let mut cumulative: Vec<f64> = Vec::new();

        for (si, &start) in starts.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(mix_seed(seed, si as u64, 0));
            'samples: for _ in 0..per_start {
                drawn += 1;
                let ws = sampler.workspace();
                ws.reset();
                if instance.requires_connectivity() {
                    ws.seed(g, start);
                } else {
                    ws.seed_free(g, start);
                }
                while ws.len() < k {
                    let frontier = ws.frontier();
                    let len = frontier.len();
                    if len == 0 {
                        continue 'samples; // stalled sample, try the next
                    }
                    // Selection probability ∝ Δ(v) (or ∝ W(S∪{v}) in the
                    // ablation variant) — priced for every candidate, the
                    // algorithm's deliberate expense. Shifted to stay
                    // positive when willingness can be negative.
                    cumulative.clear();
                    let base = if self.config.include_base_willingness {
                        ws.willingness()
                    } else {
                        0.0
                    };
                    let mut min_w = f64::INFINITY;
                    for idx in 0..len {
                        let v = frontier.item(idx);
                        let w = base + ws.gain(g, v);
                        min_w = min_w.min(w);
                        cumulative.push(w);
                    }
                    let shift = if min_w < 0.0 { -min_w } else { 0.0 };
                    let mut total = 0.0;
                    for w in cumulative.iter_mut() {
                        // Epsilon keeps zero-willingness candidates possible.
                        *w += shift + 1e-9;
                        total += *w;
                        *w = total;
                    }
                    let t = rng.random::<f64>() * total;
                    let idx = cumulative.partition_point(|&c| c <= t).min(len - 1);
                    let pick = ws.frontier().item(idx);
                    ws.add(g, pick);
                }
                let w = ws.willingness();
                if best.as_ref().is_none_or(|(bw, _)| w > *bw) {
                    best = Some((w, ws.selected().to_vec()));
                }
            }
        }

        let (_, nodes) = best.ok_or(SolveError::NoFeasibleGroup)?;
        let group = Group::new(instance, nodes).map_err(SolveError::Invalid)?;
        Ok(SolveResult {
            group,
            stats: SolverStats {
                samples_drawn: drawn,
                stages: 1,
                start_nodes: m as u32,
                elapsed: t0.elapsed(),
                ..SolverStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_graph::GraphBuilder;

    fn figure1_instance() -> WasoInstance {
        let mut b = GraphBuilder::new();
        let v1 = b.add_node(8.0);
        let v2 = b.add_node(7.0);
        let v3 = b.add_node(6.0);
        let v4 = b.add_node(5.0);
        b.add_edge_symmetric(v1, v2, 1.0).unwrap();
        b.add_edge_symmetric(v2, v3, 2.0).unwrap();
        b.add_edge_symmetric(v3, v4, 4.0).unwrap();
        WasoInstance::new(b.build(), 3).unwrap()
    }

    #[test]
    fn escapes_the_figure1_trap_with_enough_samples() {
        let mut solver = RGreedy::new(RGreedyConfig::with_budget(60));
        let res = solver.solve_seeded(&figure1_instance(), 7).unwrap();
        // Randomization over multiple start nodes finds {v2, v3, v4} = 30.
        assert_eq!(res.group.willingness(), 30.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let inst = figure1_instance();
        let mut s1 = RGreedy::new(RGreedyConfig::with_budget(20));
        let mut s2 = RGreedy::new(RGreedyConfig::with_budget(20));
        let a = s1.solve_seeded(&inst, 5).unwrap();
        let b = s2.solve_seeded(&inst, 5).unwrap();
        assert_eq!(a.group, b.group);
        assert_eq!(a.stats.samples_drawn, b.stats.samples_drawn);
    }

    #[test]
    fn start_override_pins_membership() {
        let inst = figure1_instance();
        let mut solver = RGreedy::new(RGreedyConfig {
            budget: 10,
            num_start_nodes: None,
            start_override: Some(vec![NodeId(3)]),
            include_base_willingness: false,
        });
        let res = solver.solve_seeded(&inst, 0).unwrap();
        assert!(res.group.contains(NodeId(3)));
        assert_eq!(res.stats.start_nodes, 1);
    }

    #[test]
    fn negative_scores_do_not_break_selection() {
        // Foe-style negative tightness: probabilities must stay valid.
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..4).map(|i| b.add_node(i as f64 - 1.0)).collect();
        b.add_edge_symmetric(ids[0], ids[1], -5.0).unwrap();
        b.add_edge_symmetric(ids[1], ids[2], 2.0).unwrap();
        b.add_edge_symmetric(ids[2], ids[3], -1.0).unwrap();
        let inst = WasoInstance::new(b.build(), 2).unwrap();
        let mut solver = RGreedy::new(RGreedyConfig::with_budget(30));
        let res = solver.solve_seeded(&inst, 3).unwrap();
        // Best pair is {v2, v3}: 1 + 2 + 2·2 = 7? η = (-1,0,1,2):
        // {2,3}: 1+2+2·(-1) = 1; {1,2}: 0+1+2·2 = 5 — the optimum.
        assert_eq!(res.group.nodes(), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn budget_accounting_counts_stalled_samples() {
        // Component of size 1 at the max-score start: samples stall but are
        // still budgeted (they consumed work).
        let mut b = GraphBuilder::new();
        let hub = b.add_node(100.0);
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        b.add_edge_symmetric(x, y, 0.5).unwrap();
        let _ = hub;
        let inst = WasoInstance::new(b.build(), 2).unwrap();
        let mut solver = RGreedy::new(RGreedyConfig {
            budget: 9,
            num_start_nodes: Some(3),
            start_override: None,
            include_base_willingness: false,
        });
        let res = solver.solve_seeded(&inst, 0).unwrap();
        assert_eq!(res.group.nodes(), &[NodeId(1), NodeId(2)]);
        assert_eq!(res.stats.samples_drawn, 9);
    }
}

//! Multi-threaded CBAS-ND (§5.3.1, Figure 5(d)).
//!
//! "Since CBAS and CBAS-ND natively support parallelization, we also
//! implemented them with OpenMP." Samples are independent given the stage's
//! probability vectors, so a stage's sampling fans out across threads at
//! **sample granularity** — necessary because the OCBA allocation
//! concentrates most of a stage's budget on the incumbent start node, which
//! would serialize any per-start-node split. Every `(start node, stage,
//! sample)` triple draws from its own deterministic RNG stream
//! (`sample_seed`) and the merge processes results in sample
//! order, so the outcome is **bit-identical for any thread count** —
//! `threads = 1` reproduces the serial [`crate::CbasNd`] exactly (tested).
//! The paper reports a 7.6× speedup on 8 cores; the Figure 5(d) harness
//! sweeps the same thread counts on whatever cores this machine has.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use waso_core::{Group, WasoInstance};
use waso_graph::NodeId;

use crate::cbas::uniform_split;
use crate::cbasnd::{update_vector, CbasNdConfig};
use crate::cross_entropy::ProbabilityVector;
use crate::gaussian::{allocate_stage_gaussian, Allocation, GaussStats};
use crate::ocba::{allocate_stage, stage_budgets, StartStats};
use crate::sampler::{Sample, Sampler};
use crate::{sample_seed, SolveError, SolveResult, Solver, SolverStats};

/// Parallel CBAS-ND with a fixed worker count.
#[derive(Debug, Clone)]
pub struct ParallelCbasNd {
    config: CbasNdConfig,
    threads: usize,
}

impl ParallelCbasNd {
    /// Creates the solver with `threads` workers (≥ 1).
    pub fn new(config: CbasNdConfig, threads: usize) -> Self {
        Self {
            config,
            threads: threads.max(1),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// One unit of stage work: draw sample `q` of start node `start_index`.
#[derive(Clone, Copy)]
struct WorkItem {
    start_index: usize,
    start: NodeId,
    q: u64,
}

impl Solver for ParallelCbasNd {
    fn name(&self) -> &'static str {
        "cbas-nd-par"
    }

    fn capabilities(&self) -> crate::Capabilities {
        crate::Capabilities {
            required_attendees: true, // honoured by routing to serial
            parallel: true,
            randomized: true,
            ..crate::Capabilities::default()
        }
    }

    /// The partial-solution growth mode that guarantees required
    /// attendees is serial-only, so constrained solves route to the
    /// serial [`CbasNd`] with the same configuration — the constraint is
    /// honoured at the cost of the parallel speedup, never dropped.
    fn solve_with_required(
        &mut self,
        instance: &WasoInstance,
        required: &[NodeId],
        seed: u64,
    ) -> Result<SolveResult, SolveError> {
        if required.is_empty() {
            return self.solve_seeded(instance, seed);
        }
        crate::cbasnd::CbasNd::new(self.config.clone())
            .solve_with_required(instance, required, seed)
    }

    fn solve_seeded(
        &mut self,
        instance: &WasoInstance,
        seed: u64,
    ) -> Result<SolveResult, SolveError> {
        let t0 = Instant::now();
        let cfg = &self.config;
        let g = instance.graph();
        let n = g.num_nodes();
        let k = instance.k();

        let starts = cfg.base.resolve_starts(instance);
        if starts.is_empty() {
            return Err(SolveError::NoFeasibleGroup);
        }
        let m = starts.len();
        let r = cfg.base.resolve_stages(instance, m);
        let budgets = stage_budgets(cfg.base.budget, r);

        let mut stats = vec![StartStats::new(); m];
        let mut gstats = vec![GaussStats::new(); m];
        let mut vectors: Vec<ProbabilityVector> = starts
            .iter()
            .map(|&s| ProbabilityVector::uniform_for_start(n.max(2), k, s))
            .collect();
        let mut gammas = vec![f64::NEG_INFINITY; m];
        let mut best: Option<(f64, Vec<NodeId>)> = None;
        let mut drawn = 0u64;
        let mut pruned_count = 0u32;
        let mut backtracks = 0u32;

        for (stage, &stage_budget) in budgets.iter().enumerate() {
            let alloc = if stage == 0 {
                uniform_split(stage_budget, m, &stats)
            } else {
                let a = match cfg.allocation {
                    Allocation::UniformOcba => allocate_stage(&stats, stage_budget),
                    Allocation::Gaussian => allocate_stage_gaussian(&gstats, stage_budget),
                };
                for i in 0..m {
                    if a[i] == 0 && !stats[i].pruned && stats[i].sampled() {
                        stats[i].pruned = true;
                        gstats[i].pruned = true;
                        pruned_count += 1;
                    }
                }
                a
            };

            // Flatten the stage into independent sample-granularity items.
            let mut items: Vec<WorkItem> = Vec::new();
            for (i, &ni) in alloc.iter().enumerate() {
                for q in 0..ni {
                    items.push(WorkItem {
                        start_index: i,
                        start: starts[i],
                        q,
                    });
                }
            }
            if items.is_empty() {
                continue;
            }

            let workers = self.threads.min(items.len());
            // results[j] = outcome of items[j].
            let mut results: Vec<Option<Sample>> = vec![None; items.len()];
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                let vectors_ref = &vectors;
                let blocked = &cfg.base.blocked;
                let items_ref = &items;
                for w in 0..workers {
                    handles.push(scope.spawn(move || {
                        let mut sampler = Sampler::new(n);
                        sampler.set_blocked(blocked.clone());
                        let mut out: Vec<(usize, Option<Sample>)> = Vec::new();
                        let mut j = w;
                        while j < items_ref.len() {
                            let item = items_ref[j];
                            let mut rng = StdRng::seed_from_u64(sample_seed(
                                seed,
                                item.start_index as u64,
                                stage as u64,
                                item.q,
                            ));
                            let sample = sampler.sample_weighted(
                                instance,
                                item.start,
                                &vectors_ref[item.start_index],
                                &mut rng,
                            );
                            out.push((j, sample));
                            j += workers;
                        }
                        out
                    }));
                }
                for h in handles {
                    for (j, sample) in h.join().expect("sampling worker panicked") {
                        results[j] = sample;
                    }
                }
            });

            // Merge in (start node, sample) order — identical to the serial
            // solver, including its stop-at-first-stall accounting (a stall
            // is a property of the start node's component, so sample 0
            // stalls iff they all do).
            let mut idx = 0usize;
            for (i, &ni) in alloc.iter().enumerate() {
                if ni == 0 {
                    continue;
                }
                let node_range = idx..idx + ni as usize;
                idx += ni as usize;

                let mut stage_samples: Vec<Sample> = Vec::with_capacity(ni as usize);
                for j in node_range {
                    drawn += 1;
                    match results[j].take() {
                        Some(s) => {
                            stats[i].record(s.willingness);
                            gstats[i].moments.push(s.willingness);
                            if best.as_ref().is_none_or(|(bw, _)| s.willingness > *bw) {
                                best = Some((s.willingness, s.nodes.clone()));
                            }
                            stage_samples.push(s);
                        }
                        None => {
                            if !stats[i].pruned {
                                stats[i].pruned = true;
                                gstats[i].pruned = true;
                                pruned_count += 1;
                            }
                            break;
                        }
                    }
                }
                stats[i].spent += ni;
                gstats[i].spent += ni;
                if !stage_samples.is_empty() {
                    backtracks += update_vector(
                        &mut vectors[i],
                        &mut gammas[i],
                        &mut stage_samples,
                        cfg.rho,
                        cfg.smoothing,
                        cfg.backtrack_threshold,
                    ) as u32;
                }
            }
        }

        let (_, mut nodes) = best.ok_or(SolveError::NoFeasibleGroup)?;
        nodes.sort_unstable();
        let group = Group::new(instance, nodes).map_err(SolveError::Invalid)?;
        Ok(SolveResult {
            group,
            stats: SolverStats {
                samples_drawn: drawn,
                stages: r,
                start_nodes: m as u32,
                pruned_start_nodes: pruned_count,
                backtracks,
                truncated: false,
                elapsed: t0.elapsed(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cbasnd::CbasNd;
    use rand::rngs::StdRng;
    use waso_graph::{generate, ScoreModel};

    fn instance(n: usize, k: usize, seed: u64) -> WasoInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = generate::barabasi_albert(n, 4, &mut rng);
        let g = ScoreModel::paper_default().realize(&topo, &mut rng);
        WasoInstance::new(g, k).unwrap()
    }

    fn config(budget: u64) -> CbasNdConfig {
        let mut c = CbasNdConfig::with_budget(budget);
        c.base.stages = Some(4);
        c
    }

    #[test]
    fn parallel_equals_serial_bitwise() {
        let inst = instance(80, 6, 1);
        let serial = CbasNd::new(config(120)).solve_seeded(&inst, 42).unwrap();
        for threads in [1, 2, 4] {
            let par = ParallelCbasNd::new(config(120), threads)
                .solve_seeded(&inst, 42)
                .unwrap();
            assert_eq!(
                par.group, serial.group,
                "thread count {threads} changed the result"
            );
            assert_eq!(par.stats.samples_drawn, serial.stats.samples_drawn);
            assert_eq!(
                par.stats.pruned_start_nodes,
                serial.stats.pruned_start_nodes
            );
            assert_eq!(par.stats.backtracks, serial.stats.backtracks);
        }
    }

    #[test]
    fn thread_count_is_clamped_to_at_least_one() {
        let solver = ParallelCbasNd::new(config(40), 0);
        assert_eq!(solver.threads(), 1);
    }

    #[test]
    fn parallel_gaussian_variant_runs() {
        let inst = instance(50, 5, 2);
        let res = ParallelCbasNd::new(config(80).gaussian(), 3)
            .solve_seeded(&inst, 3)
            .unwrap();
        assert_eq!(res.group.len(), 5);
        assert_eq!(res.stats.samples_drawn, 80);
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let inst = instance(30, 4, 3);
        let mut cfg = config(30);
        cfg.base.num_start_nodes = Some(2);
        let res = ParallelCbasNd::new(cfg, 16).solve_seeded(&inst, 4).unwrap();
        assert_eq!(res.group.len(), 4);
        assert_eq!(res.stats.start_nodes, 2);
    }

    #[test]
    fn stalled_starts_match_serial_accounting() {
        // A graph with an isolated high-score node: serial and parallel
        // must agree on drawn counts and pruning.
        let mut b = waso_graph::GraphBuilder::new();
        let hub = b.add_node(100.0);
        let ids: Vec<NodeId> = (0..6).map(|i| b.add_node(i as f64 * 0.1)).collect();
        for w in ids.windows(2) {
            b.add_edge_symmetric(w[0], w[1], 1.0).unwrap();
        }
        let _ = hub;
        let inst = WasoInstance::new(b.build(), 3).unwrap();
        let mut cfg = config(40);
        cfg.base.num_start_nodes = Some(3);
        let serial = CbasNd::new(cfg.clone()).solve_seeded(&inst, 5).unwrap();
        let par = ParallelCbasNd::new(cfg, 4).solve_seeded(&inst, 5).unwrap();
        assert_eq!(par.group, serial.group);
        assert_eq!(par.stats.samples_drawn, serial.stats.samples_drawn);
        assert_eq!(
            par.stats.pruned_start_nodes,
            serial.stats.pruned_start_nodes
        );
    }
}

//! Multi-threaded CBAS-ND (§5.3.1, Figure 5(d)).
//!
//! "Since CBAS and CBAS-ND natively support parallelization, we also
//! implemented them with OpenMP." Samples are independent given the stage's
//! probability vectors, so a stage's sampling fans out across threads at
//! **sample granularity** — necessary because the OCBA allocation
//! concentrates most of a stage's budget on the incumbent start node, which
//! would serialize any per-start-node split.
//!
//! [`ParallelCbasNd`] is the CBAS-ND configuration of the shared
//! [`crate::engine::StagedEngine`] with the [`ExecBackend::Pool`] backend:
//! a **persistent worker pool spawned once per solve** (not once per
//! stage), each worker keeping its sampler and buffers for the whole run
//! (see [`crate::exec`]) — or, through [`Solver::solve_pooled`], a
//! session-held [`SolverPool`] shared across solves. Required-attendee
//! solves run partial-solution growth on the pool as well.
//! Every `(start node, stage, sample)` triple draws
//! from its own deterministic RNG stream (`sample_seed`) and the engine
//! merges results in sample order, so the outcome is **bit-identical for
//! any thread count** — `threads = 1` reproduces the serial
//! [`crate::CbasNd`] exactly (tested here and by the `tests/properties.rs`
//! proptest). The paper reports a 7.6× speedup on 8 cores; the Figure 5(d)
//! harness sweeps the same thread counts on whatever cores this machine
//! has.

use std::sync::Arc;

use waso_core::WasoInstance;
use waso_graph::NodeId;

use crate::cbasnd::CbasNdConfig;
use crate::engine::{StagedEngine, StartMode};
use crate::exec::{ExecBackend, SharedPool};
use crate::spec::PoolMode;
use crate::{SolveError, SolveResult, Solver};

/// Parallel CBAS-ND with a fixed worker count.
#[derive(Debug, Clone)]
pub struct ParallelCbasNd {
    config: CbasNdConfig,
    threads: usize,
    pool: PoolMode,
    /// Incumbent offered via [`Solver::warm_start`]; seeds the engine's
    /// best-so-far. The warm seed is validated before any sample is
    /// drawn, so it is identical across thread counts and pool shapes.
    incumbent: Option<Vec<NodeId>>,
}

impl ParallelCbasNd {
    /// Creates the solver with `threads` workers (≥ 1).
    pub fn new(config: CbasNdConfig, threads: usize) -> Self {
        Self {
            config,
            threads: threads.max(1),
            pool: PoolMode::default(),
            incumbent: None,
        }
    }

    /// Selects where workers come from (`pool=shared` routes through the
    /// session's [`SharedPool`], `pool=private` spawns a per-solve pool).
    /// Scheduling only; the answer is identical.
    pub fn pool_mode(mut self, pool: PoolMode) -> Self {
        self.pool = pool;
        self
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn engine(&self) -> StagedEngine {
        let engine = StagedEngine::from_cbasnd(&self.config).backend(ExecBackend::Pool {
            threads: self.threads,
        });
        match &self.incumbent {
            Some(nodes) => engine.warm_start(nodes.clone()),
            None => engine,
        }
    }
}

impl Solver for ParallelCbasNd {
    fn name(&self) -> &'static str {
        "cbas-nd-par"
    }

    fn capabilities(&self) -> crate::Capabilities {
        crate::Capabilities {
            required_attendees: true, // partial-mode growth, pooled too
            parallel: true,
            randomized: true,
            anytime: true,
            warm_start: true,
            ..crate::Capabilities::default()
        }
    }

    /// Stores the incumbent; every subsequent solve seeds its
    /// best-so-far from it (when feasible). Identical across thread
    /// counts and pool shapes — the warm seed never touches the sample
    /// stream.
    fn warm_start(&mut self, incumbent: &waso_core::Group) {
        self.incumbent = Some(incumbent.nodes().to_vec());
    }

    /// Required-attendee solves run the engine's partial-solution growth
    /// on the **pooled** backend: partial-mode samples are independent
    /// draws from the same seed set, so they stripe across workers like
    /// fresh samples — the constraint is honoured at full parallel speed,
    /// bit-identically to the serial path.
    fn solve_with_required(
        &mut self,
        instance: &WasoInstance,
        required: &[NodeId],
        seed: u64,
    ) -> Result<SolveResult, SolveError> {
        if required.is_empty() {
            return self.solve_seeded(instance, seed);
        }
        if required.len() > instance.k() {
            return Err(SolveError::NoFeasibleGroup);
        }
        self.engine()
            .solve(instance, StartMode::Partial(required), seed)
    }

    fn solve_seeded(
        &mut self,
        instance: &WasoInstance,
        seed: u64,
    ) -> Result<SolveResult, SolveError> {
        self.engine().solve(instance, StartMode::Fresh, seed)
    }

    fn pool_threads(&self) -> Option<usize> {
        match self.pool {
            // Private-pool solves spawn their own workers in solve_seeded.
            PoolMode::Private => None,
            PoolMode::Shared => Some(self.threads),
        }
    }

    /// Runs as a job of a shared pool — fresh and required-attendee
    /// solves alike — amortizing worker spawns across every job the pool
    /// serves.
    fn solve_pooled(
        &mut self,
        instance: &Arc<WasoInstance>,
        required: &[NodeId],
        seed: u64,
        pool: &SharedPool,
    ) -> Result<SolveResult, SolveError> {
        if required.len() > instance.k() {
            return Err(SolveError::NoFeasibleGroup);
        }
        let mode = if required.is_empty() {
            StartMode::Fresh
        } else {
            StartMode::Partial(required)
        };
        self.engine().solve_in_pool(pool, instance, mode, seed)
    }

    /// Anytime parallel CBAS-ND: a cancel or elapsed deadline stops the
    /// job from dealing further chunks at the next stage boundary — on
    /// the shared pool (when one is given) or the private per-solve pool
    /// alike; other jobs of a shared pool are untouched.
    fn solve_controlled(
        &mut self,
        instance: &Arc<WasoInstance>,
        required: &[NodeId],
        seed: u64,
        pool: Option<&SharedPool>,
        control: &crate::JobControl,
    ) -> Result<SolveResult, SolveError> {
        if required.len() > instance.k() {
            return Err(SolveError::NoFeasibleGroup);
        }
        let mode = if required.is_empty() {
            StartMode::Fresh
        } else {
            StartMode::Partial(required)
        };
        match pool {
            Some(pool) => self
                .engine()
                .solve_in_pool_controlled(pool, instance, mode, seed, control),
            None => self
                .engine()
                .solve_controlled(instance, mode, seed, control),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cbasnd::CbasNd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waso_graph::{generate, ScoreModel};

    fn instance(n: usize, k: usize, seed: u64) -> WasoInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = generate::barabasi_albert(n, 4, &mut rng);
        let g = ScoreModel::paper_default().realize(&topo, &mut rng);
        WasoInstance::new(g, k).unwrap()
    }

    fn config(budget: u64) -> CbasNdConfig {
        let mut c = CbasNdConfig::with_budget(budget);
        c.base.stages = Some(4);
        c
    }

    #[test]
    fn parallel_equals_serial_bitwise() {
        let inst = instance(80, 6, 1);
        let serial = CbasNd::new(config(120)).solve_seeded(&inst, 42).unwrap();
        for threads in [1, 2, 4] {
            let par = ParallelCbasNd::new(config(120), threads)
                .solve_seeded(&inst, 42)
                .unwrap();
            assert_eq!(
                par.group, serial.group,
                "thread count {threads} changed the result"
            );
            assert_eq!(par.stats.samples_drawn, serial.stats.samples_drawn);
            assert_eq!(
                par.stats.pruned_start_nodes,
                serial.stats.pruned_start_nodes
            );
            assert_eq!(par.stats.backtracks, serial.stats.backtracks);
        }
    }

    #[test]
    fn thread_count_is_clamped_to_at_least_one() {
        let solver = ParallelCbasNd::new(config(40), 0);
        assert_eq!(solver.threads(), 1);
    }

    #[test]
    fn parallel_gaussian_variant_runs() {
        let inst = instance(50, 5, 2);
        let res = ParallelCbasNd::new(config(80).gaussian(), 3)
            .solve_seeded(&inst, 3)
            .unwrap();
        assert_eq!(res.group.len(), 5);
        assert_eq!(res.stats.samples_drawn, 80);
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let inst = instance(30, 4, 3);
        let mut cfg = config(30);
        cfg.base.num_start_nodes = Some(2);
        let res = ParallelCbasNd::new(cfg, 16).solve_seeded(&inst, 4).unwrap();
        assert_eq!(res.group.len(), 4);
        assert_eq!(res.stats.start_nodes, 2);
    }

    #[test]
    fn stalled_starts_match_serial_accounting() {
        // A graph with an isolated high-score node: serial and parallel
        // must agree on drawn counts and pruning.
        let mut b = waso_graph::GraphBuilder::new();
        let hub = b.add_node(100.0);
        let ids: Vec<NodeId> = (0..6).map(|i| b.add_node(i as f64 * 0.1)).collect();
        for w in ids.windows(2) {
            b.add_edge_symmetric(w[0], w[1], 1.0).unwrap();
        }
        let _ = hub;
        let inst = WasoInstance::new(b.build(), 3).unwrap();
        let mut cfg = config(40);
        cfg.base.num_start_nodes = Some(3);
        let serial = CbasNd::new(cfg.clone()).solve_seeded(&inst, 5).unwrap();
        let par = ParallelCbasNd::new(cfg, 4).solve_seeded(&inst, 5).unwrap();
        assert_eq!(par.group, serial.group);
        assert_eq!(par.stats.samples_drawn, serial.stats.samples_drawn);
        assert_eq!(
            par.stats.pruned_start_nodes,
            serial.stats.pruned_start_nodes
        );
    }

    #[test]
    fn required_attendees_are_pooled_and_match_serial() {
        // Partial-mode (required-attendee) solves run on the worker pool
        // too, and must be bit-identical to the serial path.
        let inst = instance(50, 6, 9);
        let required = [NodeId(0), NodeId(1)];
        let serial = CbasNd::new(config(60))
            .solve_with_required(&inst, &required, 2)
            .unwrap();
        for threads in [1, 2, 4] {
            let par = ParallelCbasNd::new(config(60), threads)
                .solve_with_required(&inst, &required, 2)
                .unwrap();
            assert_eq!(par.group, serial.group, "threads={threads}");
            assert_eq!(par.stats.samples_drawn, serial.stats.samples_drawn);
            for &v in &required {
                assert!(par.group.contains(v));
            }
        }
    }

    #[test]
    fn session_pool_matches_per_solve_pool() {
        let inst = Arc::new(instance(60, 5, 11));
        let pool = SharedPool::new(4);
        let mut solver = ParallelCbasNd::new(config(90), 2);
        let direct = solver.solve_seeded(&inst, 6).unwrap();
        // Two pooled solves over the same shared pool: identical to the
        // per-solve pool, and the pool stays serviceable between solves.
        for _ in 0..2 {
            let held = solver.solve_pooled(&inst, &[], 6, &pool).unwrap();
            assert_eq!(held.group, direct.group);
            assert_eq!(held.stats.samples_drawn, direct.stats.samples_drawn);
        }
        let required = [NodeId(0), NodeId(1)];
        let serial = CbasNd::new(config(90))
            .solve_with_required(&inst, &required, 6)
            .unwrap();
        let held = solver.solve_pooled(&inst, &required, 6, &pool).unwrap();
        assert_eq!(held.group, serial.group);
    }

    #[test]
    fn private_pool_mode_opts_out_of_the_shared_pool() {
        let inst = instance(40, 4, 12);
        let shared = ParallelCbasNd::new(config(60), 2);
        assert_eq!(shared.pool_threads(), Some(2));
        let mut private = shared.clone().pool_mode(PoolMode::Private);
        assert_eq!(private.pool_threads(), None);
        // Same answer either way — the knob is scheduling only.
        let a = ParallelCbasNd::new(config(60), 2)
            .solve_seeded(&inst, 3)
            .unwrap();
        let b = private.solve_seeded(&inst, 3).unwrap();
        assert_eq!(a.group, b.group);
    }
}

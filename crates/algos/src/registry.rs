//! `SolverRegistry` — the single place specs become solvers.
//!
//! Every caller that used to hand-maintain a `match` over algorithm names
//! (the CLI, each figure driver, the examples) now resolves a
//! [`SolverSpec`] here. The registry owns:
//!
//! * the **name space**: canonical names plus aliases, so `--algorithm`
//!   validation and help text are derived, never hand-written;
//! * the **construction path**: one `fn(&SolverSpec) -> Box<dyn Solver + Send>`
//!   per entry, each of which *rejects* options the solver cannot honour
//!   ([`SpecError::UnsupportedOption`]) instead of ignoring them;
//! * the **metadata** other layers derive UI from: capability flags, the
//!   paper's comparison-roster order, and cost warnings.
//!
//! [`SolverRegistry::builtin`] registers the `waso-algos` family
//! (DGreedy, RGreedy, CBAS, CBAS-ND, CBAS-ND-G, parallel CBAS-ND). The
//! staged entries are all configurations of the one
//! [`crate::engine::StagedEngine`]; a spec's `threads` knob selects its
//! pooled execution backend without changing the answer.
//! Downstream crates append their own entries — `waso-exact` registers
//! the branch-and-bound under `exact`, and the `waso` facade exposes the
//! fully-populated registry via `waso::registry()`.

use crate::spec::{Capabilities, SolverSpec, SpecError};
use crate::{
    Cbas, CbasConfig, CbasNd, CbasNdConfig, DGreedy, ParallelCbasNd, RGreedy, RGreedyConfig, Solver,
};

/// Builds a solver from a spec, or explains why the spec is unusable.
/// Built solvers are `Send` so sessions can run them on job threads
/// (the submit/handle API).
pub type BuildFn = fn(&SolverSpec) -> Result<Box<dyn Solver + Send>, SpecError>;

/// One registered solver.
pub struct RegistryEntry {
    /// Canonical spec name (`"cbas-nd"`).
    pub name: &'static str,
    /// Accepted aliases (`"cbasnd"`), canonicalized by [`SolverRegistry::parse`].
    pub aliases: &'static [&'static str],
    /// Human label for tables and figures (`"CBAS-ND"`).
    pub label: &'static str,
    /// One-line description for derived help text.
    pub summary: &'static str,
    /// What the built solver can honour.
    pub capabilities: Capabilities,
    /// Position in the paper's standard comparison roster
    /// (Figures 5/7/8/9); `None` keeps the solver out of those sweeps.
    pub roster_rank: Option<u8>,
    /// Prices every candidate at every step — harnesses cap its group
    /// sizes (the paper aborts RGreedy past small `k`, §5.3.1).
    pub costly: bool,
    /// The spec option keys this solver's builder honours. Everything
    /// else is rejected by the builder; harnesses use this to set only
    /// supported knobs without per-solver knowledge.
    pub options: &'static [&'static str],
    /// The construction function.
    pub build: BuildFn,
}

impl std::fmt::Debug for RegistryEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryEntry")
            .field("name", &self.name)
            .field("aliases", &self.aliases)
            .field("label", &self.label)
            .field("capabilities", &self.capabilities)
            .field("roster_rank", &self.roster_rank)
            .field("costly", &self.costly)
            .finish_non_exhaustive()
    }
}

/// The spec → solver resolution table.
#[derive(Debug, Default)]
pub struct SolverRegistry {
    entries: Vec<RegistryEntry>,
}

impl SolverRegistry {
    /// An empty registry (compose your own).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The `waso-algos` solver family. Exact solving lives in
    /// `waso-exact`, which appends itself via its `register_exact`;
    /// use `waso::registry()` for the fully-populated table.
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        r.register(RegistryEntry {
            name: "dgreedy",
            aliases: &["greedy"],
            label: "DGreedy",
            summary: "deterministic greedy from the max-interest start (§1, §3)",
            capabilities: Capabilities {
                required_attendees: true, // a single attendee, as the pinned start
                ..Capabilities::default()
            },
            roster_rank: Some(0),
            costly: false,
            options: DGREEDY_KEYS,
            build: build_dgreedy,
        });
        r.register(RegistryEntry {
            name: "cbas",
            aliases: &[],
            label: "CBAS",
            summary: "budget-allocated uniform random sampling (§3)",
            capabilities: Capabilities {
                randomized: true,
                parallel: true, // threads=N selects the pooled backend
                anytime: true,
                ..Capabilities::default()
            },
            roster_rank: Some(1),
            costly: false,
            options: CBAS_KEYS,
            build: build_cbas,
        });
        r.register(RegistryEntry {
            name: "rgreedy",
            aliases: &[],
            label: "RGreedy",
            summary: "randomized greedy, Δ-proportional selection (§4.1)",
            capabilities: Capabilities {
                randomized: true,
                ..Capabilities::default()
            },
            roster_rank: Some(2),
            costly: true,
            options: RGREEDY_KEYS,
            build: build_rgreedy,
        });
        r.register(RegistryEntry {
            name: "cbas-nd",
            aliases: &["cbasnd"],
            label: "CBAS-ND",
            summary: "CBAS with cross-entropy neighbour differentiation (§4)",
            capabilities: Capabilities {
                required_attendees: true,
                parallel: true, // threads=N builds the parallel driver
                randomized: true,
                anytime: true,
                warm_start: true,
                ..Capabilities::default()
            },
            roster_rank: Some(3),
            costly: false,
            options: CBASND_KEYS,
            build: build_cbasnd,
        });
        r.register(RegistryEntry {
            name: "cbas-nd-g",
            aliases: &["cbasnd-g", "gaussian"],
            label: "CBAS-ND-G",
            summary: "CBAS-ND with the Gaussian budget allocation (Appendix A)",
            capabilities: Capabilities {
                required_attendees: true,
                parallel: true,
                randomized: true,
                anytime: true,
                warm_start: true,
                ..Capabilities::default()
            },
            roster_rank: None,
            costly: false,
            options: CBASND_KEYS,
            build: build_cbasnd_g,
        });
        r.register(RegistryEntry {
            name: "decomp",
            aliases: &["decompose"],
            label: "Decomp",
            summary: "community-partitioned solve: label propagation, top communities via inner=, boundary repair",
            capabilities: Capabilities {
                required_attendees: true,
                parallel: true,
                randomized: true,
                anytime: true,
                ..Capabilities::default()
            },
            roster_rank: None,
            costly: false,
            options: DECOMP_KEYS,
            build: build_decomp,
        });
        r.register(RegistryEntry {
            name: "cbas-nd-par",
            aliases: &["parallel"],
            label: "CBAS-ND (parallel)",
            summary: "CBAS-ND on a persistent worker pool, bit-identical to serial (§5.3.1)",
            capabilities: Capabilities {
                required_attendees: true, // honoured by routing to serial
                parallel: true,
                randomized: true,
                anytime: true,
                warm_start: true,
                ..Capabilities::default()
            },
            roster_rank: None,
            costly: false,
            options: CBASND_KEYS,
            build: build_parallel,
        });
        r
    }

    /// Appends an entry. Panics on a name or alias collision — registries
    /// are composed at startup, so a collision is a programming error.
    pub fn register(&mut self, entry: RegistryEntry) {
        let mut names = vec![entry.name];
        names.extend(entry.aliases);
        for n in names {
            assert!(self.get(n).is_none(), "solver name '{n}' registered twice");
        }
        self.entries.push(entry);
    }

    /// Looks up a canonical name or alias.
    pub fn get(&self, name: &str) -> Option<&RegistryEntry> {
        self.entries
            .iter()
            .find(|e| e.name == name || e.aliases.contains(&name))
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[RegistryEntry] {
        &self.entries
    }

    /// Canonical names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// The paper's standard comparison roster (Figures 5/7/8/9), ordered
    /// by `roster_rank`. Figure drivers derive their solver lists — and
    /// their table columns — from this instead of hand-maintaining them.
    pub fn roster(&self) -> Vec<&RegistryEntry> {
        let mut r: Vec<&RegistryEntry> = self
            .entries
            .iter()
            .filter(|e| e.roster_rank.is_some())
            .collect();
        r.sort_by_key(|e| e.roster_rank);
        r
    }

    /// Resolves the entry a spec names.
    pub fn resolve(&self, spec: &SolverSpec) -> Result<&RegistryEntry, SpecError> {
        self.get(spec.algorithm())
            .ok_or_else(|| SpecError::UnknownAlgorithm {
                name: spec.algorithm().to_string(),
                known: self.names(),
            })
    }

    /// Parses a spec string and canonicalizes its algorithm name, erroring
    /// on names no registered solver answers to.
    pub fn parse(&self, s: &str) -> Result<SolverSpec, SpecError> {
        let spec = SolverSpec::parse(s)?;
        let entry = self.resolve(&spec)?;
        Ok(spec.with_algorithm(entry.name))
    }

    /// Builds the solver a spec describes.
    pub fn build(&self, spec: &SolverSpec) -> Result<Box<dyn Solver + Send>, SpecError> {
        (self.resolve(spec)?.build)(spec)
    }

    /// Derived one-line-per-solver help text for CLIs.
    pub fn help_text(&self) -> String {
        let width = self.entries.iter().map(|e| e.name.len()).max().unwrap_or(0);
        self.entries
            .iter()
            .map(|e| format!("  {:width$}  {}", e.name, e.summary))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Derived `a|b|c` list of canonical names for usage strings.
    pub fn name_list(&self) -> String {
        self.names().join("|")
    }
}

const DGREEDY_KEYS: &[&str] = &["starts"];
const RGREEDY_KEYS: &[&str] = &["budget", "start-nodes", "starts"];
const CBAS_KEYS: &[&str] = &[
    "budget",
    "stages",
    "start-nodes",
    "starts",
    "threads",
    "pool",
    "deadline_ms",
    "deadline_from_submit",
    "patience",
];

fn build_dgreedy(spec: &SolverSpec) -> Result<Box<dyn Solver + Send>, SpecError> {
    spec.ensure_only("dgreedy", DGREEDY_KEYS)?;
    let solver = match spec.starts.as_ref().and_then(|s| s.first()) {
        Some(&v) => DGreedy::from_start(v),
        None => DGreedy::new(),
    };
    Ok(Box::new(solver))
}

fn build_rgreedy(spec: &SolverSpec) -> Result<Box<dyn Solver + Send>, SpecError> {
    spec.ensure_only("rgreedy", RGREEDY_KEYS)?;
    Ok(Box::new(RGreedy::new(RGreedyConfig::from_spec(spec))))
}

fn build_cbas(spec: &SolverSpec) -> Result<Box<dyn Solver + Send>, SpecError> {
    spec.ensure_only("cbas", CBAS_KEYS)?;
    spec.ensure_pool_has_threads()?;
    let cfg = CbasConfig::from_spec(spec);
    let pool = spec.pool.unwrap_or_default();
    Ok(Box::new(match spec.threads {
        Some(t) => Cbas::with_threads(cfg, t).pool_mode(pool),
        None => Cbas::new(cfg),
    }))
}

const CBASND_KEYS: &[&str] = &[
    "budget",
    "stages",
    "start-nodes",
    "starts",
    "threads",
    "pool",
    "rho",
    "smoothing",
    "backtrack",
    "deadline_ms",
    "deadline_from_submit",
    "patience",
];

fn build_cbasnd(spec: &SolverSpec) -> Result<Box<dyn Solver + Send>, SpecError> {
    spec.ensure_only("cbas-nd", CBASND_KEYS)?;
    spec.ensure_ce_ranges()?;
    spec.ensure_pool_has_threads()?;
    let cfg = CbasNdConfig::from_spec(spec);
    Ok(match spec.threads {
        Some(t) => Box::new(ParallelCbasNd::new(cfg, t).pool_mode(spec.pool.unwrap_or_default())),
        None => Box::new(CbasNd::new(cfg)),
    })
}

fn build_cbasnd_g(spec: &SolverSpec) -> Result<Box<dyn Solver + Send>, SpecError> {
    spec.ensure_only("cbas-nd-g", CBASND_KEYS)?;
    spec.ensure_ce_ranges()?;
    spec.ensure_pool_has_threads()?;
    let cfg = CbasNdConfig::from_spec(spec).gaussian();
    Ok(match spec.threads {
        Some(t) => Box::new(ParallelCbasNd::new(cfg, t).pool_mode(spec.pool.unwrap_or_default())),
        None => Box::new(CbasNd::new(cfg)),
    })
}

const DECOMP_KEYS: &[&str] = &[
    "budget",
    "stages",
    "start-nodes",
    "threads",
    "pool",
    "rho",
    "smoothing",
    "backtrack",
    "inner",
    "communities",
    "top",
    "deadline_ms",
    "deadline_from_submit",
    "patience",
];

fn build_decomp(spec: &SolverSpec) -> Result<Box<dyn Solver + Send>, SpecError> {
    spec.ensure_only("decomp", DECOMP_KEYS)?;
    Ok(Box::new(crate::Decomp::from_spec(spec)?))
}

fn build_parallel(spec: &SolverSpec) -> Result<Box<dyn Solver + Send>, SpecError> {
    spec.ensure_only("cbas-nd-par", CBASND_KEYS)?;
    spec.ensure_ce_ranges()?;
    let threads = spec.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
    });
    Ok(Box::new(
        ParallelCbasNd::new(CbasNdConfig::from_spec(spec), threads)
            .pool_mode(spec.pool.unwrap_or_default()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_core::WasoInstance;
    use waso_graph::{GraphBuilder, NodeId};

    fn figure1_instance() -> WasoInstance {
        let mut b = GraphBuilder::new();
        let v1 = b.add_node(8.0);
        let v2 = b.add_node(7.0);
        let v3 = b.add_node(6.0);
        let v4 = b.add_node(5.0);
        b.add_edge_symmetric(v1, v2, 1.0).unwrap();
        b.add_edge_symmetric(v2, v3, 2.0).unwrap();
        b.add_edge_symmetric(v3, v4, 4.0).unwrap();
        WasoInstance::new(b.build(), 3).unwrap()
    }

    #[test]
    fn every_builtin_entry_builds_and_solves() {
        let registry = SolverRegistry::builtin();
        assert!(registry.entries().len() >= 6);
        for entry in registry.entries() {
            let spec = match entry.name {
                "dgreedy" => SolverSpec::dgreedy(), // takes no budget knobs
                "rgreedy" => SolverSpec::rgreedy().budget(60), // single-stage
                name => SolverSpec::new(name).budget(60).stages(2),
            };
            let mut solver = registry.build(&spec).unwrap();
            let res = solver
                .solve_seeded(&figure1_instance(), 7)
                .unwrap_or_else(|e| panic!("{} failed: {e}", entry.name));
            assert_eq!(res.group.len(), 3, "{}", entry.name);
        }
    }

    #[test]
    fn aliases_canonicalize() {
        let registry = SolverRegistry::builtin();
        let spec = registry.parse("cbasnd:budget=100").unwrap();
        assert_eq!(spec.algorithm(), "cbas-nd");
        assert_eq!(spec.budget, Some(100));
        assert_eq!(registry.parse("greedy").unwrap().algorithm(), "dgreedy");
    }

    #[test]
    fn unknown_names_report_the_known_set() {
        let registry = SolverRegistry::builtin();
        match registry.parse("simulated-annealing") {
            Err(SpecError::UnknownAlgorithm { name, known }) => {
                assert_eq!(name, "simulated-annealing");
                assert!(known.contains(&"cbas-nd"));
            }
            other => panic!("expected UnknownAlgorithm, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_options_are_rejected_not_ignored() {
        let registry = SolverRegistry::builtin();
        // dgreedy has no sampling budget.
        let err = registry
            .build(&SolverSpec::dgreedy().budget(100))
            .err()
            .unwrap();
        assert_eq!(
            err,
            SpecError::UnsupportedOption {
                algorithm: "dgreedy",
                key: "budget"
            }
        );
        // cbas has no cross-entropy smoothing weight.
        let err = registry
            .build(&SolverSpec::cbas().smoothing(0.5))
            .err()
            .unwrap();
        assert_eq!(
            err,
            SpecError::UnsupportedOption {
                algorithm: "cbas",
                key: "smoothing"
            }
        );
    }

    #[test]
    fn cbas_threads_knob_is_bit_identical_to_serial() {
        // The registry-level pin of the engine's `Uniform × Pool` cell
        // (ROADMAP: "CBAS on the pooled backend").
        let registry = SolverRegistry::builtin();
        let serial = registry
            .build(&SolverSpec::cbas().budget(90).stages(3))
            .unwrap()
            .solve_seeded(&figure1_instance(), 5)
            .unwrap();
        for threads in [1usize, 2, 4, 8] {
            let pooled = registry
                .build(&SolverSpec::cbas().budget(90).stages(3).threads(threads))
                .unwrap()
                .solve_seeded(&figure1_instance(), 5)
                .unwrap();
            assert_eq!(pooled.group, serial.group, "threads={threads}");
            assert_eq!(pooled.stats.samples_drawn, serial.stats.samples_drawn);
        }
    }

    #[test]
    fn pool_knob_selects_private_pools_without_changing_answers() {
        let registry = SolverRegistry::builtin();
        let base = SolverSpec::cbas_nd().budget(80).stages(3).threads(2);
        let shared = registry.build(&base).unwrap();
        assert_eq!(shared.pool_threads(), Some(2));
        let private = registry
            .build(&base.clone().pool(crate::spec::PoolMode::Private))
            .unwrap();
        assert_eq!(
            private.pool_threads(),
            None,
            "private solves skip the shared pool"
        );
        let a = registry
            .build(&base)
            .unwrap()
            .solve_seeded(&figure1_instance(), 4)
            .unwrap();
        let b = registry
            .build(&base.clone().pool(crate::spec::PoolMode::Private))
            .unwrap()
            .solve_seeded(&figure1_instance(), 4)
            .unwrap();
        assert_eq!(a.group, b.group);
        // Solvers without the knob keep rejecting it.
        let err = registry
            .build(&SolverSpec::dgreedy().pool(crate::spec::PoolMode::Private))
            .err()
            .unwrap();
        assert_eq!(
            err,
            SpecError::UnsupportedOption {
                algorithm: "dgreedy",
                key: "pool"
            }
        );
        // pool= with no threads= would be silently inert — rejected
        // instead, for every builder that doesn't default its threads.
        for spec in [
            SolverSpec::cbas().pool(crate::spec::PoolMode::Private),
            SolverSpec::cbas_nd().pool(crate::spec::PoolMode::Shared),
            SolverSpec::cbas_nd_g().pool(crate::spec::PoolMode::Private),
        ] {
            assert_eq!(
                registry.build(&spec).err().unwrap(),
                SpecError::RequiresOption {
                    key: "pool",
                    needs: "threads"
                },
                "{spec}"
            );
        }
        // cbas-nd-par defaults its thread count, so bare pool= is fine.
        assert!(registry
            .build(&SolverSpec::new("cbas-nd-par").pool(crate::spec::PoolMode::Private))
            .is_ok());
    }

    #[test]
    fn out_of_range_ce_parameters_are_rejected_at_build_time() {
        // A user-supplied `cbas-nd:rho=0` must be a typed error, never a
        // panic inside a solve.
        let registry = SolverRegistry::builtin();
        for (spec, key) in [
            (SolverSpec::cbas_nd().rho(0.0), "rho"),
            (SolverSpec::cbas_nd().rho(1.5), "rho"),
            (SolverSpec::cbas_nd_g().rho(-0.2), "rho"),
            (SolverSpec::cbas_nd().smoothing(-0.1), "smoothing"),
            (SolverSpec::new("cbas-nd-par").smoothing(2.0), "smoothing"),
        ] {
            match registry.build(&spec) {
                Err(SpecError::OutOfRange { key: k, .. }) => assert_eq!(k, key),
                other => panic!("{spec}: expected OutOfRange, got {:?}", other.err()),
            }
        }
        // Boundary values stay legal: ρ = 1, w ∈ {0, 1}.
        assert!(registry
            .build(&SolverSpec::cbas_nd().rho(1.0).smoothing(0.0))
            .is_ok());
        assert!(registry
            .build(&SolverSpec::cbas_nd().smoothing(1.0))
            .is_ok());
    }

    #[test]
    fn threads_build_the_parallel_driver_bit_identically() {
        let registry = SolverRegistry::builtin();
        let serial = registry
            .build(&SolverSpec::cbas_nd().budget(80).stages(3))
            .unwrap()
            .solve_seeded(&figure1_instance(), 9)
            .unwrap();
        let par = registry
            .build(&SolverSpec::cbas_nd().budget(80).stages(3).threads(3))
            .unwrap()
            .solve_seeded(&figure1_instance(), 9)
            .unwrap();
        assert_eq!(serial.group, par.group);
    }

    #[test]
    fn anytime_knobs_are_registry_enforced_per_capability() {
        let registry = SolverRegistry::builtin();
        // Every anytime entry accepts them (and only anytime entries
        // list them).
        for entry in registry.entries() {
            let lists = entry.options.contains(&"deadline_ms");
            assert_eq!(
                lists, entry.capabilities.anytime,
                "{}: deadline_ms listing must match the anytime capability",
                entry.name
            );
            assert_eq!(
                entry.options.contains(&"patience"),
                entry.capabilities.anytime
            );
            assert_eq!(
                entry.options.contains(&"deadline_from_submit"),
                entry.capabilities.anytime,
                "{}: deadline_from_submit listing must match the anytime capability",
                entry.name
            );
        }
        assert!(registry
            .build(&SolverSpec::cbas().budget(50).deadline_ms(100).patience(2))
            .is_ok());
        // Non-anytime solvers reject them instead of silently ignoring.
        let err = registry
            .build(&SolverSpec::dgreedy().deadline_ms(5))
            .err()
            .unwrap();
        assert_eq!(
            err,
            SpecError::UnsupportedOption {
                algorithm: "dgreedy",
                key: "deadline_ms"
            }
        );
        let err = registry
            .build(&SolverSpec::rgreedy().budget(10).patience(1))
            .err()
            .unwrap();
        assert_eq!(
            err,
            SpecError::UnsupportedOption {
                algorithm: "rgreedy",
                key: "patience"
            }
        );
    }

    #[test]
    fn roster_is_in_paper_order() {
        let registry = SolverRegistry::builtin();
        let labels: Vec<&str> = registry.roster().iter().map(|e| e.label).collect();
        assert_eq!(labels, vec!["DGreedy", "CBAS", "RGreedy", "CBAS-ND"]);
    }

    #[test]
    fn help_text_mentions_every_canonical_name() {
        let registry = SolverRegistry::builtin();
        let help = registry.help_text();
        for name in registry.names() {
            assert!(help.contains(name), "help text misses {name}");
        }
        assert!(registry.name_list().contains("dgreedy|cbas"));
    }

    #[test]
    fn pinned_starts_flow_through_specs() {
        let registry = SolverRegistry::builtin();
        let spec = SolverSpec::dgreedy().starts([NodeId(2)]);
        let res = registry
            .build(&spec)
            .unwrap()
            .solve_seeded(&figure1_instance(), 0)
            .unwrap();
        // Starting from v3 escapes the Figure-1 trap.
        assert_eq!(res.group.willingness(), 30.0);
    }
}

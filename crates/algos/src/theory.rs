//! The paper's analytical guarantees (Theorems 3–5), as executable
//! formulas.
//!
//! These power two things: the stage/budget heuristics of the solvers, and
//! the `theory` sanity tests that pin the reproduction to the paper's
//! claimed bounds (e.g. the approximation ratio approaches 1 as the
//! incumbent's budget grows).

/// Theorem 3: upper bound `½ ((d_i - c_b)/(d_b - c_b))^{N_b}` on the
/// probability that challenger `i`'s best sample beats the incumbent's.
/// Returns 0 when `d_i ≤ c_b` (the challenger cannot win at all).
pub fn challenger_win_bound(d_i: f64, c_b: f64, d_b: f64, n_b: u64) -> f64 {
    assert!(d_b > c_b, "incumbent must have positive spread");
    let num = d_i - c_b;
    if num <= 0.0 {
        return 0.0;
    }
    let ratio = (num / (d_b - c_b)).min(1.0);
    0.5 * ratio.powf(n_b as f64)
}

/// Theorem 4: lower bound on the probability `P_b` that the empirically
/// best start node is truly the best one:
/// `P_b ≥ 1 - ½(m-1) α^{T/(rm)}`.
pub fn correct_selection_bound(m: usize, t: u64, r: u32, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "alpha outside [0,1]");
    if m <= 1 {
        return 1.0;
    }
    let exponent = t as f64 / (r.max(1) as f64 * m as f64);
    1.0 - 0.5 * (m as f64 - 1.0) * alpha.powf(exponent)
}

/// Theorem 5: the expected-quality ratio
/// `E[Q]/Q* ≥ N_b (1/(N_b+1))^{(N_b+1)/N_b}` (scores normalized to
/// `[c_b, d_b] = [0, 1]`).
pub fn expected_quality_ratio(n_b: f64) -> f64 {
    assert!(n_b >= 1.0, "needs at least one sample at the incumbent");
    n_b * (1.0 / (n_b + 1.0)).powf((n_b + 1.0) / n_b)
}

/// Theorem 5's closed form for the incumbent budget after `r` stages:
/// `N_b = (4 + m(r-1)) / (4rm) · T`.
pub fn incumbent_budget_after_stages(m: usize, r: u32, t: u64) -> f64 {
    assert!(m >= 1 && r >= 1);
    (4.0 + m as f64 * (r as f64 - 1.0)) / (4.0 * r as f64 * m as f64) * t as f64
}

/// The top-ρ percentile maximizing the Theorem-5 bound:
/// `ρ* = 1 - (N_b + 1)^{-1/N_b}`.
pub fn optimal_rho(n_b: f64) -> f64 {
    assert!(n_b >= 1.0);
    1.0 - (n_b + 1.0).powf(-1.0 / n_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn win_bound_basics() {
        // Equal spread: bound is exactly 1/2 for d_i = d_b.
        assert!((challenger_win_bound(10.0, 0.0, 10.0, 1) - 0.5).abs() < 1e-12);
        // Dominated challenger.
        assert_eq!(challenger_win_bound(-1.0, 0.0, 10.0, 5), 0.0);
        // Shrinks geometrically in N_b.
        let b1 = challenger_win_bound(5.0, 0.0, 10.0, 1);
        let b2 = challenger_win_bound(5.0, 0.0, 10.0, 2);
        assert!((b1 - 0.25).abs() < 1e-12);
        assert!((b2 - 0.125).abs() < 1e-12);
    }

    #[test]
    fn correct_selection_improves_with_budget() {
        let small = correct_selection_bound(10, 100, 5, 0.99);
        let large = correct_selection_bound(10, 10_000, 5, 0.99);
        assert!(large > small);
        assert_eq!(correct_selection_bound(1, 10, 1, 0.9), 1.0);
        // Theorem 4's bound may be vacuous (negative) for tiny budgets —
        // it is a lower bound, not a probability estimate.
        assert!(correct_selection_bound(1000, 10, 5, 0.999) < 0.0);
    }

    #[test]
    fn quality_ratio_reference_values() {
        // N_b = 1: 1 · (1/2)² = 0.25.
        assert!((expected_quality_ratio(1.0) - 0.25).abs() < 1e-12);
        // N_b = 9: 9 · (1/10)^{10/9} ≈ 0.698.
        let v = expected_quality_ratio(9.0);
        assert!((v - 9.0 * 0.1f64.powf(10.0 / 9.0)).abs() < 1e-12);
        assert!(v > 0.6 && v < 0.75, "got {v}");
    }

    #[test]
    fn quality_ratio_approaches_one() {
        let big = expected_quality_ratio(10_000.0);
        assert!(big > 0.99, "got {big}");
    }

    #[test]
    fn incumbent_budget_formula() {
        // r = 1: N_b = 4/(4m)·T = T/m (everything uniform, one stage).
        assert!((incumbent_budget_after_stages(10, 1, 100) - 10.0).abs() < 1e-12);
        // Large r: approaches T/4 + ... dominated by T/(4r) + T/4? For
        // m=4, r=2, T=80: (4 + 4)/(32)·80 = 20.
        assert!((incumbent_budget_after_stages(4, 2, 80) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_rho_matches_maximizer() {
        // Verify ρ* maximizes (1-ρ)(1-(1-ρ)^Nb) by a grid scan.
        for n_b in [1.0, 5.0, 25.0] {
            let rho_star = optimal_rho(n_b);
            let f = |rho: f64| (1.0 - rho) * (1.0 - (1.0 - rho).powf(n_b));
            let best_grid = (1..1000)
                .map(|i| f(i as f64 / 1000.0))
                .fold(f64::MIN, f64::max);
            assert!(
                f(rho_star) >= best_grid - 1e-6,
                "N_b={n_b}: f(ρ*)={} < grid best {best_grid}",
                f(rho_star)
            );
        }
    }

    proptest! {
        #[test]
        fn quality_ratio_is_monotone(a in 1.0..500.0f64, b in 1.0..500.0f64) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(expected_quality_ratio(lo) <= expected_quality_ratio(hi) + 1e-12);
        }

        #[test]
        fn quality_ratio_is_a_ratio(n in 1.0..1e6f64) {
            let v = expected_quality_ratio(n);
            prop_assert!((0.0..=1.0).contains(&v));
        }

        #[test]
        fn win_bound_decreases_in_budget(
            d_i in 0.1..0.9f64,
            n1 in 1u64..50,
            n2 in 51u64..200,
        ) {
            // Normalized incumbent [0,1].
            let b1 = challenger_win_bound(d_i, 0.0, 1.0, n1);
            let b2 = challenger_win_bound(d_i, 0.0, 1.0, n2);
            prop_assert!(b2 <= b1);
        }
    }
}

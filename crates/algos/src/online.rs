//! Online replanning after invitation responses (§4.4.1).
//!
//! Invitations go out; some people confirm, some decline. The paper's
//! extension "regards those confirmed attendees as the initial solution in
//! the second phase and removes the nodes that cannot attend from G" —
//! start-node selection is *not* re-run, which is what makes the online
//! step fast. [`OnlinePlanner`] wraps that loop: it keeps the current
//! recommendation, records confirmations/declines, and replans with the
//! confirmed set seeded and the declined set blocked.

use waso_core::{Group, WasoInstance};
use waso_graph::{BitSet, DeltaError, GraphDelta, NodeId};

use crate::cbasnd::{CbasNd, CbasNdConfig};
use crate::{SolveError, SolveResult, Solver};

/// Stateful planner for the invite → respond → replan loop.
///
/// ```
/// use waso_algos::{CbasNdConfig, OnlinePlanner};
/// use waso_core::WasoInstance;
/// use waso_graph::{GraphBuilder, NodeId};
///
/// // A 5-person clique (declining anyone keeps the rest connected);
/// // plan a group of 3.
/// let mut b = GraphBuilder::new();
/// let ids: Vec<NodeId> = (0..5).map(|i| b.add_node(1.0 + i as f64)).collect();
/// for (i, &u) in ids.iter().enumerate() {
///     for &v in &ids[i + 1..] {
///         b.add_edge_symmetric(u, v, 0.5).unwrap();
///     }
/// }
/// let instance = WasoInstance::new(b.build(), 3).unwrap();
///
/// let mut planner = OnlinePlanner::new(instance, CbasNdConfig::fast(), 7).unwrap();
/// let first_pick = planner.current().nodes()[0];
/// let replanned = planner.decline(&[first_pick]).unwrap();
/// assert!(!replanned.contains(first_pick));
/// assert_eq!(replanned.len(), 3);
/// ```
#[derive(Debug)]
pub struct OnlinePlanner {
    instance: WasoInstance,
    config: CbasNdConfig,
    seed: u64,
    replans: u64,
    confirmed: Vec<NodeId>,
    declined: BitSet,
    current: Group,
}

/// Errors from the online workflow.
#[derive(Debug, PartialEq)]
pub enum OnlineError {
    /// Underlying solver failure (e.g. no feasible completion remains).
    Solve(SolveError),
    /// A response referenced a node outside the graph.
    Unknown(u32),
    /// A node both confirmed and declined, or declined after confirming.
    Conflict(u32),
    /// More confirmations than the group size `k`.
    TooManyConfirmed,
    /// A [`GraphDelta`] could not be applied to the planner's graph.
    Delta(DeltaError),
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::Solve(e) => write!(f, "replanning failed: {e}"),
            OnlineError::Unknown(v) => write!(f, "response from unknown node v{v}"),
            OnlineError::Conflict(v) => write!(f, "conflicting responses from v{v}"),
            OnlineError::TooManyConfirmed => write!(f, "more confirmations than group slots"),
            OnlineError::Delta(e) => write!(f, "graph delta rejected: {e}"),
        }
    }
}

impl std::error::Error for OnlineError {}

impl From<SolveError> for OnlineError {
    fn from(e: SolveError) -> Self {
        OnlineError::Solve(e)
    }
}

impl From<DeltaError> for OnlineError {
    fn from(e: DeltaError) -> Self {
        OnlineError::Delta(e)
    }
}

impl OnlinePlanner {
    /// Plans the initial group.
    pub fn new(
        instance: WasoInstance,
        config: CbasNdConfig,
        seed: u64,
    ) -> Result<Self, OnlineError> {
        let n = instance.graph().num_nodes();
        let mut solver = CbasNd::new(config.clone());
        let initial = solver.solve_seeded(&instance, seed)?;
        Ok(Self {
            declined: BitSet::new(n),
            confirmed: Vec::new(),
            current: initial.group,
            replans: 0,
            instance,
            config,
            seed,
        })
    }

    /// Plans the initial group from a CBAS-ND [`crate::SolverSpec`] (the
    /// replanning engine is always CBAS-ND — the only solver whose
    /// partial-solution growth keeps confirmed attendees, §4.4.1).
    pub fn from_spec(
        instance: WasoInstance,
        spec: &crate::SolverSpec,
        seed: u64,
    ) -> Result<Self, OnlineError> {
        Self::new(instance, CbasNdConfig::from_spec(spec), seed)
    }

    /// The current recommendation.
    pub fn current(&self) -> &Group {
        &self.current
    }

    /// Confirmed attendees so far.
    pub fn confirmed(&self) -> &[NodeId] {
        &self.confirmed
    }

    /// Number of replanning rounds performed.
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// Records confirmations. Confirming is cheap — no replan needed, the
    /// attendee was already in the plan. Unknown nodes,
    /// confirm-after-decline conflicts and over-confirmation beyond `k`
    /// are rejected **before** any state changes: an erroring `confirm`
    /// leaves the planner exactly as it was, so later replans are not
    /// poisoned by a half-applied response batch.
    pub fn confirm(&mut self, nodes: &[NodeId]) -> Result<(), OnlineError> {
        let n = self.instance.graph().num_nodes() as u32;
        let mut fresh: Vec<NodeId> = Vec::new();
        for &v in nodes {
            if v.0 >= n {
                return Err(OnlineError::Unknown(v.0));
            }
            if self.declined.contains(v.index()) {
                return Err(OnlineError::Conflict(v.0));
            }
            if !self.confirmed.contains(&v) && !fresh.contains(&v) {
                fresh.push(v);
            }
        }
        if self.confirmed.len() + fresh.len() > self.instance.k() {
            return Err(OnlineError::TooManyConfirmed);
        }
        self.confirmed.extend(fresh);
        Ok(())
    }

    /// Records declines and replans around them: the confirmed set seeds
    /// every sample, declined nodes are blocked, and phase 1 (start-node
    /// selection) is skipped entirely per §4.4.1. Returns the new
    /// recommendation.
    ///
    /// Transactional like [`OnlinePlanner::confirm`]: on *any* error —
    /// validation or a failed replan (e.g. the declines leave no feasible
    /// completion) — the planner's state is exactly what it was before
    /// the call, so the host can surface the problem and keep planning.
    pub fn decline(&mut self, nodes: &[NodeId]) -> Result<&Group, OnlineError> {
        let n = self.instance.graph().num_nodes() as u32;
        for &v in nodes {
            if v.0 >= n {
                return Err(OnlineError::Unknown(v.0));
            }
            if self.confirmed.contains(&v) {
                return Err(OnlineError::Conflict(v.0));
            }
        }
        let mut declined = self.declined.clone();
        for &v in nodes {
            declined.insert(v.index());
        }

        let mut config = self.config.clone();
        config.base.blocked = Some(declined.clone());
        let mut solver = CbasNd::new(config);
        let seed = self.seed.wrapping_add(self.replans + 1);

        let result: Result<SolveResult, SolveError> = if self.confirmed.is_empty() {
            // Nothing confirmed yet: an ordinary solve with blocking.
            solver.solve_seeded(&self.instance, seed)
        } else {
            solver.solve_with_seeds(&self.instance, &self.confirmed.clone(), seed)
        };
        // Commit only on success.
        self.current = result?.group;
        self.declined = declined;
        self.replans += 1;
        Ok(&self.current)
    }

    /// Applies a [`GraphDelta`] (a score update or an edge change learned
    /// mid-campaign) and replans **from the current plan**: the old
    /// recommendation warm-starts the solver as the incumbent to beat,
    /// the confirmed set still seeds every sample, and declined nodes
    /// stay blocked. Node identity never changes, so confirmations and
    /// declines carry over verbatim.
    ///
    /// Transactional like [`OnlinePlanner::decline`]: a rejected delta or
    /// a failed replan leaves the planner — graph included — exactly as
    /// it was. Returns the new recommendation.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<&Group, OnlineError> {
        let graph = delta.apply(self.instance.graph())?;
        let instance = if self.instance.requires_connectivity() {
            WasoInstance::new(graph, self.instance.k())
        } else {
            WasoInstance::without_connectivity(graph, self.instance.k())
        }
        .map_err(|e| OnlineError::Solve(SolveError::Invalid(e)))?;

        let mut config = self.config.clone();
        config.base.blocked = Some(self.declined.clone());
        let mut solver = CbasNd::new(config);
        // The pre-delta plan is a *hint*: if the delta kept it feasible
        // it becomes the incumbent to beat, otherwise it is dropped (the
        // engine re-validates it against the delta'd instance).
        if let Ok(incumbent) = Group::new(&instance, self.current.nodes().to_vec()) {
            solver.warm_start(&incumbent);
        }
        let seed = self.seed.wrapping_add(self.replans + 1);

        let result: Result<SolveResult, SolveError> = if self.confirmed.is_empty() {
            solver.solve_seeded(&instance, seed)
        } else {
            solver.solve_with_seeds(&instance, &self.confirmed.clone(), seed)
        };
        // Commit only on success.
        self.current = result?.group;
        self.instance = instance;
        self.replans += 1;
        Ok(&self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waso_graph::{generate, ScoreModel};

    fn instance(n: usize, k: usize, seed: u64) -> WasoInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = generate::barabasi_albert(n, 3, &mut rng);
        let g = ScoreModel::paper_default().realize(&topo, &mut rng);
        WasoInstance::new(g, k).unwrap()
    }

    fn fast_config() -> CbasNdConfig {
        let mut c = CbasNdConfig::with_budget(80);
        c.base.stages = Some(3);
        c
    }

    #[test]
    fn initial_plan_is_valid() {
        let planner = OnlinePlanner::new(instance(40, 5, 1), fast_config(), 7).unwrap();
        assert_eq!(planner.current().len(), 5);
        assert_eq!(planner.replans(), 0);
    }

    #[test]
    fn declines_remove_nodes_from_future_plans() {
        let mut planner = OnlinePlanner::new(instance(40, 5, 2), fast_config(), 3).unwrap();
        let victim = planner.current().nodes()[0];
        let new_plan = planner.decline(&[victim]).unwrap();
        assert!(!new_plan.contains(victim));
        assert_eq!(new_plan.len(), 5);
        assert_eq!(planner.replans(), 1);
    }

    #[test]
    fn confirmed_attendees_survive_replans() {
        let mut planner = OnlinePlanner::new(instance(40, 5, 4), fast_config(), 5).unwrap();
        let members = planner.current().nodes().to_vec();
        planner.confirm(&members[..2]).unwrap();
        let outsider = planner.current().nodes()[4];
        let new_plan = planner.decline(&[outsider]).unwrap();
        assert!(new_plan.contains(members[0]));
        assert!(new_plan.contains(members[1]));
        assert!(!new_plan.contains(outsider));
    }

    #[test]
    fn conflicting_responses_are_rejected() {
        let mut planner = OnlinePlanner::new(instance(40, 5, 6), fast_config(), 1).unwrap();
        let v = planner.current().nodes()[0];
        planner.confirm(&[v]).unwrap();
        assert_eq!(
            planner.decline(&[v]).unwrap_err(),
            OnlineError::Conflict(v.0)
        );

        let w = planner.current().nodes()[1];
        planner.decline(&[w]).unwrap();
        assert_eq!(
            planner.confirm(&[w]).unwrap_err(),
            OnlineError::Conflict(w.0)
        );
    }

    #[test]
    fn unknown_nodes_are_rejected() {
        let mut planner = OnlinePlanner::new(instance(30, 4, 7), fast_config(), 2).unwrap();
        assert_eq!(
            planner.confirm(&[NodeId(999)]).unwrap_err(),
            OnlineError::Unknown(999)
        );
        assert_eq!(
            planner.decline(&[NodeId(999)]).unwrap_err(),
            OnlineError::Unknown(999)
        );
    }

    #[test]
    fn over_confirmation_is_rejected() {
        let mut planner = OnlinePlanner::new(instance(30, 3, 8), fast_config(), 3).unwrap();
        let many: Vec<NodeId> = (0..4).map(NodeId).collect();
        // Some of these may not be in the current plan — confirming outside
        // the plan is allowed (the host can invite whoever they like), but
        // exceeding k is not.
        let res = planner.confirm(&many);
        assert_eq!(res.unwrap_err(), OnlineError::TooManyConfirmed);
    }

    /// The observable planner state, for no-mutation-on-error assertions.
    fn snapshot(p: &OnlinePlanner) -> (Vec<NodeId>, Group, u64) {
        (p.confirmed().to_vec(), p.current().clone(), p.replans())
    }

    #[test]
    fn erroring_confirm_leaves_state_untouched() {
        let mut planner = OnlinePlanner::new(instance(30, 3, 11), fast_config(), 5).unwrap();
        let member = planner.current().nodes()[0];
        planner.confirm(&[member]).unwrap();
        let before = snapshot(&planner);

        // Unknown node.
        assert_eq!(
            planner.confirm(&[NodeId(999)]).unwrap_err(),
            OnlineError::Unknown(999)
        );
        assert_eq!(snapshot(&planner), before);

        // Unknown node listed *after* valid ones — the valid prefix must
        // not be half-applied.
        let fresh = planner.current().nodes()[1];
        assert_eq!(
            planner.confirm(&[fresh, NodeId(999)]).unwrap_err(),
            OnlineError::Unknown(999)
        );
        assert_eq!(snapshot(&planner), before);

        // Confirm-after-decline conflict.
        let outsider = planner.current().nodes()[2];
        planner.decline(&[outsider]).unwrap();
        let before = snapshot(&planner);
        assert_eq!(
            planner.confirm(&[fresh, outsider]).unwrap_err(),
            OnlineError::Conflict(outsider.0)
        );
        assert_eq!(snapshot(&planner), before);

        // Over-confirmation: the k-2 new nodes that fit must not stick
        // when the batch as a whole exceeds k.
        let many: Vec<NodeId> = (0..4).map(NodeId).collect();
        assert_eq!(
            planner.confirm(&many).unwrap_err(),
            OnlineError::TooManyConfirmed
        );
        assert_eq!(snapshot(&planner), before);

        // The planner is still fully serviceable afterwards.
        planner.confirm(&[fresh]).unwrap();
        assert_eq!(planner.confirmed().len(), 2);
    }

    #[test]
    fn erroring_decline_leaves_state_untouched() {
        let mut planner = OnlinePlanner::new(instance(30, 4, 12), fast_config(), 6).unwrap();
        let confirmed = planner.current().nodes()[0];
        planner.confirm(&[confirmed]).unwrap();
        let before = snapshot(&planner);

        assert_eq!(
            planner.decline(&[NodeId(999)]).unwrap_err(),
            OnlineError::Unknown(999)
        );
        assert_eq!(snapshot(&planner), before);

        assert_eq!(
            planner.decline(&[confirmed]).unwrap_err(),
            OnlineError::Conflict(confirmed.0)
        );
        assert_eq!(snapshot(&planner), before);
    }

    #[test]
    fn infeasible_replan_rolls_back_the_declines() {
        // Path 0-1-2 with k = 3: declining the middle node leaves no
        // feasible group; the planner must report the failure and stay on
        // its previous plan, with the decline un-applied.
        let mut b = waso_graph::GraphBuilder::new();
        let ids: Vec<NodeId> = (0..3).map(|i| b.add_node(1.0 + i as f64)).collect();
        b.add_edge_symmetric(ids[0], ids[1], 1.0).unwrap();
        b.add_edge_symmetric(ids[1], ids[2], 1.0).unwrap();
        let inst = WasoInstance::new(b.build(), 3).unwrap();
        let mut planner = OnlinePlanner::new(inst, fast_config(), 7).unwrap();
        let before = snapshot(&planner);

        assert_eq!(
            planner.decline(&[ids[1]]).unwrap_err(),
            OnlineError::Solve(SolveError::NoFeasibleGroup)
        );
        assert_eq!(snapshot(&planner), before, "failed replan mutated state");

        // The un-applied decline is really gone: the same seed replays to
        // the same (full) plan, and the node can still be confirmed.
        planner.confirm(&[ids[1]]).unwrap();
    }

    #[test]
    fn deltas_replan_and_preserve_responses() {
        let mut planner = OnlinePlanner::new(instance(40, 5, 13), fast_config(), 8).unwrap();
        let members = planner.current().nodes().to_vec();
        planner.confirm(&members[..2]).unwrap();
        let outsider = members[4];
        planner.decline(&[outsider]).unwrap();

        // Crater a current member's interest: the replan keeps the
        // confirmed seeds and the declined block, and its willingness is
        // computed on the *delta'd* graph.
        let delta = GraphDelta::SetInterest {
            v: members[0],
            interest: 0.0,
        };
        let plan = planner.apply(&delta).unwrap().clone();
        assert_eq!(plan.len(), 5);
        assert!(plan.contains(members[0]) && plan.contains(members[1]));
        assert!(!plan.contains(outsider));
        assert_eq!(planner.replans(), 2);
        let recomputed = Group::new(&planner.instance, plan.nodes().to_vec()).unwrap();
        assert_eq!(
            plan.willingness().to_bits(),
            recomputed.willingness().to_bits()
        );
    }

    #[test]
    fn rejected_delta_leaves_state_untouched() {
        let mut planner = OnlinePlanner::new(instance(30, 4, 14), fast_config(), 9).unwrap();
        let before = snapshot(&planner);
        let bad = GraphDelta::SetInterest {
            v: NodeId(999),
            interest: 1.0,
        };
        assert!(matches!(
            planner.apply(&bad).unwrap_err(),
            OnlineError::Delta(DeltaError::UnknownNode(999))
        ));
        assert_eq!(snapshot(&planner), before);
        // The graph really is untouched: a follow-up decline still works
        // against the original instance.
        let victim = planner.current().nodes()[0];
        planner.decline(&[victim]).unwrap();
    }

    #[test]
    fn delta_replans_are_deterministic() {
        let make = || {
            let mut p = OnlinePlanner::new(instance(40, 5, 15), fast_config(), 10).unwrap();
            let v = p.current().nodes()[0];
            p.apply(&GraphDelta::SetInterest { v, interest: 0.01 })
                .unwrap()
                .clone()
        };
        let (a, b) = (make(), make());
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(a.willingness().to_bits(), b.willingness().to_bits());
    }

    #[test]
    fn successive_declines_accumulate() {
        let mut planner = OnlinePlanner::new(instance(50, 5, 9), fast_config(), 4).unwrap();
        let a = planner.current().nodes()[0];
        planner.decline(&[a]).unwrap();
        let b = planner.current().nodes()[0];
        planner.decline(&[b]).unwrap();
        let plan = planner.current();
        assert!(!plan.contains(a));
        assert!(!plan.contains(b));
        assert_eq!(planner.replans(), 2);
    }
}

//! `SolverSpec` — one serializable description of *which* solver with
//! *what* settings.
//!
//! Every way of obtaining a solver in this workspace goes through a spec:
//! the `waso-solve` CLI parses its `--algorithm` string into one, the
//! figure drivers of `waso-bench` build their rosters from them, and the
//! `WasoSession` facade accepts them directly. A spec is both
//! *serializable* (a compact `name:key=value,...` string with a loss-free
//! round-trip through [`SolverSpec::parse`] / `Display`) and
//! *programmatic* (a builder: `SolverSpec::cbas_nd().budget(2000)`).
//!
//! The string grammar:
//!
//! ```text
//! spec       := name [ ":" option ("," option)* ]
//! option     := key "=" value
//! key        := budget | stages | start-nodes | starts | threads
//!             | pool | require | rho | smoothing | backtrack | cap
//!             | inner | communities | top
//!             | deadline_ms | deadline_from_submit | patience
//! value      := integer | float | "shared" | "private"
//!             | name                                 (solver name for inner)
//!             | "auto"                               (communities)
//!             | id ("+" id)*                        (ids for starts/require)
//! ```
//!
//! Examples: `dgreedy`, `cbas-nd:budget=2000,stages=10`,
//! `cbas-nd:threads=8`, `cbas-nd:threads=8,pool=private`,
//! `cbas-nd:require=3+17`, `exact:cap=1000000`,
//! `cbas-nd:budget=100000,stages=50,deadline_ms=250,patience=5`,
//! `decomp:inner=cbas-nd,communities=auto,top=4`.
//!
//! Which names exist, and which options each solver honours, is owned by
//! the [`crate::registry::SolverRegistry`]; parsing here is purely
//! syntactic so specs can be constructed, stored and shipped without a
//! registry in scope.

use std::fmt;

use waso_graph::NodeId;

/// Default sampling budget `T` when a spec does not set one (the
/// `waso-solve` CLI default since the first release).
pub const DEFAULT_BUDGET: u64 = 2000;

/// Where a parallel solver's workers come from (`pool=shared|private`).
/// A scheduling knob only: results are bit-identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolMode {
    /// Route the solve through the session's [`crate::SharedPool`] (the
    /// default): worker threads are spawned once and shared by every
    /// pooled solve — and, with an attached pool, by every session of
    /// the process.
    #[default]
    Shared,
    /// Spawn a private worker pool for this solve alone and tear it down
    /// after — the pre-SharedPool behaviour, kept as the baseline the
    /// `--figure pool` benchmark compares against (and as an isolation
    /// hatch: a private solve never queues behind other jobs).
    Private,
}

impl fmt::Display for PoolMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolMode::Shared => write!(f, "shared"),
            PoolMode::Private => write!(f, "private"),
        }
    }
}

/// What a solver can honour. Declared per registry entry and per solver
/// ([`crate::Solver::capabilities`]); the session facade uses these to
/// *reject* spec/solver combinations that cannot be honoured instead of
/// silently ignoring a constraint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Capabilities {
    /// Can guarantee a set of required attendees appears in the answer
    /// (§4.4.1 / the §6 future-work item).
    pub required_attendees: bool,
    /// Honours `threads=N` by fanning sampling out across workers.
    pub parallel: bool,
    /// Proves optimality when run to completion.
    pub exact: bool,
    /// Consumes the seed — reruns with different seeds explore differently.
    pub randomized: bool,
    /// Honours a warm-start incumbent ([`crate::Solver::warm_start`]).
    pub warm_start: bool,
    /// Anytime: maintains a feasible incumbent throughout the solve and
    /// honours stage-granular control — `deadline_ms=`, `patience=`,
    /// cancellation, and incumbent streaming through
    /// [`crate::Solver::solve_controlled`] / [`crate::JobControl`].
    /// Solvers without this flag reject the `deadline_ms`/`patience` spec
    /// options at build time.
    pub anytime: bool,
}

/// Why a spec string or a spec/solver combination was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec string was empty.
    Empty,
    /// No registered solver under this name ([`crate::SolverRegistry`]
    /// lookup failure). Carries the known names for the error message.
    UnknownAlgorithm {
        /// The name that failed to resolve.
        name: String,
        /// The registered names, for the message.
        known: Vec<&'static str>,
    },
    /// An option key that no solver understands.
    UnknownOption(String),
    /// An option value that did not parse.
    BadValue {
        /// The offending key.
        key: &'static str,
        /// The offending raw value.
        value: String,
    },
    /// An option that this particular solver does not honour. Surfaced
    /// instead of silently ignoring the setting.
    UnsupportedOption {
        /// The solver that rejected the option.
        algorithm: &'static str,
        /// The rejected key.
        key: &'static str,
    },
    /// An option that is only meaningful in combination with another
    /// option the spec did not set (`pool=` without `threads=`).
    /// Rejected — not silently ignored — like every other unusable knob.
    RequiresOption {
        /// The option that was set.
        key: &'static str,
        /// The option it needs.
        needs: &'static str,
    },
    /// An option value outside its valid range (e.g. `rho=0`). Rejected
    /// at build time so a malformed spec string can never reach — let
    /// alone panic — a running solver.
    OutOfRange {
        /// The offending key.
        key: &'static str,
        /// The rejected value, rendered.
        value: String,
        /// The accepted range, rendered (`"in (0, 1]"`).
        expected: &'static str,
    },
    /// A syntactically malformed option (`missing '='`).
    Malformed(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Empty => write!(f, "empty solver spec"),
            SpecError::UnknownAlgorithm { name, known } => {
                write!(
                    f,
                    "unknown algorithm '{name}' (known: {})",
                    known.join(", ")
                )
            }
            SpecError::UnknownOption(k) => write!(f, "unknown solver option '{k}'"),
            SpecError::BadValue { key, value } => {
                write!(f, "bad value '{value}' for solver option '{key}'")
            }
            SpecError::UnsupportedOption { algorithm, key } => {
                write!(f, "solver '{algorithm}' does not honour option '{key}'")
            }
            SpecError::RequiresOption { key, needs } => {
                write!(f, "solver option '{key}' requires '{needs}' to be set")
            }
            SpecError::OutOfRange {
                key,
                value,
                expected,
            } => {
                write!(
                    f,
                    "solver option {key}={value} is invalid (must be {expected})"
                )
            }
            SpecError::Malformed(opt) => {
                write!(f, "malformed solver option '{opt}' (expected key=value)")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A complete, serializable description of a solver configuration.
///
/// ```
/// use waso_algos::SolverSpec;
///
/// let spec = SolverSpec::cbas_nd().budget(500).stages(5);
/// assert_eq!(spec.to_string(), "cbas-nd:budget=500,stages=5");
/// assert_eq!(SolverSpec::parse("cbas-nd:budget=500,stages=5").unwrap(), spec);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SolverSpec {
    algorithm: String,
    /// Sampling budget `T` (randomized solvers).
    pub budget: Option<u64>,
    /// Stage count `r` (staged solvers); `None` derives it per the paper.
    pub stages: Option<u32>,
    /// Number of start nodes `m`; `None` uses the paper's `⌈n/k⌉`.
    pub start_nodes: Option<usize>,
    /// Pinned start nodes (the user-study "-i" mode); overrides phase 1.
    pub starts: Option<Vec<NodeId>>,
    /// Worker threads (parallel solvers).
    pub threads: Option<usize>,
    /// Worker provenance for pooled solves: the session's shared pool
    /// (default) or a private per-solve pool.
    pub pool: Option<PoolMode>,
    /// Attendees that must appear in the answer.
    pub required: Vec<NodeId>,
    /// Elite fraction ρ of the cross-entropy update (CBAS-ND).
    pub rho: Option<f64>,
    /// Smoothing weight `w` of the vector update (CBAS-ND).
    pub smoothing: Option<f64>,
    /// Backtracking threshold `z_t` of §4.4.2 (CBAS-ND).
    pub backtrack: Option<f64>,
    /// Search-tree expansion cap (exact branch-and-bound).
    pub cap: Option<u64>,
    /// Inner solver name for composite solvers (`decomp:inner=cbas-nd`).
    /// A bare solver name — the grammar has no nesting, so the inner
    /// solver inherits its knobs (budget share, stages, …) from this spec.
    pub inner: Option<String>,
    /// Community count for the decomposition solver: `Some(0)` (spelled
    /// `communities=auto`) lets label propagation decide, any other value
    /// coarsens the partition to at most that many communities.
    pub communities: Option<usize>,
    /// How many top-scored communities the decomposition solver solves.
    pub top: Option<usize>,
    /// Wall-clock deadline in milliseconds, measured from solve start:
    /// sampling stops (mid-chunk; the in-flight stage is abandoned) once
    /// it elapses and the current incumbent is returned with
    /// [`crate::Termination::Deadline`] (anytime solvers).
    pub deadline_ms: Option<u64>,
    /// Wall-clock deadline in milliseconds measured from **submission**
    /// rather than solve start, so time spent queued (behind a batch, a
    /// coordinator, or a serving tenant queue) counts against the SLA.
    /// The session facade arms it the moment `submit` accepts the job;
    /// for a plain blocking solve the two clocks coincide. Combines with
    /// `deadline_ms` by earliest-deadline-wins (anytime solvers).
    pub deadline_from_submit: Option<u64>,
    /// Early-stop patience: stop after this many consecutive
    /// non-improving stages, returning the incumbent as a
    /// [`crate::Termination::Completed`]-but-truncated result (anytime
    /// solvers).
    pub patience: Option<u32>,
}

impl SolverSpec {
    /// A spec for the named algorithm with every setting at its default.
    pub fn new(algorithm: impl Into<String>) -> Self {
        Self {
            algorithm: algorithm.into(),
            budget: None,
            stages: None,
            start_nodes: None,
            starts: None,
            threads: None,
            pool: None,
            required: Vec::new(),
            rho: None,
            smoothing: None,
            backtrack: None,
            cap: None,
            inner: None,
            communities: None,
            top: None,
            deadline_ms: None,
            deadline_from_submit: None,
            patience: None,
        }
    }

    /// The deterministic greedy baseline (§1, §3).
    pub fn dgreedy() -> Self {
        Self::new("dgreedy")
    }

    /// Randomized greedy (§4.1).
    pub fn rgreedy() -> Self {
        Self::new("rgreedy")
    }

    /// Budget-allocated random sampling (§3).
    pub fn cbas() -> Self {
        Self::new("cbas")
    }

    /// CBAS with neighbour differentiation (§4) — the paper's flagship.
    pub fn cbas_nd() -> Self {
        Self::new("cbas-nd")
    }

    /// CBAS-ND with the Gaussian allocation of Appendix A.
    pub fn cbas_nd_g() -> Self {
        Self::new("cbas-nd-g")
    }

    /// Exact branch-and-bound (the paper's CPLEX ground-truth role).
    pub fn exact() -> Self {
        Self::new("exact")
    }

    /// The algorithm name this spec asks for.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Renames the algorithm, keeping every option (used by the registry to
    /// canonicalize aliases).
    pub(crate) fn with_algorithm(mut self, name: &str) -> Self {
        self.algorithm = name.to_string();
        self
    }

    /// Sets the sampling budget `T`.
    pub fn budget(mut self, t: u64) -> Self {
        self.budget = Some(t);
        self
    }

    /// Sets the stage count `r`.
    pub fn stages(mut self, r: u32) -> Self {
        self.stages = Some(r);
        self
    }

    /// Sets the number of start nodes `m`.
    pub fn start_nodes(mut self, m: usize) -> Self {
        self.start_nodes = Some(m);
        self
    }

    /// Pins the start nodes.
    pub fn starts(mut self, starts: impl IntoIterator<Item = NodeId>) -> Self {
        self.starts = Some(starts.into_iter().collect());
        self
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = Some(t);
        self
    }

    /// Sets the pool mode (shared session pool vs private per-solve pool).
    pub fn pool(mut self, mode: PoolMode) -> Self {
        self.pool = Some(mode);
        self
    }

    /// Adds required attendees.
    pub fn require(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.required.extend(nodes);
        self
    }

    /// Sets the elite fraction ρ.
    pub fn rho(mut self, rho: f64) -> Self {
        self.rho = Some(rho);
        self
    }

    /// Sets the smoothing weight `w`.
    pub fn smoothing(mut self, w: f64) -> Self {
        self.smoothing = Some(w);
        self
    }

    /// Enables §4.4.2 backtracking with threshold `z_t`.
    pub fn backtrack(mut self, z_t: f64) -> Self {
        self.backtrack = Some(z_t);
        self
    }

    /// Sets the exact solver's expansion cap.
    pub fn cap(mut self, cap: u64) -> Self {
        self.cap = Some(cap);
        self
    }

    /// Sets the inner solver of a composite solver (`decomp`).
    pub fn inner(mut self, name: impl Into<String>) -> Self {
        self.inner = Some(name.into());
        self
    }

    /// Sets the decomposition community target (0 = `auto`).
    pub fn communities(mut self, c: usize) -> Self {
        self.communities = Some(c);
        self
    }

    /// Sets how many top-scored communities the decomposition solves.
    pub fn top(mut self, t: usize) -> Self {
        self.top = Some(t);
        self
    }

    /// Sets the wall-clock deadline (milliseconds from solve start).
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the submission-relative wall-clock deadline (milliseconds
    /// from `submit`; queue wait counts).
    pub fn deadline_from_submit(mut self, ms: u64) -> Self {
        self.deadline_from_submit = Some(ms);
        self
    }

    /// Sets the early-stop patience (consecutive non-improving stages).
    pub fn patience(mut self, stages: u32) -> Self {
        self.patience = Some(stages);
        self
    }

    /// The budget, or the workspace default.
    pub fn budget_or_default(&self) -> u64 {
        self.budget.unwrap_or(DEFAULT_BUDGET)
    }

    /// Parses the `name[:key=value,...]` grammar (see the module docs).
    ///
    /// Purely syntactic: any algorithm name is accepted here; resolving it
    /// against the registered solvers happens in
    /// [`crate::SolverRegistry::parse`].
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(SpecError::Empty);
        }
        let (name, opts) = match s.split_once(':') {
            Some((n, o)) => (n, Some(o)),
            None => (s, None),
        };
        if name.is_empty() {
            return Err(SpecError::Empty);
        }
        let mut spec = Self::new(name);
        if let Some(opts) = opts {
            for opt in opts.split(',').filter(|o| !o.is_empty()) {
                let (key, value) = opt
                    .split_once('=')
                    .ok_or_else(|| SpecError::Malformed(opt.to_string()))?;
                spec.set_option(key.trim(), value.trim())?;
            }
        }
        Ok(spec)
    }

    fn set_option(&mut self, key: &str, value: &str) -> Result<(), SpecError> {
        fn num<T: std::str::FromStr>(key: &'static str, v: &str) -> Result<T, SpecError> {
            v.parse().map_err(|_| SpecError::BadValue {
                key,
                value: v.to_string(),
            })
        }
        fn ids(key: &'static str, v: &str) -> Result<Vec<NodeId>, SpecError> {
            v.split('+')
                .map(|x| num::<u32>(key, x).map(NodeId))
                .collect()
        }
        match key {
            "budget" => self.budget = Some(num("budget", value)?),
            "stages" => self.stages = Some(num("stages", value)?),
            "start-nodes" => self.start_nodes = Some(num("start-nodes", value)?),
            "starts" => self.starts = Some(ids("starts", value)?),
            "threads" => self.threads = Some(num("threads", value)?),
            "pool" => {
                self.pool = Some(match value {
                    "shared" => PoolMode::Shared,
                    "private" => PoolMode::Private,
                    other => {
                        return Err(SpecError::BadValue {
                            key: "pool",
                            value: other.to_string(),
                        })
                    }
                })
            }
            "require" => self.required = ids("require", value)?,
            "rho" => self.rho = Some(num("rho", value)?),
            "smoothing" => self.smoothing = Some(num("smoothing", value)?),
            "backtrack" => self.backtrack = Some(num("backtrack", value)?),
            "cap" => self.cap = Some(num("cap", value)?),
            "inner" => {
                if value.is_empty() {
                    return Err(SpecError::BadValue {
                        key: "inner",
                        value: value.to_string(),
                    });
                }
                self.inner = Some(value.to_string());
            }
            "communities" => {
                self.communities = Some(if value == "auto" {
                    0
                } else {
                    num("communities", value)?
                })
            }
            "top" => self.top = Some(num("top", value)?),
            "deadline_ms" => self.deadline_ms = Some(num("deadline_ms", value)?),
            "deadline_from_submit" => {
                self.deadline_from_submit = Some(num("deadline_from_submit", value)?)
            }
            "patience" => self.patience = Some(num("patience", value)?),
            other => return Err(SpecError::UnknownOption(other.to_string())),
        }
        Ok(())
    }

    /// The `(key, set?)` table behind [`SolverSpec::ensure_only`] and
    /// `Display`, in canonical serialization order.
    fn set_keys(&self) -> Vec<&'static str> {
        let mut keys = Vec::new();
        if self.budget.is_some() {
            keys.push("budget");
        }
        if self.stages.is_some() {
            keys.push("stages");
        }
        if self.start_nodes.is_some() {
            keys.push("start-nodes");
        }
        if self.starts.is_some() {
            keys.push("starts");
        }
        if self.threads.is_some() {
            keys.push("threads");
        }
        if self.pool.is_some() {
            keys.push("pool");
        }
        if !self.required.is_empty() {
            keys.push("require");
        }
        if self.rho.is_some() {
            keys.push("rho");
        }
        if self.smoothing.is_some() {
            keys.push("smoothing");
        }
        if self.backtrack.is_some() {
            keys.push("backtrack");
        }
        if self.cap.is_some() {
            keys.push("cap");
        }
        if self.inner.is_some() {
            keys.push("inner");
        }
        if self.communities.is_some() {
            keys.push("communities");
        }
        if self.top.is_some() {
            keys.push("top");
        }
        if self.deadline_ms.is_some() {
            keys.push("deadline_ms");
        }
        if self.deadline_from_submit.is_some() {
            keys.push("deadline_from_submit");
        }
        if self.patience.is_some() {
            keys.push("patience");
        }
        keys
    }

    /// Rejects cross-entropy parameters outside their valid ranges —
    /// ρ ∈ (0, 1], smoothing `w` ∈ [0, 1] — at build time, so a bad spec
    /// string (`cbas-nd:rho=0`) is a typed error, never a panic inside a
    /// solve. The engine re-checks the same ranges as a backstop
    /// ([`crate::SolveError::BadParameter`]).
    pub(crate) fn ensure_ce_ranges(&self) -> Result<(), SpecError> {
        if let Some(rho) = self.rho {
            if !(rho > 0.0 && rho <= 1.0) {
                return Err(SpecError::OutOfRange {
                    key: "rho",
                    value: rho.to_string(),
                    expected: "in (0, 1]",
                });
            }
        }
        if let Some(w) = self.smoothing {
            if !(0.0..=1.0).contains(&w) {
                return Err(SpecError::OutOfRange {
                    key: "smoothing",
                    value: w.to_string(),
                    expected: "in [0, 1]",
                });
            }
        }
        Ok(())
    }

    /// Rejects a `pool=` setting on a spec with no `threads=`: without a
    /// worker count the built solver is serial and the knob would be
    /// silently inert, which this workspace never allows. (The
    /// `cbas-nd-par` builder defaults its thread count and skips this.)
    pub(crate) fn ensure_pool_has_threads(&self) -> Result<(), SpecError> {
        if self.pool.is_some() && self.threads.is_none() {
            return Err(SpecError::RequiresOption {
                key: "pool",
                needs: "threads",
            });
        }
        Ok(())
    }

    /// Rejects any set option that is not in `allowed` — the mechanism
    /// behind "reject instead of silently ignore". `require` is always
    /// allowed at the spec level: whether the *solver* honours it is
    /// enforced by [`crate::Solver::solve_with_required`] at solve time,
    /// so that the error can name the solver and the session can route
    /// around it.
    pub fn ensure_only(
        &self,
        algorithm: &'static str,
        allowed: &[&'static str],
    ) -> Result<(), SpecError> {
        for key in self.set_keys() {
            if key == "require" {
                continue;
            }
            if !allowed.contains(&key) {
                return Err(SpecError::UnsupportedOption { algorithm, key });
            }
        }
        Ok(())
    }
}

impl fmt::Display for SolverSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn ids(list: &[NodeId]) -> String {
            list.iter()
                .map(|v| v.0.to_string())
                .collect::<Vec<_>>()
                .join("+")
        }
        write!(f, "{}", self.algorithm)?;
        let mut sep = ':';
        let mut emit = |f: &mut fmt::Formatter<'_>, key: &str, value: String| {
            let r = write!(f, "{sep}{key}={value}");
            sep = ',';
            r
        };
        if let Some(t) = self.budget {
            emit(f, "budget", t.to_string())?;
        }
        if let Some(r) = self.stages {
            emit(f, "stages", r.to_string())?;
        }
        if let Some(m) = self.start_nodes {
            emit(f, "start-nodes", m.to_string())?;
        }
        if let Some(s) = &self.starts {
            emit(f, "starts", ids(s))?;
        }
        if let Some(t) = self.threads {
            emit(f, "threads", t.to_string())?;
        }
        if let Some(p) = self.pool {
            emit(f, "pool", p.to_string())?;
        }
        if !self.required.is_empty() {
            emit(f, "require", ids(&self.required))?;
        }
        if let Some(x) = self.rho {
            emit(f, "rho", x.to_string())?;
        }
        if let Some(x) = self.smoothing {
            emit(f, "smoothing", x.to_string())?;
        }
        if let Some(x) = self.backtrack {
            emit(f, "backtrack", x.to_string())?;
        }
        if let Some(c) = self.cap {
            emit(f, "cap", c.to_string())?;
        }
        if let Some(name) = &self.inner {
            emit(f, "inner", name.clone())?;
        }
        if let Some(c) = self.communities {
            let rendered = if c == 0 {
                "auto".to_string()
            } else {
                c.to_string()
            };
            emit(f, "communities", rendered)?;
        }
        if let Some(t) = self.top {
            emit(f, "top", t.to_string())?;
        }
        if let Some(ms) = self.deadline_ms {
            emit(f, "deadline_ms", ms.to_string())?;
        }
        if let Some(ms) = self.deadline_from_submit {
            emit(f, "deadline_from_submit", ms.to_string())?;
        }
        if let Some(p) = self.patience {
            emit(f, "patience", p.to_string())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_name_round_trips() {
        let spec = SolverSpec::parse("dgreedy").unwrap();
        assert_eq!(spec.algorithm(), "dgreedy");
        assert_eq!(spec.to_string(), "dgreedy");
        assert_eq!(SolverSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn every_option_round_trips() {
        let spec = SolverSpec::cbas_nd()
            .budget(500)
            .stages(5)
            .start_nodes(16)
            .starts([NodeId(3), NodeId(9)])
            .threads(4)
            .pool(PoolMode::Private)
            .require([NodeId(1), NodeId(2)])
            .rho(0.3)
            .smoothing(0.9)
            .backtrack(0.05)
            .cap(1_000_000)
            .inner("cbas-nd")
            .communities(0)
            .top(4)
            .deadline_ms(250)
            .deadline_from_submit(400)
            .patience(5);
        let text = spec.to_string();
        assert_eq!(SolverSpec::parse(&text).unwrap(), spec);
        assert!(text.starts_with("cbas-nd:budget=500,"), "{text}");
        assert!(
            text.ends_with("deadline_ms=250,deadline_from_submit=400,patience=5"),
            "{text}"
        );
        // communities=0 is the `auto` sentinel and must print as such.
        assert!(
            text.contains("inner=cbas-nd,communities=auto,top=4"),
            "{text}"
        );
    }

    #[test]
    fn decomp_keys_parse_and_round_trip() {
        let spec = SolverSpec::parse("decomp:inner=cbas-nd,communities=auto,top=4").unwrap();
        assert_eq!(spec.inner.as_deref(), Some("cbas-nd"));
        assert_eq!(spec.communities, Some(0));
        assert_eq!(spec.top, Some(4));
        assert_eq!(
            spec.to_string(),
            "decomp:inner=cbas-nd,communities=auto,top=4"
        );

        let explicit = SolverSpec::parse("decomp:communities=8").unwrap();
        assert_eq!(explicit.communities, Some(8));
        assert_eq!(explicit.to_string(), "decomp:communities=8");

        assert_eq!(
            SolverSpec::parse("decomp:communities=lots"),
            Err(SpecError::BadValue {
                key: "communities",
                value: "lots".into()
            })
        );
        assert_eq!(
            SolverSpec::parse("decomp:inner="),
            Err(SpecError::BadValue {
                key: "inner",
                value: String::new()
            })
        );
    }

    #[test]
    fn anytime_knobs_parse_and_reject_garbage() {
        let spec = SolverSpec::parse("cbas-nd:deadline_ms=0,patience=3").unwrap();
        assert_eq!(spec.deadline_ms, Some(0));
        assert_eq!(spec.patience, Some(3));
        assert_eq!(spec.to_string(), "cbas-nd:deadline_ms=0,patience=3");
        assert_eq!(
            SolverSpec::parse("cbas-nd:deadline_ms=soon"),
            Err(SpecError::BadValue {
                key: "deadline_ms",
                value: "soon".into()
            })
        );
        assert_eq!(
            SolverSpec::parse("cbas-nd:patience=-1"),
            Err(SpecError::BadValue {
                key: "patience",
                value: "-1".into()
            })
        );
    }

    #[test]
    fn float_values_round_trip_exactly() {
        for x in [0.1, 0.3, 1e-9, 123.456, 0.7000000000000001] {
            let spec = SolverSpec::cbas_nd().rho(x);
            let back = SolverSpec::parse(&spec.to_string()).unwrap();
            assert_eq!(back.rho, Some(x));
        }
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert_eq!(SolverSpec::parse("  "), Err(SpecError::Empty));
        assert!(matches!(
            SolverSpec::parse("cbas:wat=1"),
            Err(SpecError::UnknownOption(_))
        ));
        assert!(matches!(
            SolverSpec::parse("cbas:budget"),
            Err(SpecError::Malformed(_))
        ));
        assert_eq!(
            SolverSpec::parse("cbas:budget=abc"),
            Err(SpecError::BadValue {
                key: "budget",
                value: "abc".into()
            })
        );
    }

    #[test]
    fn ensure_only_rejects_foreign_options() {
        let spec = SolverSpec::dgreedy().budget(10);
        let err = spec.ensure_only("dgreedy", &["starts"]).unwrap_err();
        assert_eq!(
            err,
            SpecError::UnsupportedOption {
                algorithm: "dgreedy",
                key: "budget"
            }
        );
        // `require` is solver-enforced, never a spec-level error.
        let spec = SolverSpec::dgreedy().require([NodeId(1)]);
        assert!(spec.ensure_only("dgreedy", &["starts"]).is_ok());
    }

    #[test]
    fn pool_modes_parse_and_reject_garbage() {
        let spec = SolverSpec::parse("cbas-nd:threads=4,pool=private").unwrap();
        assert_eq!(spec.pool, Some(PoolMode::Private));
        let spec = SolverSpec::parse("cbas-nd:pool=shared").unwrap();
        assert_eq!(spec.pool, Some(PoolMode::Shared));
        assert_eq!(spec.to_string(), "cbas-nd:pool=shared");
        assert_eq!(
            SolverSpec::parse("cbas-nd:pool=nope"),
            Err(SpecError::BadValue {
                key: "pool",
                value: "nope".into()
            })
        );
    }

    #[test]
    fn id_lists_parse_and_reject_garbage() {
        let spec = SolverSpec::parse("cbas-nd:require=1+2+3").unwrap();
        assert_eq!(spec.required, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!(SolverSpec::parse("cbas-nd:require=1+x").is_err());
    }
}

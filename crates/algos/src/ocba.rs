//! Optimal Computing Budget Allocation across start nodes (§3.1–3.2).
//!
//! CBAS splits the total budget `T` into `r` stages. Within a stage the
//! budget is divided among start nodes in the ratio of Theorem 3 /
//! Eq. (3):
//!
//! ```text
//! N_i / N_j = ((d_i - c_b) / (d_j - c_b))^{N_b}
//! ```
//!
//! where `d_i`/`c_i` are the best/worst willingness sampled from start node
//! `v_i` so far, `v_b` is the incumbent best start node and `N_b` its
//! cumulative budget. Start nodes whose stage allocation rounds to zero are
//! pruned from subsequent stages (§3.1). The ratio is evaluated in log
//! space — `N_b` reaches the hundreds, and `ratio^{N_b}` underflows `f64`
//! long before the allocation logic stops caring.

/// Per-start-node sampling statistics driving the allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StartStats {
    /// Worst willingness sampled so far (`c_i`).
    pub worst: f64,
    /// Best willingness sampled so far (`d_i`).
    pub best: f64,
    /// Cumulative budget already spent on this start node (`N_i`).
    pub spent: u64,
    /// Whether the node was pruned in an earlier stage (or never produced a
    /// feasible sample).
    pub pruned: bool,
}

impl StartStats {
    /// A fresh, never-sampled start node.
    pub fn new() -> Self {
        Self {
            worst: f64::INFINITY,
            best: f64::NEG_INFINITY,
            spent: 0,
            pruned: false,
        }
    }

    /// Folds one sampled willingness into the statistics.
    pub fn record(&mut self, willingness: f64) {
        self.worst = self.worst.min(willingness);
        self.best = self.best.max(willingness);
    }

    /// `true` once at least one sample was recorded.
    pub fn sampled(&self) -> bool {
        self.best.is_finite()
    }
}

impl Default for StartStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Stage-0 split: `T_1/m` each, remainder to the first nodes (pseudo-code
/// line 9), skipping already-pruned entries. The uniform opening move of
/// every staged solver ([`crate::engine::StagedEngine`]); later stages use
/// [`allocate_stage`] / [`crate::gaussian::allocate_stage_gaussian`].
pub fn uniform_split(stage_budget: u64, m: usize, stats: &[StartStats]) -> Vec<u64> {
    let live: Vec<usize> = (0..m).filter(|&i| !stats[i].pruned).collect();
    let mut alloc = vec![0u64; m];
    if live.is_empty() {
        return alloc;
    }
    let base = stage_budget / live.len() as u64;
    let extra = (stage_budget % live.len() as u64) as usize;
    for (rank, &i) in live.iter().enumerate() {
        alloc[i] = base + u64::from(rank < extra);
    }
    alloc
}

/// Index of the incumbent best start node `v_b` (largest `d_i` among
/// unpruned, sampled nodes; ties toward smaller index). `None` when nothing
/// has been sampled.
pub fn best_start(stats: &[StartStats]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, s) in stats.iter().enumerate() {
        if s.pruned || !s.sampled() {
            continue;
        }
        match best {
            None => best = Some(i),
            Some(b) if s.best > stats[b].best => best = Some(i),
            _ => {}
        }
    }
    best
}

/// Allocates `stage_budget` samples across start nodes by the Eq. (3)
/// ratio. Returns one allocation per start node; pruned/unsampled nodes get
/// zero. The allocations sum to exactly `stage_budget` (unless every node is
/// pruned, in which case all are zero).
///
/// Degenerate inputs fall back to uniform allocation over live nodes:
/// `d_b == c_b` (no spread at the incumbent — every ratio is 0/0).
pub fn allocate_stage(stats: &[StartStats], stage_budget: u64) -> Vec<u64> {
    let mut alloc = vec![0u64; stats.len()];
    if stage_budget == 0 {
        return alloc;
    }
    let Some(b) = best_start(stats) else {
        return alloc;
    };
    let live: Vec<usize> = (0..stats.len())
        .filter(|&i| !stats[i].pruned && stats[i].sampled())
        .collect();
    debug_assert!(!live.is_empty());

    let spread = stats[b].best - stats[b].worst;
    let weights: Vec<f64> = if spread <= 0.0 {
        // Degenerate incumbent: uniform over live nodes.
        live.iter().map(|_| 1.0).collect()
    } else {
        let n_b = stats[b].spent.max(1) as f64;
        let ln_db_cb = spread.ln();
        live.iter()
            .map(|&i| {
                if i == b {
                    return 1.0; // ratio = 1 exactly
                }
                let di_cb = stats[i].best - stats[b].worst;
                if di_cb <= 0.0 {
                    // Theorem 3: p(J*_b < J*_i) = 0 → no budget.
                    0.0
                } else {
                    // ((d_i-c_b)/(d_b-c_b))^{N_b}, log-space.
                    (n_b * (di_cb.ln() - ln_db_cb)).exp()
                }
            })
            .collect()
    };

    distribute(&mut alloc, &live, &weights, stage_budget, b);
    alloc
}

/// Largest-remainder rounding of `stage_budget · w_i / Σw` with the
/// leftover biased toward the incumbent `b`, guaranteeing exact budget use.
pub(crate) fn distribute(
    alloc: &mut [u64],
    live: &[usize],
    weights: &[f64],
    stage_budget: u64,
    b: usize,
) {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        // Everything underflowed: give the whole stage to the incumbent.
        alloc[b] = stage_budget;
        return;
    }
    let mut assigned = 0u64;
    let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(live.len());
    for (&i, &w) in live.iter().zip(weights.iter()) {
        let share = stage_budget as f64 * w / total;
        let fl = share.floor() as u64;
        alloc[i] = fl;
        assigned += fl;
        fracs.push((share - fl as f64, i));
    }
    let mut leftover = stage_budget - assigned;
    // Largest fractional parts first; ties toward the incumbent, then
    // smaller index (full determinism).
    fracs.sort_by(|x, y| {
        y.0.partial_cmp(&x.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (x.1 != b).cmp(&(y.1 != b)))
            .then_with(|| x.1.cmp(&y.1))
    });
    let mut idx = 0;
    while leftover > 0 {
        let i = fracs[idx % fracs.len()].1;
        alloc[i] += 1;
        leftover -= 1;
        idx += 1;
    }
}

/// Derives the stage count `r` from the budget and the correct-selection
/// target, following Example 1's arithmetic:
///
/// ```text
/// r = ⌊ T·k·ln α / (n · ln(2(1-P_b)/(m-1))) ⌋, clamped to [1, 20] and ≤ T
/// ```
///
/// (Example 1: T=20, k=5, n=10, m=2, α=0.9, P_b=0.7 → r = 2.) The paper
/// states several mutually inconsistent formulas for `r` (Theorem 5 vs the
/// pseudo-code vs Example 1); we follow the worked example and expose a
/// direct override in the solver configs. The clamp keeps `r` sensible when
/// the logs degenerate (m = 1, P_b → 1, α → 1).
pub fn derive_stages(t: u64, k: usize, n: usize, m: usize, alpha: f64, p_b: f64) -> u32 {
    const MAX_STAGES: u32 = 20;
    if t == 0 {
        return 1;
    }
    let upper = MAX_STAGES.min(t as u32).max(1);
    if m <= 1 || !(0.0 < alpha && alpha < 1.0) || !(0.0 < p_b && p_b < 1.0) {
        return 1;
    }
    let arg = 2.0 * (1.0 - p_b) / (m as f64 - 1.0);
    if arg >= 1.0 {
        // ln non-negative → ratio ≤ 0 → a single stage.
        return 1;
    }
    let numerator = t as f64 * k as f64 * alpha.ln();
    let denominator = n as f64 * arg.ln();
    let r = (numerator / denominator).floor();
    if !r.is_finite() || r < 1.0 {
        1
    } else {
        (r as u32).clamp(1, upper)
    }
}

/// Splits the total budget `T` into `r` near-equal stage budgets summing to
/// exactly `T` (earlier stages take the remainder).
pub fn stage_budgets(t: u64, r: u32) -> Vec<u64> {
    let r = r.max(1) as u64;
    let base = t / r;
    let extra = t % r;
    (0..r).map(|i| base + u64::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn stats(entries: &[(f64, f64, u64)]) -> Vec<StartStats> {
        entries
            .iter()
            .map(|&(worst, best, spent)| StartStats {
                worst,
                best,
                spent,
                pruned: false,
            })
            .collect()
    }

    #[test]
    fn record_tracks_extremes() {
        let mut s = StartStats::new();
        assert!(!s.sampled());
        s.record(5.0);
        s.record(2.0);
        s.record(8.0);
        assert_eq!(s.worst, 2.0);
        assert_eq!(s.best, 8.0);
        assert!(s.sampled());
    }

    #[test]
    fn best_start_prefers_highest_d() {
        let s = stats(&[(1.0, 4.0, 5), (2.0, 9.0, 5), (0.0, 9.0, 5)]);
        // Tie between 1 and 2 → smaller index.
        assert_eq!(best_start(&s), Some(1));
        let empty = vec![StartStats::new(); 3];
        assert_eq!(best_start(&empty), None);
    }

    #[test]
    fn best_start_skips_pruned() {
        let mut s = stats(&[(1.0, 10.0, 5), (1.0, 4.0, 5)]);
        s[0].pruned = true;
        assert_eq!(best_start(&s), Some(1));
    }

    /// Example 1's arithmetic: c3=5.9, d3=9.2 (best node), c10=6.9, d10=8.9,
    /// N_b=5 → ratio = ((8.9-5.9)/(9.2-5.9))^5 ≈ 0.621. The paper's text
    /// says 0.524 because it (inconsistently) plugs 8.8; we verify the
    /// formula itself, then the 10-sample split ≈ 6:4.
    #[test]
    fn allocation_follows_eq3_ratio() {
        let s = stats(&[(5.9, 9.2, 5), (6.9, 8.9, 5)]);
        let alloc = allocate_stage(&s, 10);
        assert_eq!(alloc.iter().sum::<u64>(), 10);
        let ratio = (8.9f64 - 5.9).powi(5) / (9.2f64 - 5.9).powi(5);
        let want_1 = 10.0 * ratio / (1.0 + ratio);
        assert!(
            (alloc[1] as f64 - want_1).abs() <= 1.0,
            "alloc {alloc:?}, want second ≈ {want_1:.2}"
        );
        assert!(alloc[0] > alloc[1], "incumbent gets the larger share");
    }

    #[test]
    fn dominated_nodes_get_zero_and_can_be_pruned() {
        // d_i < c_b → p(J*_b < J*_i) = 0 → weight 0.
        let s = stats(&[(5.0, 10.0, 4), (1.0, 4.0, 4)]);
        let alloc = allocate_stage(&s, 8);
        assert_eq!(alloc, vec![8, 0]);
    }

    #[test]
    fn huge_exponent_does_not_underflow_to_nothing() {
        // N_b = 10_000: ratio^Nb underflows f64; log-space keeps the
        // incumbent allocation intact.
        let s = stats(&[(0.0, 1.0, 10_000), (0.0, 0.99, 10_000)]);
        let alloc = allocate_stage(&s, 100);
        assert_eq!(alloc.iter().sum::<u64>(), 100);
        assert!(
            alloc[0] >= 99,
            "nearly everything to the incumbent: {alloc:?}"
        );
    }

    #[test]
    fn degenerate_incumbent_falls_back_to_uniform() {
        let s = stats(&[(7.0, 7.0, 3), (7.0, 7.0, 3), (6.0, 7.0, 3)]);
        let alloc = allocate_stage(&s, 9);
        assert_eq!(alloc.iter().sum::<u64>(), 9);
        // Spread of the incumbent (index 0, d=7) is zero → uniform thirds.
        assert_eq!(alloc, vec![3, 3, 3]);
    }

    #[test]
    fn zero_budget_and_unsampled_nodes() {
        let s = stats(&[(1.0, 2.0, 1)]);
        assert_eq!(allocate_stage(&s, 0), vec![0]);
        let fresh = vec![StartStats::new(); 2];
        assert_eq!(allocate_stage(&fresh, 10), vec![0, 0]);
    }

    /// Example 1: T=20, P_b=0.7, α=0.9, n=10, k=5, m=2 → r ≈ 2.
    #[test]
    fn stage_derivation_matches_example_one() {
        assert_eq!(derive_stages(20, 5, 10, 2, 0.9, 0.7), 2);
    }

    #[test]
    fn stage_derivation_degenerate_inputs() {
        assert_eq!(derive_stages(0, 5, 10, 2, 0.9, 0.7), 1);
        assert_eq!(derive_stages(100, 5, 10, 1, 0.9, 0.7), 1); // m = 1
        assert_eq!(derive_stages(100, 5, 10, 2, 0.9, 0.5), 1); // arg = 1
                                                               // α → 1 drives the numerator to 0 → r clamps to 1.
        assert_eq!(derive_stages(100, 5, 10, 2, 0.999999, 0.7), 1);
    }

    #[test]
    fn uniform_split_skips_pruned() {
        let mut s = vec![StartStats::new(); 3];
        s[1].pruned = true;
        assert_eq!(uniform_split(10, 3, &s), vec![5, 0, 5]);
        assert_eq!(
            uniform_split(5, 3, &{
                let mut s = vec![StartStats::new(); 3];
                s[2].pruned = true;
                s
            }),
            vec![3, 2, 0]
        );
    }

    #[test]
    fn stage_budgets_sum_exactly() {
        assert_eq!(stage_budgets(10, 3), vec![4, 3, 3]);
        assert_eq!(stage_budgets(9, 3), vec![3, 3, 3]);
        assert_eq!(stage_budgets(2, 5), vec![1, 1, 0, 0, 0]);
        assert_eq!(stage_budgets(7, 1), vec![7]);
    }

    proptest! {
        #[test]
        fn allocation_always_sums_to_budget(
            entries in proptest::collection::vec(
                (0.0..50.0f64, 0.0..50.0f64, 1u64..200), 1..12),
            budget in 1u64..500,
        ) {
            let s: Vec<StartStats> = entries
                .iter()
                .map(|&(a, b, n)| StartStats {
                    worst: a.min(b),
                    best: a.max(b),
                    spent: n,
                    pruned: false,
                })
                .collect();
            let alloc = allocate_stage(&s, budget);
            prop_assert_eq!(alloc.iter().sum::<u64>(), budget);
        }

        #[test]
        fn stage_budget_split_is_exact(t in 0u64..10_000, r in 1u32..30) {
            let parts = stage_budgets(t, r);
            prop_assert_eq!(parts.len(), r as usize);
            prop_assert_eq!(parts.iter().sum::<u64>(), t);
            // Near-equal: max - min ≤ 1.
            let max = parts.iter().max().unwrap();
            let min = parts.iter().min().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}

//! Job control for anytime solves: cancellation, deadlines, progress and
//! incumbent streaming.
//!
//! The staged solvers of this crate are *anytime* algorithms — every stage
//! ends with a feasible incumbent (§3's CBAS keeps the best sampled
//! solution after each of its `r` stages) — but a blocking `solve()` call
//! hides that structure: the caller cannot cancel a solve whose client
//! hung up, bound tail latency with a deadline, or read the best-so-far
//! group early. [`JobControl`] is the shared handle that exposes it:
//!
//! * the caller (a `SolveHandle`, a server, a test) **cancels** or arms a
//!   **deadline**; the engine checks at every *stage boundary* and stops
//!   dealing work the moment either trips;
//! * the engine **publishes** progress after every stage — stages done,
//!   samples spent, the incumbent's willingness — and streams each
//!   *improving* incumbent over an optional channel
//!   ([`JobControl::take_incumbents`]);
//! * a stopped solve still returns its incumbent, tagged with a typed
//!   [`Termination`] reason in [`crate::SolverStats::termination`].
//!
//! Control is strictly *one-directional in determinism terms*: a cancel or
//! deadline only decides **how many stages run**, never what any stage
//! computes — a solve that is never stopped is bit-identical to one run
//! without a control attached, and the stages that did run before a stop
//! are bit-identical prefixes of the full solve.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use waso_graph::NodeId;

/// Why a solve stopped. Carried on every [`crate::SolverStats`]; anything
/// other than [`Termination::Completed`] means the result is the best
/// incumbent *found so far*, not the full-budget answer (and
/// [`crate::SolverStats::truncated`] is set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Termination {
    /// The solve ran its course: full budget, or the `patience=` early
    /// stop after the configured number of non-improving stages (the
    /// latter also sets [`crate::SolverStats::truncated`]).
    #[default]
    Completed,
    /// The `deadline_ms=` (or `deadline_from_submit=`) wall-clock budget
    /// elapsed; pool workers abandon the in-flight stage mid-chunk and
    /// the result is the incumbent of the last *completed* stage.
    Deadline,
    /// [`JobControl::cancel`] was called (directly, or by dropping an
    /// unawaited `SolveHandle`); like a deadline, sampling stops
    /// mid-chunk and the in-flight stage is abandoned.
    Cancelled,
}

impl std::fmt::Display for Termination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Termination::Completed => write!(f, "completed"),
            Termination::Deadline => write!(f, "deadline"),
            Termination::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// One streamed best-so-far solution: the engine sends one of these after
/// every stage that *improved* the incumbent (so the stream is strictly
/// increasing in willingness).
#[derive(Debug, Clone)]
pub struct Incumbent {
    /// Stages completed when this incumbent was current (1-based: the
    /// incumbent after the first stage reports `stage == 1`).
    pub stage: u32,
    /// Samples spent so far.
    pub samples_drawn: u64,
    /// The incumbent group's willingness.
    pub willingness: f64,
    /// The incumbent group's members (unsorted engine order).
    pub nodes: Vec<NodeId>,
}

/// A point-in-time progress snapshot of a running (or finished) job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobProgress {
    /// Stages the solve has completed.
    pub stages_done: u32,
    /// Samples spent so far.
    pub samples_spent: u64,
    /// Willingness of the current incumbent, `None` before the first
    /// feasible sample.
    pub incumbent: Option<f64>,
    /// Whether the solve has finished (result available / error surfaced).
    pub finished: bool,
}

/// `f64::NAN` bit pattern used as the "no incumbent yet" sentinel in the
/// atomic incumbent-value cell.
const NO_INCUMBENT: u64 = u64::MAX;

/// "No deadline armed" sentinel in [`StopState::deadline_nanos`].
const UNARMED: u64 = u64::MAX;

/// The lock-free stop signal a [`JobControl`] shares with the workers
/// executing its solve: a cancel flag plus the armed deadline, stored as
/// nanoseconds since the control's creation so checking costs two relaxed
/// atomic loads (plus one `Instant::now()` only while a deadline is
/// armed). Pool workers consult this between *samples*, so a trip bounds
/// overshoot far tighter than a stage boundary would.
#[derive(Debug)]
pub(crate) struct StopState {
    cancelled: AtomicBool,
    /// Armed deadline as nanoseconds after `epoch`, or [`UNARMED`]. The
    /// earliest armed value wins (`fetch_min`).
    deadline_nanos: AtomicU64,
    epoch: Instant,
}

impl StopState {
    fn new() -> Self {
        Self {
            cancelled: AtomicBool::new(false),
            deadline_nanos: AtomicU64::new(UNARMED),
            epoch: Instant::now(), // audit:allow(D2): the StopState deadline plumbing is the sanctioned clock source
        }
    }

    fn arm_at(&self, at: Instant) {
        let nanos = at.saturating_duration_since(self.epoch).as_nanos();
        let nanos = u64::try_from(nanos).unwrap_or(UNARMED - 1).min(UNARMED - 1);
        self.deadline_nanos.fetch_min(nanos, Ordering::AcqRel);
    }

    fn deadline_elapsed(&self) -> bool {
        let armed = self.deadline_nanos.load(Ordering::Relaxed);
        armed != UNARMED && self.epoch.elapsed().as_nanos() as u64 >= armed
    }

    /// Whether the job must stop (cancelled or past its deadline). The
    /// hot-path check workers run between samples.
    pub(crate) fn stop_requested(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed) || self.deadline_elapsed()
    }
}

/// The shared control block between a solve and whoever is watching it.
///
/// Construction is [`JobControl::new`]; hand an `Arc<JobControl>` to
/// [`crate::Solver::solve_controlled`] (the session facade's
/// `submit`/`SolveHandle` machinery does this for you) and use the same
/// `Arc` to cancel, poll progress, or stream incumbents. All methods take
/// `&self` and are safe to call from any thread at any time — including
/// after the solve finished, when they become no-ops.
#[derive(Debug)]
pub struct JobControl {
    /// The cancel/deadline signal, `Arc`'d so pool workers can hold a
    /// clone and check it between samples.
    stop: Arc<StopState>,
    stages_done: AtomicU32,
    samples_spent: AtomicU64,
    /// The incumbent willingness as `f64::to_bits`, or [`NO_INCUMBENT`].
    incumbent_bits: AtomicU64,
    finished: AtomicBool,
    /// Incumbent stream; dropped (closing the receiver's iterator) when
    /// the job finishes.
    incumbent_tx: Mutex<Option<Sender<Incumbent>>>,
    /// Latest-only copy of the newest incumbent, overwritten on every
    /// improvement — the watch view behind `SolveHandle::latest_incumbent`.
    latest: Mutex<Option<Incumbent>>,
}

impl Default for JobControl {
    fn default() -> Self {
        Self::new()
    }
}

impl JobControl {
    /// A fresh control: not cancelled, no deadline, nothing published.
    pub fn new() -> Self {
        Self {
            stop: Arc::new(StopState::new()),
            stages_done: AtomicU32::new(0),
            samples_spent: AtomicU64::new(0),
            incumbent_bits: AtomicU64::new(NO_INCUMBENT),
            finished: AtomicBool::new(false),
            incumbent_tx: Mutex::new(None),
            latest: Mutex::new(None),
        }
    }

    /// The shared stop signal, for execution backends that check it
    /// between samples.
    pub(crate) fn stop_state(&self) -> Arc<StopState> {
        Arc::clone(&self.stop)
    }

    /// Requests cancellation: workers abandon the in-flight stage
    /// mid-chunk and the solve returns its current incumbent with
    /// [`Termination::Cancelled`]. Idempotent; a no-op on finished jobs.
    pub fn cancel(&self) {
        self.stop.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether [`JobControl::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.stop.cancelled.load(Ordering::SeqCst)
    }

    /// Arms an absolute deadline. The engine calls this at solve start
    /// when the spec carries `deadline_ms=`; callers may arm one earlier
    /// (e.g. at submit time, to bound queue wait too — the session does
    /// exactly that for `deadline_from_submit=`). The earliest armed
    /// deadline wins — arming never extends an existing one.
    pub fn arm_deadline_at(&self, at: Instant) {
        self.stop.arm_at(at);
    }

    /// [`JobControl::arm_deadline_at`] relative to now.
    pub fn arm_deadline(&self, after: Duration) {
        self.arm_deadline_at(Instant::now() + after); // audit:allow(D2): the StopState deadline plumbing is the sanctioned clock source
    }

    /// The reason this job must stop, if any. Cancellation dominates an
    /// elapsed deadline (it is the more specific signal). Checked by the
    /// engine at every stage boundary, and by pool workers between
    /// samples via the shared [`StopState`].
    pub fn stop_reason(&self) -> Option<Termination> {
        if self.is_cancelled() {
            return Some(Termination::Cancelled);
        }
        if self.stop.deadline_elapsed() {
            return Some(Termination::Deadline);
        }
        None
    }

    /// The newest streamed incumbent, or `None` before the first feasible
    /// one. A *latest-only* watch view over the incumbent stream: reading
    /// never consumes anything and a slow reader never backs anything up
    /// — improvements simply overwrite the cell.
    pub fn latest_incumbent(&self) -> Option<Incumbent> {
        self.latest
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// A snapshot of the job's progress.
    pub fn progress(&self) -> JobProgress {
        let bits = self.incumbent_bits.load(Ordering::Acquire);
        JobProgress {
            stages_done: self.stages_done.load(Ordering::Acquire),
            samples_spent: self.samples_spent.load(Ordering::Acquire),
            incumbent: (bits != NO_INCUMBENT).then(|| f64::from_bits(bits)),
            finished: self.finished.load(Ordering::Acquire),
        }
    }

    /// Attaches the incumbent stream and returns its receiving end. The
    /// sender is dropped when the job finishes, so iterating the receiver
    /// terminates exactly when the final result is available. One stream
    /// per job; later calls replace the sender (the old receiver sees the
    /// stream end).
    pub fn take_incumbents(&self) -> Receiver<Incumbent> {
        let (tx, rx) = std::sync::mpsc::channel();
        *self
            .incumbent_tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(tx);
        rx
    }

    /// Solver-side: record one completed stage (or a whole single-pass
    /// solve). `improved` carries the new incumbent when this stage
    /// raised it; improvements are also streamed to the incumbent
    /// channel, if one is attached. Public so custom solvers registered
    /// from other crates can publish too.
    pub fn publish_stage(
        &self,
        stages_done: u32,
        samples_spent: u64,
        improved: Option<(f64, &[NodeId])>,
    ) {
        self.stages_done.store(stages_done, Ordering::Release);
        self.samples_spent.store(samples_spent, Ordering::Release);
        if let Some((willingness, nodes)) = improved {
            self.incumbent_bits
                .store(willingness.to_bits(), Ordering::Release);
            let incumbent = Incumbent {
                stage: stages_done,
                samples_drawn: samples_spent,
                willingness,
                nodes: nodes.to_vec(),
            };
            *self.latest.lock().unwrap_or_else(PoisonError::into_inner) = Some(incumbent.clone());
            let tx = self
                .incumbent_tx
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(tx) = tx.as_ref() {
                // A gone receiver just means nobody is listening.
                let _ = tx.send(incumbent);
            }
        }
    }

    /// Marks the job finished and closes the incumbent stream. Called by
    /// the session machinery (and by solvers that finish without one);
    /// idempotent.
    pub fn finish(&self) {
        self.finished.store(true, Ordering::SeqCst);
        *self
            .incumbent_tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_control_has_no_stop_reason() {
        let c = JobControl::new();
        assert_eq!(c.stop_reason(), None);
        let p = c.progress();
        assert_eq!(p.stages_done, 0);
        assert_eq!(p.samples_spent, 0);
        assert_eq!(p.incumbent, None);
        assert!(!p.finished);
    }

    #[test]
    fn cancel_dominates_deadline() {
        let c = JobControl::new();
        c.arm_deadline(Duration::from_millis(0));
        assert_eq!(c.stop_reason(), Some(Termination::Deadline));
        c.cancel();
        assert_eq!(c.stop_reason(), Some(Termination::Cancelled));
    }

    #[test]
    fn earliest_deadline_wins() {
        let c = JobControl::new();
        let soon = Instant::now();
        c.arm_deadline_at(soon);
        // A later deadline must not extend the armed one.
        c.arm_deadline(Duration::from_secs(3600));
        assert_eq!(c.stop_reason(), Some(Termination::Deadline));
    }

    #[test]
    fn publish_and_stream_incumbents() {
        let c = JobControl::new();
        let rx = c.take_incumbents();
        c.publish_stage(1, 10, Some((2.5, &[NodeId(0), NodeId(1)])));
        c.publish_stage(2, 20, None); // no improvement: nothing streamed
        c.publish_stage(3, 30, Some((3.5, &[NodeId(0), NodeId(2)])));
        c.finish();
        let seen: Vec<Incumbent> = rx.iter().collect();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].stage, 1);
        assert_eq!(seen[0].willingness, 2.5);
        assert_eq!(seen[1].stage, 3);
        assert_eq!(seen[1].samples_drawn, 30);
        let p = c.progress();
        assert_eq!(p.stages_done, 3);
        assert_eq!(p.samples_spent, 30);
        assert_eq!(p.incumbent, Some(3.5));
        assert!(p.finished);
    }

    #[test]
    fn latest_incumbent_is_a_lossy_watch_view() {
        let c = JobControl::new();
        assert!(c.latest_incumbent().is_none());
        c.publish_stage(1, 10, Some((2.5, &[NodeId(0)])));
        c.publish_stage(3, 30, Some((3.5, &[NodeId(0), NodeId(2)])));
        // Reading twice returns the same newest value: nothing consumed.
        for _ in 0..2 {
            let latest = c.latest_incumbent().expect("an incumbent was published");
            assert_eq!(latest.stage, 3);
            assert_eq!(latest.willingness, 3.5);
            assert_eq!(latest.nodes, vec![NodeId(0), NodeId(2)]);
        }
    }

    #[test]
    fn stop_state_trips_on_cancel_and_deadline() {
        let c = JobControl::new();
        let stop = c.stop_state();
        assert!(!stop.stop_requested());
        c.arm_deadline(Duration::from_secs(3600));
        assert!(!stop.stop_requested());
        c.arm_deadline(Duration::from_millis(0));
        assert!(stop.stop_requested(), "elapsed deadline must trip");
        let c2 = JobControl::new();
        let stop2 = c2.stop_state();
        c2.cancel();
        assert!(stop2.stop_requested(), "cancel must trip");
    }

    #[test]
    fn termination_displays() {
        assert_eq!(Termination::Completed.to_string(), "completed");
        assert_eq!(Termination::Deadline.to_string(), "deadline");
        assert_eq!(Termination::Cancelled.to_string(), "cancelled");
    }
}

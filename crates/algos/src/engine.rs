//! `StagedEngine` — the one-and-only staged-sampling loop.
//!
//! The paper's whole solver family (§3 Algorithm 1, §4 Algorithm 2, the
//! §5.3.1 parallel runs, Appendix A's Gaussian variant) shares a single
//! algorithmic skeleton: select start nodes, then run `r` stages, each of
//! which (1) divides its share of the budget `T` across start nodes,
//! (2) prunes zero-allocation nodes, (3) grows the allocated samples by
//! randomized candidate selection, and (4) keeps the best solution seen.
//! This module implements that skeleton **once**, parameterized along
//! three orthogonal axes:
//!
//! * **allocation policy** — uniform split at stage 0, then either the
//!   OCBA ratio of Theorem 3 ([`crate::ocba::allocate_stage`]) or the
//!   Gaussian rule of Appendix A
//!   ([`crate::gaussian::allocate_stage_gaussian`]), selected by
//!   [`Allocation`];
//! * **candidate distribution** — [`Distribution::Uniform`] (CBAS) or
//!   [`Distribution::CrossEntropy`] per-start probability vectors updated
//!   after every stage ([`crate::cross_entropy::update_vector`], CBAS-ND,
//!   including the [`StartMode::Partial`] online-replanning path of
//!   §4.4.1);
//! * **execution backend** — [`ExecBackend::Serial`], or
//!   [`ExecBackend::Pool`] with a persistent worker pool spawned once per
//!   solve ([`crate::exec`]).
//!
//! [`crate::Cbas`], [`crate::CbasNd`] and [`crate::ParallelCbasNd`] are
//! thin, registry-visible configurations over this engine.
//!
//! ## Determinism contract
//!
//! Every `(start node, stage, sample)` triple draws from its own RNG
//! stream ([`crate::sample_seed`]) and the merge processes results in
//! sample order, so the outcome is **bit-identical for every backend and
//! thread count**; `tests/determinism.rs` and the `tests/properties.rs`
//! proptest pin this down.
//!
//! ## Budget accounting
//!
//! A start node whose component is smaller than `k` stalls
//! deterministically on its first draw; the engine charges it only the
//! samples actually drawn (historically the full stage allocation was
//! charged), so `Σ spent == samples_drawn` holds for every solve — the
//! engine debug-asserts it.
//!
//! ## Anytime control
//!
//! Every stage ends with a feasible incumbent, so the engine is an
//! *anytime* algorithm. [`StagedEngine::solve_controlled`] /
//! [`StagedEngine::solve_in_pool_controlled`] expose that through a
//! [`crate::JobControl`]: cancellation and the `deadline=` wall-clock
//! budget are checked at every stage boundary **and between samples
//! inside every executor** (a tripped control stops further draws
//! mid-chunk, abandons the in-flight stage, and returns the incumbent of
//! the last completed stage tagged with a typed [`crate::Termination`]),
//! `patience=` stops after N consecutive non-improving stages, and
//! progress plus each improving incumbent are published through the
//! control after every stage. The control can only decide *how many
//! stages run* — never what a stage computes: an abandoned stage is
//! discarded wholesale, never merged, so stopping mid-stage is
//! indistinguishable from stopping at the previous stage boundary. An
//! untripped control is bit-invisible, and the stages that ran before a
//! stop are bit-identical prefixes of the full solve.

use std::sync::Arc;
use std::time::Instant;

use waso_core::{Group, WasoInstance};
use waso_graph::NodeId;

use crate::cbas::CbasConfig;
use crate::cbasnd::CbasNdConfig;
use crate::cross_entropy::{update_vector, ProbabilityVector};
use crate::exec::{
    ExecBackend, SerialExec, SharedPool, SolveCtx, StageExec, StageShared, WorkItem, WorkerPool,
};
use crate::gaussian::{allocate_stage_gaussian, Allocation, GaussStats};
use crate::job::{JobControl, Termination};
use crate::ocba::{allocate_stage, stage_budgets, uniform_split, StartStats};
use crate::sampler::{Sample, Sampler};
use crate::{SolveError, SolveResult, SolverStats};

/// The candidate-distribution axis: how a stage's samples pick the next
/// node from the frontier `VA`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Uniform selection over `VA` (CBAS, Algorithm 1 line 22).
    Uniform,
    /// Per-start-node selection vectors re-fit to each stage's elites by
    /// the cross-entropy method (CBAS-ND, Algorithm 2 lines 35–46).
    CrossEntropy {
        /// Elite fraction ρ (paper default 0.3).
        rho: f64,
        /// Smoothing weight `w` of Eq. (4) (paper default 0.9).
        smoothing: f64,
        /// §4.4.2 backtracking threshold `z_t`; `None` disables it.
        backtrack_threshold: Option<f64>,
    },
}

/// Where a solve's samples grow from.
#[derive(Clone, Copy)]
pub enum StartMode<'a> {
    /// Phase-1 start-node selection (normal solving).
    Fresh,
    /// Grow every sample from a fixed partial solution — the §4.4.1 online
    /// extension (confirmed attendees) and required-attendee solves.
    /// Samples are independent draws from the same seed set, so partial
    /// solves run on every backend (serial, per-solve pool, session pool)
    /// with bit-identical results.
    Partial(&'a [NodeId]),
}

/// The unified staged-sampling engine. See the module docs for the three
/// axes; construction is via [`StagedEngine::new`] (CBAS shape) or
/// [`StagedEngine::from_cbasnd`] (CBAS-ND shape) plus the builder-style
/// [`StagedEngine::backend`] override.
#[derive(Debug, Clone)]
pub struct StagedEngine {
    base: CbasConfig,
    distribution: Distribution,
    allocation: Allocation,
    backend: ExecBackend,
    /// An incumbent group offered via [`StagedEngine::warm_start`]; if it
    /// is feasible for the solved instance it seeds the best-so-far
    /// before the first sample is drawn.
    warm: Option<Vec<NodeId>>,
}

impl StagedEngine {
    /// An engine over `base` with the given candidate distribution,
    /// uniform-OCBA allocation and serial execution.
    pub fn new(base: CbasConfig, distribution: Distribution) -> Self {
        Self {
            base,
            distribution,
            allocation: Allocation::UniformOcba,
            backend: ExecBackend::Serial,
            warm: None,
        }
    }

    /// The CBAS-ND family's engine: cross-entropy candidate distribution
    /// with the config's allocation rule (uniform OCBA or Gaussian).
    pub fn from_cbasnd(cfg: &CbasNdConfig) -> Self {
        Self {
            base: cfg.base.clone(),
            distribution: Distribution::CrossEntropy {
                rho: cfg.rho,
                smoothing: cfg.smoothing,
                backtrack_threshold: cfg.backtrack_threshold,
            },
            allocation: cfg.allocation,
            backend: ExecBackend::Serial,
            warm: None,
        }
    }

    /// Overrides the allocation policy.
    pub fn allocation(mut self, allocation: Allocation) -> Self {
        self.allocation = allocation;
        self
    }

    /// Overrides the execution backend.
    pub fn backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Offers an incumbent group to seed the best-so-far. If the
    /// incumbent is feasible for the instance being solved (right size,
    /// valid and distinct members, not blocked, contains the partial-mode
    /// seeds, connected when required) the solve starts from its
    /// willingness instead of from nothing — samples then only replace it
    /// by strictly improving on it. An infeasible incumbent is ignored: a
    /// warm start is an optimization hint, never a constraint.
    ///
    /// Determinism: the sample stream is untouched — a warm-started solve
    /// is a pure function of (instance, config, seed, incumbent).
    pub fn warm_start(mut self, incumbent: Vec<NodeId>) -> Self {
        self.warm = Some(incumbent);
        self
    }

    /// The staged-CBAS parameters in use.
    pub fn base(&self) -> &CbasConfig {
        &self.base
    }

    /// Solves `instance`, deriving all randomness from `seed`.
    pub fn solve(
        &self,
        instance: &WasoInstance,
        mode: StartMode<'_>,
        seed: u64,
    ) -> Result<SolveResult, SolveError> {
        self.solve_controlled(instance, mode, seed, &JobControl::new())
    }

    /// [`StagedEngine::solve`] under a [`JobControl`]: the engine checks
    /// the control at every stage boundary *and between samples* — a
    /// cancel or an elapsed deadline abandons the in-flight stage and
    /// returns the incumbent of the last completed stage, tagged with the
    /// [`Termination`] reason — and publishes progress (stages done,
    /// samples spent, improving incumbents) after every stage. A control
    /// that never trips is invisible: the result is bit-identical to
    /// [`StagedEngine::solve`].
    pub fn solve_controlled(
        &self,
        instance: &WasoInstance,
        mode: StartMode<'_>,
        seed: u64,
        control: &JobControl,
    ) -> Result<SolveResult, SolveError> {
        self.run(instance, mode, seed, control)
            .map(|(result, _)| result)
    }

    /// Solves as one **job** of a [`SharedPool`]: the solve is submitted
    /// to the pool's scheduler and its stages are dealt across the pool's
    /// workers, concurrently with any other jobs (other solves, other
    /// sessions) the pool is serving. Thread creation is amortized across
    /// every job of the process, and a worker panic is healed by the pool
    /// (respawn + re-issue) instead of poisoning it. The pool's worker
    /// count and deal govern only the schedule; the determinism contract
    /// makes both invisible — results are bit-identical to
    /// [`StagedEngine::solve`] for every pool size, deal, and tenant mix.
    /// Serial-backend engines ignore the pool and run on the caller's
    /// thread.
    pub fn solve_in_pool(
        &self,
        pool: &SharedPool,
        instance: &Arc<WasoInstance>,
        mode: StartMode<'_>,
        seed: u64,
    ) -> Result<SolveResult, SolveError> {
        self.solve_in_pool_controlled(pool, instance, mode, seed, &JobControl::new())
    }

    /// [`StagedEngine::solve_in_pool`] under a [`JobControl`] (see
    /// [`StagedEngine::solve_controlled`]): a cancel or elapsed deadline
    /// makes the pool's workers abandon this job's in-flight chunks
    /// between samples and stops the job from dealing further ones — the
    /// pool itself keeps serving its other jobs untouched.
    pub fn solve_in_pool_controlled(
        &self,
        pool: &SharedPool,
        instance: &Arc<WasoInstance>,
        mode: StartMode<'_>,
        seed: u64,
        control: &JobControl,
    ) -> Result<SolveResult, SolveError> {
        if self.backend == ExecBackend::Serial {
            return self.solve_controlled(instance, mode, seed, control);
        }
        let t0 = Instant::now(); // audit:allow(D2): wall-clock feeds SolverStats timing only — never sampling or group choice
        self.validate()?;
        if let Some(deadline) = self.base.deadline {
            control.arm_deadline(deadline);
        }
        let (starts, budgets, shared) = self.prepare(instance, mode)?;
        let ctx = Arc::new(SolveCtx {
            instance: Arc::clone(instance),
            blocked: self.base.blocked.clone(),
            shared,
            seed,
            partial: match mode {
                StartMode::Partial(seeds) => Some(seeds.to_vec()),
                StartMode::Fresh => None,
            },
            stop: Some(control.stop_state()),
        });
        let outcome = {
            let mut job = pool.submit(Arc::clone(&ctx));
            self.stage_loop(
                instance,
                mode,
                &starts,
                &budgets,
                &ctx.shared,
                &mut job,
                control,
            )
        };
        self.finalize(instance, mode, t0, starts.len(), outcome)
            .map(|(result, _)| result)
    }

    /// Rejects out-of-range distribution parameters. A typed error — not
    /// a panic — so user-supplied specs cannot take down a serving
    /// process; the registry builders reject the same ranges at build
    /// time, this is the backstop for programmatic construction.
    fn validate(&self) -> Result<(), SolveError> {
        if let Distribution::CrossEntropy { rho, smoothing, .. } = self.distribution {
            if !(rho > 0.0 && rho <= 1.0) {
                return Err(SolveError::BadParameter {
                    param: "rho",
                    value: rho.to_string(),
                    expected: "in (0, 1]",
                });
            }
            if !(0.0..=1.0).contains(&smoothing) {
                return Err(SolveError::BadParameter {
                    param: "smoothing",
                    value: smoothing.to_string(),
                    expected: "in [0, 1]",
                });
            }
        }
        Ok(())
    }

    /// Start-node selection, stage budgeting and shared-state setup —
    /// everything a solve does before its first sample, identical for
    /// every execution path.
    fn prepare(
        &self,
        instance: &WasoInstance,
        mode: StartMode<'_>,
    ) -> Result<(Vec<NodeId>, Vec<u64>, StageShared), SolveError> {
        let g = instance.graph();
        let n = g.num_nodes();
        let k = instance.k();

        // In Partial mode there is a single "virtual start": the seed set.
        let starts: Vec<NodeId> = match mode {
            StartMode::Fresh => self.base.resolve_starts(instance),
            StartMode::Partial(seeds) => {
                if seeds.is_empty() {
                    return Err(SolveError::NoFeasibleGroup);
                }
                vec![seeds[0]]
            }
        };
        if starts.is_empty() {
            return Err(SolveError::NoFeasibleGroup);
        }
        let m = starts.len();
        let budgets = stage_budgets(self.base.budget, self.base.resolve_stages(instance, m));

        let vectors: Vec<ProbabilityVector> = match self.distribution {
            Distribution::Uniform => Vec::new(),
            Distribution::CrossEntropy { .. } => starts
                .iter()
                .map(|&s| ProbabilityVector::uniform_for_start(n.max(2), k, s))
                .collect(),
        };
        Ok((starts, budgets, StageShared::new(vectors, m)))
    }

    /// The full solve, also returning the per-start-node statistics (test
    /// hook for the `spent == drawn` budget-accounting invariant).
    fn run(
        &self,
        instance: &WasoInstance,
        mode: StartMode<'_>,
        seed: u64,
        control: &JobControl,
    ) -> Result<(SolveResult, Vec<StartStats>), SolveError> {
        let t0 = Instant::now(); // audit:allow(D2): wall-clock feeds SolverStats timing only — never sampling or group choice
        self.validate()?;
        if let Some(deadline) = self.base.deadline {
            control.arm_deadline(deadline);
        }
        let (starts, budgets, shared) = self.prepare(instance, mode)?;

        // Partial-mode samples grow from the same seed set but are
        // independent draws, so every mode follows the configured backend.
        let partial: Option<&[NodeId]> = match mode {
            StartMode::Partial(seeds) => Some(seeds),
            StartMode::Fresh => None,
        };
        let outcome = match self.backend {
            ExecBackend::Serial => {
                let mut sampler = Sampler::for_instance(instance);
                sampler.set_blocked(self.base.blocked.clone());
                self.stage_loop(
                    instance,
                    mode,
                    &starts,
                    &budgets,
                    &shared,
                    &mut SerialExec {
                        instance,
                        shared: &shared,
                        sampler,
                        seed,
                        partial,
                        stop: Some(control.stop_state()),
                    },
                    control,
                )
            }
            ExecBackend::Pool { threads } => std::thread::scope(|scope| {
                // Spawned ONCE per solve; stages only exchange channel
                // messages with the parked workers. (Sessions amortize
                // further: `solve_in_pool` borrows an already-spawned
                // session pool instead.)
                let mut pool = WorkerPool::spawn(
                    scope,
                    threads,
                    instance,
                    &self.base.blocked,
                    &shared,
                    seed,
                    partial,
                    Some(control.stop_state()),
                );
                self.stage_loop(
                    instance, mode, &starts, &budgets, &shared, &mut pool, control,
                )
            }),
        };
        self.finalize(instance, mode, t0, starts.len(), outcome)
    }

    /// Turns a stage loop's outcome into the validated result + stats.
    fn finalize(
        &self,
        instance: &WasoInstance,
        mode: StartMode<'_>,
        t0: Instant,
        m: usize,
        outcome: (BestSolution, Vec<StartStats>, Counters),
    ) -> Result<(SolveResult, Vec<StartStats>), SolveError> {
        let (best, stats, counters) = outcome;
        let (_, mut nodes) = best.ok_or(match counters.termination {
            // No incumbent after a full run: genuinely infeasible.
            Termination::Completed => SolveError::NoFeasibleGroup,
            // Stopped before the first feasible sample: say so instead of
            // claiming infeasibility.
            reason => SolveError::NoIncumbent { reason },
        })?;
        if let StartMode::Partial(seeds) = mode {
            debug_assert!(seeds.iter().all(|s| nodes.contains(s)));
        }
        nodes.sort_unstable();
        let group = Group::new(instance, nodes).map_err(SolveError::Invalid)?;
        debug_assert_eq!(
            stats.iter().map(|s| s.spent).sum::<u64>(),
            counters.drawn,
            "engine must charge exactly the samples it drew"
        );
        let result = SolveResult {
            group,
            stats: SolverStats {
                samples_drawn: counters.drawn,
                stages: counters.stages_done,
                start_nodes: m as u32,
                pruned_start_nodes: counters.pruned,
                backtracks: counters.backtracks,
                truncated: counters.stopped_early,
                termination: counters.termination,
                elapsed: t0.elapsed(),
            },
        };
        Ok((result, stats))
    }

    /// Validates the offered incumbent (if any) against this solve's
    /// instance, mode and blocked set, returning it as the initial
    /// best-so-far. Infeasible incumbents — wrong size, unknown or
    /// duplicate members, missing partial-mode seeds, blocked nodes,
    /// disconnected where connectivity is required — are silently
    /// dropped: the solve then cold-starts exactly as without the hint.
    fn warm_seed(&self, instance: &WasoInstance, mode: StartMode<'_>) -> BestSolution {
        let warm = self.warm.as_ref()?;
        if warm.len() != instance.k() {
            return None;
        }
        if let StartMode::Partial(seeds) = mode {
            if !seeds.iter().all(|s| warm.contains(s)) {
                return None;
            }
        }
        // Validates bounds, distinctness and (when required)
        // connectivity, and computes the incumbent's willingness.
        let group = Group::new(instance, warm.clone()).ok()?;
        if let Some(blocked) = &self.base.blocked {
            if group.nodes().iter().any(|v| blocked.contains(v.index())) {
                return None;
            }
        }
        Some((group.willingness(), group.nodes().to_vec()))
    }

    /// The single stage loop every staged solver runs. Allocation, prune
    /// accounting, execution, in-order merge, best tracking, the
    /// cross-entropy update — and the anytime control (stage-boundary
    /// cancel/deadline checks, patience stops, progress publishing) — all
    /// live here, and only here.
    #[allow(clippy::too_many_arguments)]
    fn stage_loop(
        &self,
        instance: &WasoInstance,
        mode: StartMode<'_>,
        starts: &[NodeId],
        budgets: &[u64],
        shared: &StageShared,
        exec: &mut dyn StageExec,
        control: &JobControl,
    ) -> (BestSolution, Vec<StartStats>, Counters) {
        let g = instance.graph();
        let m = starts.len();
        let gaussian = self.allocation == Allocation::Gaussian;

        let mut stats = vec![StartStats::new(); m];
        let mut gstats = if gaussian {
            vec![GaussStats::new(); m]
        } else {
            Vec::new()
        };
        let mut gammas = vec![f64::NEG_INFINITY; m];
        let mut best: BestSolution = self.warm_seed(instance, mode);
        let mut counters = Counters::default();
        // Reused across stages: the flattened work list lives in `shared`
        // (workers read it), results and the per-start sample buffer here.
        let mut results: Vec<Option<Sample>> = Vec::new();
        let mut stage_samples: Vec<Sample> = Vec::new();
        // Spent samples' node buffers, fed back to the executor each stage
        // (and from there to the samplers — across the job channels for
        // pooled backends), so steady-state sampling allocates nothing.
        let mut slab: Vec<Vec<NodeId>> = Vec::new();
        // Consecutive stages without an incumbent improvement (patience).
        let mut non_improving = 0u32;

        for (stage, &stage_budget) in budgets.iter().enumerate() {
            // The anytime boundary: a cancel or an elapsed deadline stops
            // the solve *between* stages — no further work is dealt, and
            // the incumbent of the stages that did run is the answer.
            if let Some(reason) = control.stop_reason() {
                counters.termination = reason;
                counters.stopped_early = true;
                break;
            }
            let best_before = best.as_ref().map(|(w, _)| *w);
            let alloc = if stage == 0 {
                uniform_split(stage_budget, m, &stats)
            } else {
                let a = match self.allocation {
                    Allocation::UniformOcba => allocate_stage(&stats, stage_budget),
                    Allocation::Gaussian => allocate_stage_gaussian(&gstats, stage_budget),
                };
                // §3.1: zero allocation at stage t prunes the node from t+1.
                for i in 0..m {
                    if a[i] == 0 && !stats[i].pruned && stats[i].sampled() {
                        stats[i].pruned = true;
                        if gaussian {
                            gstats[i].pruned = true;
                        }
                        counters.pruned += 1;
                    }
                }
                a
            };

            // Flatten the stage into independent sample-granularity items
            // (OCBA concentrates most of a stage's budget on the incumbent
            // start node, so per-node parallelism would serialize).
            let n_items = {
                let mut items = shared.write_items();
                items.clear();
                for (i, &ni) in alloc.iter().enumerate() {
                    for q in 0..ni {
                        items.push(WorkItem {
                            start_index: i as u32,
                            start: starts[i],
                            q,
                        });
                    }
                }
                items.len()
            };
            counters.stages_done += 1;
            if n_items == 0 {
                // Vacuous stage (every remaining start pruned/stalled):
                // nothing to deal, nothing to merge — but progress still
                // advances.
                control.publish_stage(counters.stages_done, counters.drawn, None);
                continue;
            }
            results.clear();
            results.resize(n_items, None);
            if !exec.run_stage(stage as u64, &mut results, &mut slab) {
                // The stop signal tripped mid-stage and the executor quit
                // early: some result slots were never drawn. Abandon the
                // stage wholesale — nothing merges, no stats move, the
                // stage counter rolls back — so the outcome is exactly
                // the solve that stopped at the previous stage boundary
                // (the bit-identical-prefix contract), just reached with
                // a far tighter overshoot bound than riding the stage
                // out. (Stall flags set during the abandoned stage are
                // harmless: a stall is a deterministic property of a
                // start node, and no further stage runs to see them.)
                counters.stages_done -= 1;
                counters.termination = control.stop_reason().unwrap_or(Termination::Cancelled);
                counters.stopped_early = true;
                break;
            }

            // Merge in (start node, sample) order — identical for every
            // backend, including the stop-at-first-stall accounting (a
            // stall is a property of the start node's component, so sample
            // 0 stalls iff they all do).
            let mut idx = 0usize;
            for (i, &ni) in alloc.iter().enumerate() {
                if ni == 0 {
                    continue;
                }
                let node_range = idx..idx + ni as usize;
                idx += ni as usize;

                stage_samples.clear();
                let mut attempted = 0u64;
                for j in node_range {
                    attempted += 1;
                    counters.drawn += 1;
                    match results[j].take() {
                        Some(s) => {
                            // Multi-seed growth can finish without bridging
                            // a disconnected required set — such samples
                            // are infeasible and simply discarded (they
                            // still consumed budget).
                            if let StartMode::Partial(seeds) = mode {
                                if seeds.len() > 1
                                    && instance.requires_connectivity()
                                    && !waso_graph::traversal::is_connected_subset(g, &s.nodes)
                                {
                                    slab.push(s.nodes);
                                    continue;
                                }
                            }
                            stats[i].record(s.willingness);
                            if gaussian {
                                gstats[i].moments.push(s.willingness);
                            }
                            if best.as_ref().is_none_or(|(bw, _)| s.willingness > *bw) {
                                best = Some((s.willingness, s.nodes.clone()));
                            }
                            stage_samples.push(s);
                        }
                        None => {
                            // Deterministic stall: the start's component is
                            // smaller than k. All further samples fail too.
                            if !stats[i].pruned {
                                stats[i].pruned = true;
                                if gaussian {
                                    gstats[i].pruned = true;
                                }
                                counters.pruned += 1;
                            }
                            break;
                        }
                    }
                }
                // Charge only what was actually drawn: a stalled node's
                // skipped remainder is never spent (Σ spent == drawn).
                stats[i].spent += attempted;
                if gaussian {
                    gstats[i].spent += attempted;
                }

                // Cross-entropy update (Algorithm 2 lines 35–46).
                if let Distribution::CrossEntropy {
                    rho,
                    smoothing,
                    backtrack_threshold,
                } = self.distribution
                {
                    if !stage_samples.is_empty() {
                        let mut vectors = shared.write_vectors();
                        counters.backtracks += update_vector(
                            &mut vectors[i],
                            &mut gammas[i],
                            &mut stage_samples,
                            rho,
                            smoothing,
                            backtrack_threshold,
                        ) as u32;
                    }
                }
                // The samples are fully consumed — their node buffers go
                // back into the slab for the next stage's draws.
                slab.extend(stage_samples.drain(..).map(|s| s.nodes));
            }

            // End-of-stage anytime bookkeeping: publish progress (and the
            // incumbent, when this stage improved it), then apply the
            // patience rule. None of this can change what any stage
            // computes — only whether the next one runs.
            let improved = match (best_before, &best) {
                (None, Some(_)) => true,
                (Some(before), Some((now, _))) => *now > before,
                _ => false,
            };
            control.publish_stage(
                counters.stages_done,
                counters.drawn,
                if improved {
                    best.as_ref().map(|(w, nodes)| (*w, nodes.as_slice()))
                } else {
                    None
                },
            );
            if let Some(patience) = self.base.patience {
                if improved {
                    non_improving = 0;
                } else {
                    non_improving += 1;
                    if non_improving >= patience && stage + 1 < budgets.len() {
                        // Convergence stop: the solve *completed* (its own
                        // stopping rule fired), but the budget was not
                        // fully spent — `truncated` records that.
                        counters.stopped_early = true;
                        break;
                    }
                }
            }
        }

        (best, stats, counters)
    }
}

type BestSolution = Option<(f64, Vec<NodeId>)>;

#[derive(Debug, Default)]
struct Counters {
    drawn: u64,
    pruned: u32,
    backtracks: u32,
    /// Stages entered (vacuous ones included) — what
    /// [`SolverStats::stages`] reports.
    stages_done: u32,
    /// Why the loop ended; [`Termination::Completed`] unless a cancel or
    /// deadline broke it.
    termination: Termination,
    /// Any early break (cancel, deadline, patience) — sets
    /// [`SolverStats::truncated`].
    stopped_early: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waso_graph::{generate, GraphBuilder, ScoreModel};

    fn random_instance(n: usize, k: usize, seed: u64) -> WasoInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = generate::barabasi_albert(n, 3, &mut rng);
        let g = ScoreModel::paper_default().realize(&topo, &mut rng);
        WasoInstance::new(g, k).unwrap()
    }

    /// A graph with an isolated high-score node that attracts a start slot
    /// but stalls every draw.
    fn stalled_instance() -> WasoInstance {
        let mut b = GraphBuilder::new();
        let hub = b.add_node(100.0);
        let ids: Vec<NodeId> = (0..6).map(|i| b.add_node(i as f64 * 0.1)).collect();
        for w in ids.windows(2) {
            b.add_edge_symmetric(w[0], w[1], 1.0).unwrap();
        }
        let _ = hub;
        WasoInstance::new(b.build(), 3).unwrap()
    }

    fn engine(budget: u64, stages: u32, m: usize, dist: Distribution) -> StagedEngine {
        let base = CbasConfig {
            stages: Some(stages),
            num_start_nodes: Some(m),
            ..CbasConfig::with_budget(budget)
        };
        StagedEngine::new(base, dist)
    }

    #[test]
    fn stalled_starts_are_charged_only_drawn_samples() {
        // Budget-accounting regression: the stalled start breaks out of
        // its loop after one failed draw; `spent` must equal the draws
        // actually made, summing to `samples_drawn` exactly.
        for dist in [
            Distribution::Uniform,
            Distribution::CrossEntropy {
                rho: 0.3,
                smoothing: 0.9,
                backtrack_threshold: None,
            },
        ] {
            let eng = engine(60, 2, 3, dist);
            let (result, stats) = eng
                .run(&stalled_instance(), StartMode::Fresh, 0, &JobControl::new())
                .unwrap();
            let spent: u64 = stats.iter().map(|s| s.spent).sum();
            assert_eq!(spent, result.stats.samples_drawn, "{dist:?}");
            // The stalled start really was charged less than its stage-0
            // allocation (one failed draw, not 60/3 = 20).
            let stalled = stats
                .iter()
                .find(|s| !s.sampled())
                .expect("a stalled start");
            assert_eq!(stalled.spent, 1);
            assert!(result.stats.samples_drawn < 60, "skipped draws uncharged");
            assert!(result.stats.pruned_start_nodes >= 1);
        }
    }

    #[test]
    fn pooled_backend_charges_identically() {
        let eng = engine(
            60,
            2,
            3,
            Distribution::CrossEntropy {
                rho: 0.3,
                smoothing: 0.9,
                backtrack_threshold: None,
            },
        );
        let (serial, s_stats) = eng
            .run(&stalled_instance(), StartMode::Fresh, 0, &JobControl::new())
            .unwrap();
        let pooled = eng.clone().backend(ExecBackend::Pool { threads: 4 });
        let (par, p_stats) = pooled
            .run(&stalled_instance(), StartMode::Fresh, 0, &JobControl::new())
            .unwrap();
        assert_eq!(serial.group, par.group);
        assert_eq!(serial.stats.samples_drawn, par.stats.samples_drawn);
        for (a, b) in s_stats.iter().zip(&p_stats) {
            assert_eq!(a.spent, b.spent);
            assert_eq!(a.pruned, b.pruned);
        }
    }

    #[test]
    fn axes_compose_independently() {
        // Every (distribution, allocation, backend) combination solves and
        // spends the full budget on a feasible graph.
        let inst = random_instance(60, 5, 1);
        let ce = Distribution::CrossEntropy {
            rho: 0.3,
            smoothing: 0.9,
            backtrack_threshold: None,
        };
        for dist in [Distribution::Uniform, ce] {
            for allocation in [Allocation::UniformOcba, Allocation::Gaussian] {
                for backend in [ExecBackend::Serial, ExecBackend::Pool { threads: 3 }] {
                    let eng = engine(80, 4, 6, dist)
                        .allocation(allocation)
                        .backend(backend);
                    let res = eng.solve(&inst, StartMode::Fresh, 7).unwrap();
                    assert_eq!(res.stats.samples_drawn, 80, "{dist:?}/{allocation:?}");
                    assert_eq!(res.group.len(), 5);
                }
            }
        }
    }

    #[test]
    fn backend_choice_never_changes_the_answer() {
        let inst = random_instance(80, 6, 2);
        let ce = Distribution::CrossEntropy {
            rho: 0.3,
            smoothing: 0.9,
            backtrack_threshold: Some(0.01),
        };
        let serial = engine(120, 4, 8, ce)
            .solve(&inst, StartMode::Fresh, 42)
            .unwrap();
        for threads in [1, 2, 4, 8] {
            let par = engine(120, 4, 8, ce)
                .backend(ExecBackend::Pool { threads })
                .solve(&inst, StartMode::Fresh, 42)
                .unwrap();
            assert_eq!(par.group, serial.group, "threads={threads}");
            assert_eq!(par.stats.samples_drawn, serial.stats.samples_drawn);
            assert_eq!(par.stats.backtracks, serial.stats.backtracks);
            assert_eq!(
                par.stats.pruned_start_nodes,
                serial.stats.pruned_start_nodes
            );
        }
    }

    #[test]
    fn partial_mode_is_backend_invariant() {
        // Partial solves are served by the pool too; every backend (and
        // the session-held pool) must agree bit-for-bit.
        let inst = random_instance(50, 6, 8);
        let seeds = [NodeId(0), NodeId(1)];
        let ce = Distribution::CrossEntropy {
            rho: 0.3,
            smoothing: 0.9,
            backtrack_threshold: None,
        };
        let a = engine(60, 3, 4, ce)
            .solve(&inst, StartMode::Partial(&seeds), 2)
            .unwrap();
        for threads in [1, 2, 4] {
            let b = engine(60, 3, 4, ce)
                .backend(ExecBackend::Pool { threads })
                .solve(&inst, StartMode::Partial(&seeds), 2)
                .unwrap();
            assert_eq!(a.group, b.group, "threads={threads}");
            assert_eq!(a.stats.samples_drawn, b.stats.samples_drawn);
        }
        assert!(a.group.contains(NodeId(0)) && a.group.contains(NodeId(1)));
    }

    #[test]
    fn session_pool_solves_are_bit_identical_and_reusable() {
        // One SharedPool serving many solves — fresh and partial, across
        // different instances — must match the per-solve paths exactly.
        let pool = SharedPool::new(3);
        let ce = Distribution::CrossEntropy {
            rho: 0.3,
            smoothing: 0.9,
            backtrack_threshold: Some(0.01),
        };
        for seed in 0..3u64 {
            let inst = Arc::new(random_instance(60, 5, seed));
            let eng = engine(80, 4, 6, ce).backend(ExecBackend::Pool { threads: 7 });
            let direct = eng.solve(&inst, StartMode::Fresh, seed).unwrap();
            let pooled = eng
                .solve_in_pool(&pool, &inst, StartMode::Fresh, seed)
                .unwrap();
            assert_eq!(direct.group, pooled.group, "seed={seed}");
            assert_eq!(direct.stats.samples_drawn, pooled.stats.samples_drawn);

            let seeds = [NodeId(0), NodeId(1)];
            let direct = eng.solve(&inst, StartMode::Partial(&seeds), seed).unwrap();
            let pooled = eng
                .solve_in_pool(&pool, &inst, StartMode::Partial(&seeds), seed)
                .unwrap();
            assert_eq!(direct.group, pooled.group, "partial seed={seed}");
            assert_eq!(direct.stats.backtracks, pooled.stats.backtracks);
        }
    }

    #[test]
    fn cancel_before_the_first_stage_returns_no_incumbent() {
        let inst = random_instance(40, 4, 1);
        for backend in [ExecBackend::Serial, ExecBackend::Pool { threads: 2 }] {
            let eng = engine(200, 4, 3, Distribution::Uniform).backend(backend);
            let control = JobControl::new();
            control.cancel();
            let err = eng
                .solve_controlled(&inst, StartMode::Fresh, 0, &control)
                .unwrap_err();
            assert_eq!(
                err,
                SolveError::NoIncumbent {
                    reason: Termination::Cancelled
                }
            );
            // Nothing was sampled: progress never moved.
            assert_eq!(control.progress().samples_spent, 0);
        }
    }

    #[test]
    fn zero_deadline_stops_before_sampling() {
        let inst = random_instance(40, 4, 2);
        let mut eng = engine(200, 4, 3, Distribution::Uniform);
        eng.base.deadline = Some(std::time::Duration::ZERO);
        let err = eng.solve(&inst, StartMode::Fresh, 0).unwrap_err();
        assert_eq!(
            err,
            SolveError::NoIncumbent {
                reason: Termination::Deadline
            }
        );
    }

    #[test]
    fn deadline_mid_stage_abandons_the_stage_instead_of_riding_it_out() {
        // One enormous stage: a deadline that trips mid-stage must make
        // the executors quit between samples (chunk-granular checks), the
        // engine abandon the stage, and the whole solve return in roughly
        // deadline time — not after millions of further draws. The solve
        // stopped "before its first completed stage", so the typed
        // NoIncumbent error carries the deadline reason.
        let inst = random_instance(120, 6, 6);
        for backend in [ExecBackend::Serial, ExecBackend::Pool { threads: 3 }] {
            let eng = engine(3_000_000, 1, 4, Distribution::Uniform).backend(backend);
            let control = JobControl::new();
            control.arm_deadline(std::time::Duration::from_millis(40));
            let t0 = Instant::now();
            let err = eng
                .solve_controlled(&inst, StartMode::Fresh, 1, &control)
                .unwrap_err();
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(5),
                "{backend:?}: deadline overshoot was not bounded mid-stage"
            );
            assert_eq!(
                err,
                SolveError::NoIncumbent {
                    reason: Termination::Deadline
                },
                "{backend:?}"
            );
            // The abandoned stage never merged: no samples were charged.
            assert_eq!(control.progress().samples_spent, 0, "{backend:?}");
        }
        // Same contract as a job of a SharedPool: the workers abandon the
        // job's chunks between samples; the pool stays serviceable.
        let pool = SharedPool::new(2);
        let inst = Arc::new(inst);
        let eng = engine(3_000_000, 1, 4, Distribution::Uniform)
            .backend(ExecBackend::Pool { threads: 2 });
        let control = JobControl::new();
        control.arm_deadline(std::time::Duration::from_millis(40));
        let t0 = Instant::now();
        let err = eng
            .solve_in_pool_controlled(&pool, &inst, StartMode::Fresh, 1, &control)
            .unwrap_err();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "shared pool"
        );
        assert_eq!(
            err,
            SolveError::NoIncumbent {
                reason: Termination::Deadline
            }
        );
        // The pool keeps serving jobs after the abandoned one.
        let small =
            engine(200, 2, 4, Distribution::Uniform).backend(ExecBackend::Pool { threads: 2 });
        let res = small
            .solve_in_pool(&pool, &inst, StartMode::Fresh, 2)
            .unwrap();
        assert_eq!(res.stats.samples_drawn, 200);
    }

    #[test]
    fn cancel_mid_solve_returns_the_current_incumbent_as_a_prefix() {
        // Cancelling after stage s must return exactly what the first s
        // stages of the uncancelled solve produced — the prefix property
        // behind "handle results are bit-identical truncations".
        // 40 stages of 1k samples each: the cancel (sent the moment the
        // first incumbent arrives) lands tens of stages before the end.
        let inst = random_instance(60, 5, 3);
        let eng = engine(40_000, 40, 4, Distribution::Uniform);
        let control = JobControl::new();
        let rx = control.take_incumbents();
        // Cancel as soon as the first incumbent lands: a racing watcher
        // thread, like a serving cancel would be.
        let cancelled = std::thread::scope(|scope| {
            let control = &control;
            scope.spawn(move || {
                let _ = rx.recv(); // first improving stage completed
                control.cancel();
            });
            eng.solve_controlled(&inst, StartMode::Fresh, 7, control)
        })
        .unwrap();
        assert_eq!(cancelled.stats.termination, Termination::Cancelled);
        assert!(cancelled.stats.truncated);
        assert!(cancelled.stats.stages < 40, "stopped before every stage");
        assert!(cancelled.stats.samples_drawn < 40_000, "budget not spent");
        // The full solve's stage prefix agrees bit-for-bit: replay it
        // with a patience-free engine and compare the incumbent after the
        // same number of stages via the incumbent stream.
        let full_control = JobControl::new();
        let full_rx = full_control.take_incumbents();
        let full = eng
            .solve_controlled(&inst, StartMode::Fresh, 7, &full_control)
            .unwrap();
        assert_eq!(full.stats.samples_drawn, 40_000);
        full_control.finish();
        let best_at_stage: Vec<_> = full_rx.iter().collect();
        let prefix_best = best_at_stage
            .iter()
            .rfind(|i| i.stage <= cancelled.stats.stages)
            .expect("the cancelled run saw at least one incumbent");
        let mut prefix_nodes = prefix_best.nodes.clone();
        prefix_nodes.sort_unstable();
        assert_eq!(
            prefix_nodes,
            cancelled.group.nodes(),
            "cancelled incumbent != full run's incumbent at that stage"
        );
        assert_eq!(full.stats.termination, Termination::Completed);
        assert!(!full.stats.truncated);
    }

    #[test]
    fn patience_stops_after_consecutive_non_improving_stages() {
        // A tiny path graph: the optimum is found in the first stages,
        // after which nothing can improve — patience=2 must cut the
        // remaining stages short.
        let inst = stalled_instance(); // path of 6 + isolated hub, k = 3
        let eng = {
            let mut e = engine(400, 20, 2, Distribution::Uniform);
            e.base.patience = Some(2);
            e
        };
        let res = eng.solve(&inst, StartMode::Fresh, 1).unwrap();
        assert_eq!(res.stats.termination, Termination::Completed);
        assert!(res.stats.truncated, "patience stop is a truncation");
        assert!(res.stats.stages < 20, "stopped early: {}", res.stats.stages);
        assert!(res.stats.samples_drawn < 400);
        // Quality matches the full run (nothing was improving anyway).
        let full = engine(400, 20, 2, Distribution::Uniform)
            .solve(&inst, StartMode::Fresh, 1)
            .unwrap();
        assert_eq!(res.group, full.group);
    }

    #[test]
    fn untripped_control_is_bit_invisible() {
        let inst = random_instance(50, 5, 4);
        let ce = Distribution::CrossEntropy {
            rho: 0.3,
            smoothing: 0.9,
            backtrack_threshold: Some(0.01),
        };
        let plain = engine(100, 4, 6, ce)
            .solve(&inst, StartMode::Fresh, 9)
            .unwrap();
        let control = JobControl::new();
        control.arm_deadline(std::time::Duration::from_secs(3600));
        let watched = engine(100, 4, 6, ce)
            .solve_controlled(&inst, StartMode::Fresh, 9, &control)
            .unwrap();
        assert_eq!(plain.group, watched.group);
        assert_eq!(plain.stats.samples_drawn, watched.stats.samples_drawn);
        assert_eq!(plain.stats.backtracks, watched.stats.backtracks);
        assert_eq!(watched.stats.termination, Termination::Completed);
        // Progress was published along the way. (The published incumbent
        // value is the sampler's accumulated sum; `Group::willingness`
        // recomputes it in sorted-node order — equal up to float
        // associativity.)
        let p = control.progress();
        assert_eq!(p.stages_done, 4);
        assert_eq!(p.samples_spent, 100);
        let published = p.incumbent.expect("an incumbent was published");
        assert!((published - watched.group.willingness()).abs() < 1e-9);
    }

    #[test]
    fn incumbent_stream_is_strictly_improving_and_ends_at_the_answer() {
        let inst = random_instance(60, 5, 5);
        let control = JobControl::new();
        let rx = control.take_incumbents();
        let res = engine(120, 6, 5, Distribution::Uniform)
            .solve_controlled(&inst, StartMode::Fresh, 3, &control)
            .unwrap();
        control.finish();
        let stream: Vec<_> = rx.iter().collect();
        assert!(!stream.is_empty());
        for pair in stream.windows(2) {
            assert!(pair[1].willingness > pair[0].willingness);
            assert!(pair[1].stage > pair[0].stage);
        }
        let last = stream.last().unwrap();
        assert!((last.willingness - res.group.willingness()).abs() < 1e-9);
        let mut nodes = last.nodes.clone();
        nodes.sort_unstable();
        assert_eq!(nodes, res.group.nodes());
    }

    #[test]
    fn bad_parameters_error_instead_of_panicking() {
        let inst = random_instance(20, 3, 0);
        for (rho, smoothing, param) in [
            (0.0, 0.9, "rho"),
            (-0.5, 0.9, "rho"),
            (1.5, 0.9, "rho"),
            (f64::NAN, 0.9, "rho"),
            (0.3, -0.1, "smoothing"),
            (0.3, 1.1, "smoothing"),
            (0.3, f64::NAN, "smoothing"),
        ] {
            let eng = engine(
                40,
                2,
                3,
                Distribution::CrossEntropy {
                    rho,
                    smoothing,
                    backtrack_threshold: None,
                },
            );
            match eng.solve(&inst, StartMode::Fresh, 0) {
                Err(SolveError::BadParameter { param: p, .. }) => assert_eq!(p, param),
                other => {
                    panic!("rho={rho} smoothing={smoothing}: expected BadParameter, got {other:?}")
                }
            }
        }
    }
}

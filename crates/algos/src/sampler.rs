//! Random growth of partial solutions — the inner loop of CBAS and CBAS-ND.
//!
//! A *sample* is one final solution grown from a start node: `VS = {start}`,
//! then `k-1` rounds of drawing a node from the candidate set `VA`
//! (Algorithm 1 lines 17–28, Algorithm 2 lines 17–31). CBAS draws uniformly;
//! CBAS-ND draws with probability proportional to the node-selection vector
//! `p_{i,t}` (restricted and renormalized over `VA`).
//!
//! The sampler owns a reusable [`GrowthWorkspace`] and a weight buffer, so
//! drawing thousands of samples costs no allocation beyond the returned node
//! lists.

use rand::{Rng, RngExt};
use waso_core::{GrowthWorkspace, WasoInstance};
use waso_graph::{BitSet, NodeId, SocialGraph};

use crate::cross_entropy::ProbabilityVector;

/// One sampled final solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The selected nodes, in growth order (index 0 is the start node).
    pub nodes: Vec<NodeId>,
    /// `W(nodes)`.
    pub willingness: f64,
}

/// Reusable sample generator.
#[derive(Debug)]
pub struct Sampler {
    ws: GrowthWorkspace,
    weights: Vec<f64>,
    /// Recycled node buffers: successful draws pop one instead of
    /// allocating, so a steady-state stage whose consumed samples are fed
    /// back via [`Sampler::recycle`] allocates nothing at all.
    spare: Vec<Vec<NodeId>>,
}

impl Sampler {
    /// Creates a sampler for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            ws: GrowthWorkspace::new(n),
            weights: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// Creates a sampler sized for `instance`, pre-reserving the growth
    /// buffers for groups of `k` so the first samples of a pooled worker
    /// do not pay reallocation either ([`GrowthWorkspace::reserve`]).
    pub fn for_instance(instance: &WasoInstance) -> Self {
        let g = instance.graph();
        let mut s = Self::new(g.num_nodes());
        s.ws.reserve(instance.k(), g.max_degree());
        // The cumulative-weight buffer grows to the frontier size, which is
        // bounded by both k·max_degree (every member contributes at most its
        // neighbourhood) and n. Reserving it here keeps the first weighted
        // draws of a fresh pooled worker reallocation-free too.
        let max_frontier = instance
            .k()
            .saturating_mul(g.max_degree())
            .min(g.num_nodes());
        s.weights.reserve(max_frontier);
        s
    }

    /// Sets the blocked node set (declined invitees, §4.4.1).
    pub fn set_blocked(&mut self, blocked: Option<BitSet>) {
        self.ws.set_blocked(blocked);
    }

    /// Returns a spent sample's node buffer for reuse by a future draw.
    /// The staged engine feeds the buffers of merged samples back through
    /// here (via the executors' slab), making its sample hot path
    /// allocation-free after the first stage.
    pub fn recycle(&mut self, buf: Vec<NodeId>) {
        self.spare.push(buf);
    }

    /// Draws one sample by uniform candidate selection (CBAS). Returns
    /// `None` when growth stalls before reaching `k` (start node's component
    /// too small).
    pub fn sample_uniform<R: Rng + ?Sized>(
        &mut self,
        instance: &WasoInstance,
        start: NodeId,
        rng: &mut R,
    ) -> Option<Sample> {
        self.grow(instance, &[start], None, rng)
    }

    /// Draws one sample, uniform when `probs` is `None`, weighted
    /// otherwise — the single entry point the staged engine's executors
    /// dispatch through ([`crate::engine::StagedEngine`]).
    pub fn sample<R: Rng + ?Sized>(
        &mut self,
        instance: &WasoInstance,
        start: NodeId,
        probs: Option<&ProbabilityVector>,
        rng: &mut R,
    ) -> Option<Sample> {
        self.grow(instance, &[start], probs, rng)
    }

    /// Draws one sample with candidate probabilities from `probs` (CBAS-ND).
    pub fn sample_weighted<R: Rng + ?Sized>(
        &mut self,
        instance: &WasoInstance,
        start: NodeId,
        probs: &ProbabilityVector,
        rng: &mut R,
    ) -> Option<Sample> {
        self.grow(instance, &[start], Some(probs), rng)
    }

    /// Draws one sample growing from an existing partial solution (online
    /// replanning seeds with the confirmed attendees).
    pub fn sample_from_partial<R: Rng + ?Sized>(
        &mut self,
        instance: &WasoInstance,
        seeds: &[NodeId],
        probs: Option<&ProbabilityVector>,
        rng: &mut R,
    ) -> Option<Sample> {
        self.grow(instance, seeds, probs, rng)
    }

    fn grow<R: Rng + ?Sized>(
        &mut self,
        instance: &WasoInstance,
        seeds: &[NodeId],
        probs: Option<&ProbabilityVector>,
        rng: &mut R,
    ) -> Option<Sample> {
        let g = instance.graph();
        let k = instance.k();
        debug_assert!(seeds.len() <= k, "more seeds than the group size");

        self.ws.reset();
        if instance.requires_connectivity() {
            if seeds.len() == 1 {
                self.ws.seed(g, seeds[0]);
            } else {
                self.ws.seed_set(g, seeds);
            }
        } else {
            // Unconstrained growth: candidate set is every node. Multi-seed
            // free growth seeds the first and adds the rest as candidates.
            self.ws.seed_free(g, seeds[0]);
            for &s in &seeds[1..] {
                self.ws.add(g, s);
            }
        }

        while self.ws.len() < k {
            let frontier_len = self.ws.frontier().len();
            if frontier_len == 0 {
                return None; // stalled: component exhausted
            }
            let pick = match probs {
                None => {
                    // Uniform selection over VA (CBAS, Algorithm 1 line 22).
                    self.ws.frontier().item(rng.random_range(0..frontier_len))
                }
                Some(p) => {
                    // Weighted selection over VA (CBAS-ND, Algorithm 2
                    // line 24): cumulative inverse-transform over the
                    // frontier's current probabilities.
                    self.weights.clear();
                    let mut total = 0.0;
                    for idx in 0..frontier_len {
                        let v = self.ws.frontier().item(idx);
                        let w = p.get(v).max(ProbabilityVector::MIN_PROB);
                        total += w;
                        self.weights.push(total);
                    }
                    let t = rng.random::<f64>() * total;
                    let idx = self
                        .weights
                        .partition_point(|&cum| cum <= t)
                        .min(frontier_len - 1);
                    self.ws.frontier().item(idx)
                }
            };
            self.ws.add(g, pick);
        }

        let mut nodes = self.spare.pop().unwrap_or_default();
        nodes.clear();
        nodes.extend_from_slice(self.ws.selected());
        Some(Sample {
            nodes,
            willingness: self.ws.willingness(),
        })
    }

    /// The underlying workspace (for gain previews by greedy-style callers).
    pub fn workspace(&mut self) -> &mut GrowthWorkspace {
        &mut self.ws
    }
}

/// Selects the `m` start nodes of CBAS phase 1: the nodes with the largest
/// `η + Σ incident τ` ([`SocialGraph::start_node_score`]), skipping blocked
/// nodes. Ties break toward smaller ids (determinism). `O(n log m)`.
pub fn select_start_nodes(g: &SocialGraph, m: usize, blocked: Option<&BitSet>) -> Vec<NodeId> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    /// Min-heap entry: the *worst* kept candidate sits on top.
    struct Entry {
        score: f64,
        node: u32,
    }
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse: BinaryHeap is a max-heap, we want the minimum score on
            // top. Higher node id = worse on ties, so it pops first.
            other
                .score
                .partial_cmp(&self.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.node.cmp(&self.node).reverse())
        }
    }

    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(m + 1);
    for v in g.node_ids() {
        if blocked.is_some_and(|b| b.contains(v.index())) {
            continue;
        }
        let score = g.start_node_score(v);
        heap.push(Entry { score, node: v.0 });
        if heap.len() > m {
            heap.pop();
        }
    }
    let mut picked: Vec<(f64, u32)> = heap.into_iter().map(|e| (e.score, e.node)).collect();
    // Highest score first; ties by smaller id.
    picked.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.1.cmp(&b.1))
    });
    picked.into_iter().map(|(_, v)| NodeId(v)).collect()
}

/// The paper's default number of start nodes, `m = ⌈n/k⌉` (§5.1: "The
/// default m is set to be n/k since n/k different k-person groups can be
/// partitioned from a network with n").
pub fn default_num_start_nodes(n: usize, k: usize) -> usize {
    n.div_ceil(k).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waso_core::{willingness, Group, WasoInstance};
    use waso_graph::{generate, GraphBuilder};

    fn line_instance(k: usize) -> WasoInstance {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..6).map(|i| b.add_node(i as f64)).collect();
        for w in ids.windows(2) {
            b.add_edge_symmetric(w[0], w[1], 0.5).unwrap();
        }
        WasoInstance::new(b.build(), k).unwrap()
    }

    #[test]
    fn uniform_samples_are_feasible() {
        let inst = line_instance(3);
        let mut s = Sampler::new(6);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let sample = s.sample_uniform(&inst, NodeId(2), &mut rng).unwrap();
            assert_eq!(sample.nodes.len(), 3);
            assert_eq!(sample.nodes[0], NodeId(2));
            // Validates connectivity + willingness.
            let group = Group::new(&inst, sample.nodes.clone()).unwrap();
            assert!((group.willingness() - sample.willingness).abs() < 1e-9);
        }
    }

    #[test]
    fn stalled_growth_returns_none() {
        // Two components of size 2; k = 3 unreachable.
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..4).map(|_| b.add_node(1.0)).collect();
        b.add_edge_symmetric(ids[0], ids[1], 1.0).unwrap();
        b.add_edge_symmetric(ids[2], ids[3], 1.0).unwrap();
        let inst = WasoInstance::new(b.build(), 3).unwrap();
        let mut s = Sampler::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(s.sample_uniform(&inst, NodeId(0), &mut rng).is_none());
    }

    #[test]
    fn unconstrained_growth_reaches_any_node() {
        let mut b = GraphBuilder::new();
        for _ in 0..4 {
            b.add_node(1.0);
        }
        // No edges at all: only WASO-dis instances are solvable.
        let inst = WasoInstance::without_connectivity(b.build(), 3).unwrap();
        let mut s = Sampler::new(4);
        let mut rng = StdRng::seed_from_u64(2);
        let sample = s.sample_uniform(&inst, NodeId(1), &mut rng).unwrap();
        assert_eq!(sample.nodes.len(), 3);
        assert_eq!(sample.willingness, 3.0);
    }

    #[test]
    fn weighted_sampling_respects_zeroed_probabilities() {
        // Star centre 0 with leaves 1..5; k=2. Suppress all leaves except 3.
        let g = generate::star_topology(6).into_unit_graph();
        let inst = WasoInstance::new(g, 2).unwrap();
        let mut probs = ProbabilityVector::uniform(6, 2);
        for leaf in [1u32, 2, 4, 5] {
            probs.set(NodeId(leaf), 0.0);
        }
        probs.set(NodeId(3), 1.0);
        let mut s = Sampler::new(6);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = 0;
        for _ in 0..100 {
            let sample = s
                .sample_weighted(&inst, NodeId(0), &probs, &mut rng)
                .unwrap();
            if sample.nodes.contains(&NodeId(3)) {
                hits += 1;
            }
        }
        // MIN_PROB keeps zeroed nodes possible but vanishingly unlikely.
        assert!(
            hits >= 99,
            "expected nearly all samples to pick v3, got {hits}"
        );
    }

    #[test]
    fn partial_seeding_keeps_confirmed_members() {
        let inst = line_instance(4);
        let mut s = Sampler::new(6);
        let mut rng = StdRng::seed_from_u64(4);
        let seeds = [NodeId(2), NodeId(3)];
        for _ in 0..20 {
            let sample = s
                .sample_from_partial(&inst, &seeds, None, &mut rng)
                .unwrap();
            assert_eq!(sample.nodes.len(), 4);
            assert!(sample.nodes.contains(&NodeId(2)));
            assert!(sample.nodes.contains(&NodeId(3)));
        }
    }

    #[test]
    fn blocked_nodes_are_never_sampled() {
        let inst = line_instance(3);
        let mut s = Sampler::new(6);
        let mut blocked = BitSet::new(6);
        blocked.insert(4);
        s.set_blocked(Some(blocked));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            if let Some(sample) = s.sample_uniform(&inst, NodeId(3), &mut rng) {
                assert!(!sample.nodes.contains(&NodeId(4)));
            }
        }
    }

    #[test]
    fn sample_willingness_matches_full_evaluation() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generate::barabasi_albert(60, 3, &mut rng).into_unit_graph();
        let inst = WasoInstance::new(g, 8).unwrap();
        let mut s = Sampler::new(60);
        for seed in 0..20u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let sample = s.sample_uniform(&inst, NodeId(0), &mut r).unwrap();
            let full = willingness(inst.graph(), &sample.nodes);
            assert!(
                (full - sample.willingness).abs() < 1e-9,
                "incremental {} vs full {full}",
                sample.willingness
            );
        }
    }

    #[test]
    fn start_node_selection_matches_example_one() {
        // Example 1 (Figure 3): v3 and v10 have the largest score sums.
        // We reproduce the scoring rule on a small synthetic: scores are
        // η + Σ incident τ (each edge once).
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| b.add_node([0.1, 0.9, 0.5, 0.2][i]))
            .collect();
        b.add_edge_symmetric(ids[0], ids[1], 1.0).unwrap(); // v1: 0.9+1+0.2 = 2.1
        b.add_edge_symmetric(ids[1], ids[2], 0.2).unwrap(); // v2: 0.5+0.2+0.3 = 1.0
        b.add_edge_symmetric(ids[2], ids[3], 0.3).unwrap(); // v3: 0.2+0.3 = 0.5
        let g = b.build(); // v0: 0.1+1.0 = 1.1
        let picked = select_start_nodes(&g, 2, None);
        assert_eq!(picked, vec![NodeId(1), NodeId(0)]);
    }

    #[test]
    fn start_node_selection_ties_break_to_lower_id() {
        let mut b = GraphBuilder::new();
        for _ in 0..5 {
            b.add_node(1.0);
        }
        let g = b.build();
        assert_eq!(
            select_start_nodes(&g, 3, None),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn start_node_selection_skips_blocked() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(i as f64);
        }
        let g = b.build();
        let mut blocked = BitSet::new(4);
        blocked.insert(3);
        assert_eq!(
            select_start_nodes(&g, 2, Some(&blocked)),
            vec![NodeId(2), NodeId(1)]
        );
    }

    #[test]
    fn start_node_selection_handles_m_larger_than_n() {
        let mut b = GraphBuilder::new();
        b.add_node(1.0);
        b.add_node(2.0);
        let g = b.build();
        let picked = select_start_nodes(&g, 10, None);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0], NodeId(1));
    }

    #[test]
    fn default_m_is_n_over_k() {
        assert_eq!(default_num_start_nodes(100, 10), 10);
        assert_eq!(default_num_start_nodes(101, 10), 11);
        assert_eq!(default_num_start_nodes(5, 10), 1);
    }
}

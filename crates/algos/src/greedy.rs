//! `DGreedy` — the deterministic greedy baseline (§1, §3).
//!
//! Starts from the node with the largest interest score ("only chooses v1 as
//! the start node, who enjoys the activity the most at the first iteration",
//! §1) and repeatedly adds the candidate with the largest willingness
//! increment. Figure 1's counterexample — greedy reaching 27 while the
//! optimum is 30 — is reproduced in this module's tests.

use std::time::Instant;

use waso_core::{Group, WasoInstance};
use waso_graph::NodeId;

use crate::sampler::Sampler;
use crate::{SolveError, SolveResult, Solver, SolverStats};

/// Deterministic greedy: max-η start node, max-Δ expansion, ids break ties.
#[derive(Debug, Clone, Default)]
pub struct DGreedy {
    /// Fixed start node (the "-i" user-study mode pins the initiator);
    /// `None` uses the max-interest node.
    pub start: Option<NodeId>,
}

impl DGreedy {
    /// Greedy from the max-interest start node.
    pub fn new() -> Self {
        Self { start: None }
    }

    /// Greedy from a pinned start node.
    pub fn from_start(start: NodeId) -> Self {
        Self { start: Some(start) }
    }

    fn pick_start(&self, instance: &WasoInstance) -> Result<NodeId, SolveError> {
        if let Some(s) = self.start {
            if s.0 >= instance.graph().num_nodes() as u32 {
                return Err(SolveError::NoFeasibleGroup);
            }
            return Ok(s);
        }
        let g = instance.graph();
        g.node_ids()
            .max_by(|a, b| {
                g.interest(*a)
                    .partial_cmp(&g.interest(*b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // max_by keeps the *last* max; prefer smaller ids by
                    // ranking equal-interest higher ids as "smaller".
                    .then_with(|| b.0.cmp(&a.0))
            })
            .ok_or(SolveError::NoFeasibleGroup)
    }
}

impl Solver for DGreedy {
    fn name(&self) -> &'static str {
        "dgreedy"
    }

    /// Deterministic; guarantees at most *one* required attendee (the
    /// pinned start node).
    fn capabilities(&self) -> crate::Capabilities {
        crate::Capabilities {
            required_attendees: true,
            ..crate::Capabilities::default()
        }
    }

    /// A single required attendee is honoured by pinning it as the start
    /// node; more than one cannot be guaranteed by a greedy pass and is
    /// rejected rather than silently dropped.
    fn solve_with_required(
        &mut self,
        instance: &WasoInstance,
        required: &[NodeId],
        seed: u64,
    ) -> Result<SolveResult, SolveError> {
        match required {
            [] => self.solve_seeded(instance, seed),
            [v] => DGreedy::from_start(*v).solve_seeded(instance, seed),
            _ => Err(SolveError::RequiredUnsupported {
                solver: self.name(),
            }),
        }
    }

    fn solve_seeded(
        &mut self,
        instance: &WasoInstance,
        _seed: u64,
    ) -> Result<SolveResult, SolveError> {
        let t0 = Instant::now(); // audit:allow(D2): wall-clock feeds SolverStats timing only — never sampling or group choice
        let g = instance.graph();
        let start = self.pick_start(instance)?;

        let mut sampler = Sampler::new(g.num_nodes());
        let ws = sampler.workspace();
        ws.reset();
        if instance.requires_connectivity() {
            ws.seed(g, start);
        } else {
            ws.seed_free(g, start);
        }

        while ws.len() < instance.k() {
            let frontier = ws.frontier();
            if frontier.is_empty() {
                return Err(SolveError::NoFeasibleGroup);
            }
            // Largest increment; ties toward the smaller node id.
            let mut best: Option<(f64, NodeId)> = None;
            for idx in 0..frontier.len() {
                let v = frontier.item(idx);
                let gain = ws.gain(g, v);
                let better = match best {
                    None => true,
                    Some((bg, bv)) => gain > bg || (gain == bg && v.0 < bv.0),
                };
                if better {
                    best = Some((gain, v));
                }
            }
            let (_, pick) = best.expect("non-empty frontier produced no candidate");
            ws.add(g, pick);
        }

        let nodes = ws.selected().to_vec();
        let group = Group::new(instance, nodes).map_err(SolveError::Invalid)?;
        Ok(SolveResult {
            group,
            stats: SolverStats {
                samples_drawn: 1,
                stages: 1,
                start_nodes: 1,
                elapsed: t0.elapsed(),
                ..SolverStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_graph::GraphBuilder;

    /// The Figure-1 counterexample (see DESIGN.md): path
    /// v1 -1- v2 -2- v3 -4- v4 with η = (8, 7, 6, 5).
    fn figure1_instance() -> WasoInstance {
        let mut b = GraphBuilder::new();
        let v1 = b.add_node(8.0);
        let v2 = b.add_node(7.0);
        let v3 = b.add_node(6.0);
        let v4 = b.add_node(5.0);
        b.add_edge_symmetric(v1, v2, 1.0).unwrap();
        b.add_edge_symmetric(v2, v3, 2.0).unwrap();
        b.add_edge_symmetric(v3, v4, 4.0).unwrap();
        WasoInstance::new(b.build(), 3).unwrap()
    }

    #[test]
    fn greedy_falls_into_figure1_trap() {
        let res = DGreedy::new().solve_seeded(&figure1_instance(), 0).unwrap();
        // Greedy picks v1 (max η), then v2 (Δ = 7+2·1 = 9), then v3
        // (Δ = 6+2·2 = 10): willingness 27, missing the optimum 30.
        assert_eq!(res.group.nodes(), &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(res.group.willingness(), 27.0);
    }

    #[test]
    fn pinned_start_escapes_the_trap() {
        // Starting from v3: Δ(v4) = 5+2·4 = 13 beats Δ(v2) = 7+2·2 = 11,
        // then v2 completes {v2,v3,v4} = 30. (Starting from v2 still falls
        // into the trap: Δ(v1) = Δ(v3) = 10 ties toward the smaller id.)
        let res = DGreedy::from_start(NodeId(2))
            .solve_seeded(&figure1_instance(), 0)
            .unwrap();
        assert_eq!(res.group.willingness(), 30.0);

        let still_trapped = DGreedy::from_start(NodeId(1))
            .solve_seeded(&figure1_instance(), 0)
            .unwrap();
        assert_eq!(still_trapped.group.willingness(), 27.0);
    }

    #[test]
    fn invalid_pinned_start_fails() {
        let err = DGreedy::from_start(NodeId(99))
            .solve_seeded(&figure1_instance(), 0)
            .unwrap_err();
        assert_eq!(err, SolveError::NoFeasibleGroup);
    }

    #[test]
    fn greedy_is_deterministic_across_seeds() {
        let inst = figure1_instance();
        let a = DGreedy::new().solve_seeded(&inst, 1).unwrap();
        let b = DGreedy::new().solve_seeded(&inst, 999).unwrap();
        assert_eq!(a.group, b.group);
    }

    #[test]
    fn ties_break_toward_smaller_ids() {
        // Identical scores everywhere: start = v0, then lowest-id frontier.
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..4).map(|_| b.add_node(1.0)).collect();
        for &u in &ids {
            for &v in &ids {
                if u.0 < v.0 {
                    b.add_edge_symmetric(u, v, 0.5).unwrap();
                }
            }
        }
        let inst = WasoInstance::new(b.build(), 2).unwrap();
        let res = DGreedy::new().solve_seeded(&inst, 0).unwrap();
        assert_eq!(res.group.nodes(), &[NodeId(0), NodeId(1)]);
    }

    #[test]
    fn too_small_component_is_infeasible() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(10.0);
        let c = b.add_node(1.0);
        let d = b.add_node(1.0);
        b.add_edge_symmetric(c, d, 1.0).unwrap();
        let _ = a;
        let inst = WasoInstance::new(b.build(), 2).unwrap();
        // Start = a (max interest, isolated) → stalls.
        let err = DGreedy::new().solve_seeded(&inst, 0).unwrap_err();
        assert_eq!(err, SolveError::NoFeasibleGroup);
    }

    #[test]
    fn unconstrained_greedy_takes_best_nodes_anywhere() {
        // Disconnected high-interest nodes are reachable without the
        // connectivity constraint.
        let mut b = GraphBuilder::new();
        let a = b.add_node(10.0);
        let c = b.add_node(9.0);
        let d = b.add_node(1.0);
        b.add_edge_symmetric(a, d, 0.1).unwrap();
        let _ = c;
        let inst = WasoInstance::without_connectivity(b.build(), 2).unwrap();
        let res = DGreedy::new().solve_seeded(&inst, 0).unwrap();
        assert_eq!(res.group.nodes(), &[NodeId(0), NodeId(1)]);
        assert_eq!(res.group.willingness(), 19.0);
    }

    #[test]
    fn stats_reflect_single_deterministic_pass() {
        let res = DGreedy::new().solve_seeded(&figure1_instance(), 0).unwrap();
        assert_eq!(res.stats.samples_drawn, 1);
        assert_eq!(res.stats.stages, 1);
        assert_eq!(res.stats.start_nodes, 1);
    }
}

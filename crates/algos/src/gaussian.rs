//! Gaussian computational-budget allocation (Appendix A) — the `CBAS-ND-G`
//! variant of Figure 6(b).
//!
//! When per-start-node willingness samples are modelled as
//! `J_i ~ N(μ_i, σ_i²)` instead of uniform, the probability that start node
//! `v_i` beats the incumbent `v_b` is
//!
//! ```text
//! p(J*_b ≤ J*_i) = 1 - ∫ N_b Φ_b(x)^{N_b-1} φ_b(x) Φ_i(x)^{N_i} dx
//! ```
//!
//! which "is necessary to be computed numerically because the Φ(x) function
//! contains erf(x)" (Appendix A). We evaluate the integrand in log space
//! (the powers `Φ^N` underflow long before they stop mattering) with
//! composite Gauss–Legendre quadrature, then allocate budget proportionally
//! to these win probabilities, mirroring Eq. (3).

use waso_stats::descriptive::Welford;
use waso_stats::integrate::gauss_legendre;
use waso_stats::normal::{normal_cdf, normal_pdf};

/// Which budget-allocation rule a staged solver uses — the allocation
/// axis of the [`crate::engine::StagedEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allocation {
    /// The paper's main rule: uniform-distribution OCBA (Theorem 3).
    UniformOcba,
    /// The Appendix-A rule: Gaussian OCBA (`CBAS-ND-G`).
    Gaussian,
}

/// Per-start-node Gaussian sample statistics.
#[derive(Debug, Clone, Default)]
pub struct GaussStats {
    /// Streaming moments of the sampled willingness.
    pub moments: Welford,
    /// Cumulative budget spent (`N_i`).
    pub spent: u64,
    /// Pruned from allocation.
    pub pruned: bool,
}

impl GaussStats {
    /// A fresh start node.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` once the node has two samples (a variance exists).
    pub fn usable(&self) -> bool {
        self.moments.count() >= 2
    }
}

/// `p(J*_b ≤ J*_i)` for Gaussian `J_b ~ N(mu_b, sd_b²)` (max of `n_b`
/// draws) and `J_i ~ N(mu_i, sd_i²)` (max of `n_i` draws), by quadrature.
///
/// Degenerate spreads fall back to point-mass comparisons.
pub fn prob_challenger_wins(mu_b: f64, sd_b: f64, n_b: f64, mu_i: f64, sd_i: f64, n_i: f64) -> f64 {
    debug_assert!(n_b >= 1.0 && n_i >= 1.0);
    if sd_b <= 0.0 && sd_i <= 0.0 {
        // Two point masses.
        return if mu_i >= mu_b { 1.0 } else { 0.0 };
    }
    if sd_b <= 0.0 {
        // J*_b is exactly mu_b: p = p(J*_i ≥ mu_b) = 1 - Φ_i(mu_b)^{N_i}.
        return 1.0 - normal_cdf(mu_b, mu_i, sd_i).powf(n_i);
    }
    if sd_i <= 0.0 {
        // J*_i is exactly mu_i: p = p(J*_b ≤ mu_i) = Φ_b(mu_i)^{N_b}.
        return normal_cdf(mu_i, mu_b, sd_b).powf(n_b);
    }

    let lo = (mu_b - 8.0 * sd_b).min(mu_i - 8.0 * sd_i);
    let hi = (mu_b + 8.0 * sd_b).max(mu_i + 8.0 * sd_i);
    // Integrand of p(J*_i < J*_b): density of J*_b times cdf of J*_i,
    // evaluated in log space to survive large N.
    let ln_nb = n_b.ln();
    let integrand = |x: f64| {
        let phi_b = normal_cdf(x, mu_b, sd_b);
        let phi_i = normal_cdf(x, mu_i, sd_i);
        let pdf_b = normal_pdf(x, mu_b, sd_b);
        if phi_b <= 0.0 || pdf_b <= 0.0 {
            return 0.0;
        }
        if phi_i <= 0.0 {
            return 0.0;
        }
        let ln = ln_nb + (n_b - 1.0) * phi_b.ln() + pdf_b.ln() + n_i * phi_i.ln();
        ln.exp()
    };
    let p_b_wins = gauss_legendre(integrand, lo, hi, 64).clamp(0.0, 1.0);
    1.0 - p_b_wins
}

/// Allocates `stage_budget` across start nodes proportionally to each
/// node's probability of beating the incumbent. Mirrors
/// [`crate::ocba::allocate_stage`]'s contract: zero for pruned/unusable
/// nodes, exact budget sum, incumbent-biased remainders.
pub fn allocate_stage_gaussian(stats: &[GaussStats], stage_budget: u64) -> Vec<u64> {
    let mut alloc = vec![0u64; stats.len()];
    if stage_budget == 0 {
        return alloc;
    }
    let live: Vec<usize> = (0..stats.len())
        .filter(|&i| !stats[i].pruned && stats[i].usable())
        .collect();
    if live.is_empty() {
        return alloc;
    }
    // Incumbent = largest sample mean + spread proxy (the best observed max
    // is the uniform rule's d_i; for the Gaussian rule the paper compares
    // J*, we use the node maximizing the observed best sample).
    let b = *live
        .iter()
        .max_by(|&&x, &&y| {
            stats[x]
                .moments
                .max()
                .partial_cmp(&stats[y].moments.max())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| y.cmp(&x))
        })
        .expect("live is non-empty");

    let (mu_b, sd_b) = (stats[b].moments.mean(), stats[b].moments.std_dev());
    let n_b = stats[b].spent.max(1) as f64;
    let weights: Vec<f64> = live
        .iter()
        .map(|&i| {
            if i == b {
                // p(J*_b ≤ J*_b) = 1/2 analytically (ties broken either way).
                return 0.5;
            }
            let s = &stats[i];
            prob_challenger_wins(
                mu_b,
                sd_b,
                n_b,
                s.moments.mean(),
                s.moments.std_dev(),
                s.spent.max(1) as f64,
            )
        })
        .collect();

    crate::ocba::distribute(&mut alloc, &live, &weights, stage_budget, b);
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauss(mean: f64, sd: f64, count: u64) -> GaussStats {
        // Feed a symmetric three-point sample with the requested moments.
        let mut m = Welford::new();
        m.push(mean - sd * (1.5f64).sqrt());
        m.push(mean);
        m.push(mean + sd * (1.5f64).sqrt());
        GaussStats {
            moments: m,
            spent: count,
            pruned: false,
        }
    }

    #[test]
    fn equal_nodes_split_evenly() {
        // Identical distributions: p = 1/2 each way → even split.
        let p = prob_challenger_wins(10.0, 2.0, 5.0, 10.0, 2.0, 5.0);
        assert!((p - 0.5).abs() < 1e-3, "got {p}");
    }

    #[test]
    fn dominated_challenger_gets_near_zero() {
        let p = prob_challenger_wins(100.0, 1.0, 10.0, 50.0, 1.0, 10.0);
        assert!(p < 1e-6, "got {p}");
    }

    #[test]
    fn dominant_challenger_gets_near_one() {
        let p = prob_challenger_wins(50.0, 1.0, 10.0, 100.0, 1.0, 10.0);
        assert!(p > 1.0 - 1e-6, "got {p}");
    }

    #[test]
    fn more_samples_sharpen_the_incumbent() {
        // With more incumbent draws, a slightly-worse challenger's win
        // probability drops.
        let few = prob_challenger_wins(10.0, 2.0, 3.0, 9.0, 2.0, 3.0);
        let many = prob_challenger_wins(10.0, 2.0, 100.0, 9.0, 2.0, 3.0);
        assert!(many < few, "few={few}, many={many}");
    }

    #[test]
    fn degenerate_spreads() {
        assert_eq!(prob_challenger_wins(5.0, 0.0, 3.0, 6.0, 0.0, 3.0), 1.0);
        assert_eq!(prob_challenger_wins(5.0, 0.0, 3.0, 4.0, 0.0, 3.0), 0.0);
        // Point-mass incumbent vs spread challenger.
        let p = prob_challenger_wins(5.0, 0.0, 3.0, 5.0, 1.0, 1.0);
        assert!((p - 0.5).abs() < 1e-3, "got {p}");
    }

    #[test]
    fn allocation_sums_and_favors_the_best() {
        let stats = vec![
            gauss(10.0, 1.0, 10),
            gauss(6.0, 1.0, 10),
            gauss(9.5, 1.0, 10),
        ];
        let alloc = allocate_stage_gaussian(&stats, 100);
        assert_eq!(alloc.iter().sum::<u64>(), 100);
        assert!(alloc[0] > alloc[1], "{alloc:?}");
        assert!(alloc[2] > alloc[1], "{alloc:?}");
    }

    #[test]
    fn pruned_and_unusable_nodes_get_zero() {
        let mut stats = vec![gauss(10.0, 1.0, 10), gauss(8.0, 1.0, 10), GaussStats::new()];
        stats[1].pruned = true;
        let alloc = allocate_stage_gaussian(&stats, 50);
        assert_eq!(alloc[1], 0);
        assert_eq!(alloc[2], 0);
        assert_eq!(alloc.iter().sum::<u64>(), 50);
    }

    #[test]
    fn empty_everything_allocates_nothing() {
        let stats = vec![GaussStats::new(), GaussStats::new()];
        assert_eq!(allocate_stage_gaussian(&stats, 10), vec![0, 0]);
        assert_eq!(allocate_stage_gaussian(&[], 10), Vec::<u64>::new());
    }
}

//! # waso-algos
//!
//! The paper's solvers and their supporting machinery.
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`greedy`] | §1, §3 | `DGreedy`, the deterministic greedy baseline |
//! | [`rgreedy`] | §4.1 | `RGreedy`, randomized greedy with willingness-proportional selection |
//! | [`sampler`] | §3.1 | random growth of partial solutions (uniform / probability-vector weighted) |
//! | [`ocba`] | §3.1–3.2 | computational-budget allocation across start nodes, stage derivation |
//! | [`engine`] | §3–§4, §5.3.1 | **the** staged-sampling loop: allocation × distribution × backend |
//! | [`exec`] | §5.3.1 | execution backends: serial, per-solve worker pool, the process-wide self-healing [`SharedPool`] |
//! | [`cbas`] | §3 | `Cbas` — the engine with uniform candidate selection |
//! | [`cross_entropy`] | §4.2–4.3 | sparse node-selection probability vectors, elite updates, smoothing |
//! | [`cbasnd`] | §4 | `CbasNd` — the engine with cross-entropy neighbour differentiation |
//! | [`gaussian`] | Appendix A | Gaussian budget allocation (`CBAS-ND-G`) |
//! | [`decomp`] | §5.3 scaling | `Decomp` — community-partitioned solves with boundary repair |
//! | [`online`] | §4.4.1 | replanning after declines, keeping confirmed attendees |
//! | [`parallel`] | §5.3.1 | `ParallelCbasNd` — the engine on the pooled backend (Fig 5(d)) |
//! | [`theory`] | §3.2, §4.3 | the approximation-ratio and `P_b` formulas of Theorems 3–5 |
//!
//! All solvers implement [`Solver`]: deterministic given `(instance, seed)`,
//! returning a validated [`waso_core::Group`] plus run statistics. The
//! staged family (CBAS, CBAS-ND, CBAS-ND-G, parallel) shares one stage
//! loop — [`engine::StagedEngine`] — whose execution backend, allocation
//! policy and candidate distribution are orthogonal axes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cbas;
pub mod cbasnd;
pub mod cross_entropy;
pub mod decomp;
pub mod engine;
pub mod exec;
pub mod gaussian;
pub mod greedy;
pub mod job;
pub mod ocba;
pub mod online;
pub mod parallel;
pub mod registry;
pub mod rgreedy;
pub mod sampler;
pub mod spec;
pub mod theory;

use std::time::Duration;

use waso_core::{CoreError, Group, WasoInstance};
use waso_graph::NodeId;

pub use cbas::{Cbas, CbasConfig};
pub use cbasnd::{CbasNd, CbasNdConfig};
pub use cross_entropy::ProbabilityVector;
pub use decomp::Decomp;
pub use engine::{Distribution, StagedEngine, StartMode};
pub use exec::{Deal, ExecBackend, PoolStats, SharedPool, SolverPool, WorkerStats};
pub use gaussian::Allocation;
pub use greedy::DGreedy;
pub use job::{Incumbent, JobControl, JobProgress, Termination};
pub use online::OnlinePlanner;
pub use parallel::ParallelCbasNd;
pub use registry::{BuildFn, RegistryEntry, SolverRegistry};
pub use rgreedy::{RGreedy, RGreedyConfig};
pub use spec::{Capabilities, PoolMode, SolverSpec, SpecError, DEFAULT_BUDGET};

/// Why a solver could not produce a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// No start node could be grown to `k` nodes (e.g. every component of
    /// the graph is smaller than `k`).
    NoFeasibleGroup,
    /// The produced group failed validation — indicates a solver bug and is
    /// surfaced rather than masked.
    Invalid(CoreError),
    /// The caller asked for required attendees from a solver that cannot
    /// guarantee them (see [`Capabilities::required_attendees`]). Surfaced
    /// instead of silently dropping the constraint.
    RequiredUnsupported {
        /// The solver that rejected the constraint.
        solver: &'static str,
    },
    /// A solver parameter is outside its valid range (e.g. a cross-entropy
    /// elite fraction ρ of 0). Returned — never panicked — so a serving
    /// process survives user-supplied specs; the registry builders reject
    /// the same ranges earlier with [`SpecError::OutOfRange`].
    BadParameter {
        /// The offending parameter name (`"rho"`, `"smoothing"`).
        param: &'static str,
        /// The rejected value, rendered.
        value: String,
        /// The accepted range, rendered (`"in (0, 1]"`).
        expected: &'static str,
    },
    /// The solve was cancelled or its deadline elapsed **before any
    /// feasible incumbent existed** (cancel before the first stage,
    /// `deadline_ms=0`). Distinct from [`SolveError::NoFeasibleGroup`]:
    /// the instance may well be feasible — the solve just never got to
    /// look.
    NoIncumbent {
        /// Why the solve stopped ([`Termination::Deadline`] or
        /// [`Termination::Cancelled`]; never `Completed`).
        reason: Termination,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NoFeasibleGroup => {
                write!(
                    f,
                    "no feasible group of the requested size exists or was found"
                )
            }
            SolveError::Invalid(e) => write!(f, "solver produced an invalid group: {e}"),
            SolveError::RequiredUnsupported { solver } => write!(
                f,
                "solver '{solver}' cannot guarantee required attendees \
                 (use cbas-nd, cbas-nd-g, or dgreedy with a single attendee)"
            ),
            SolveError::BadParameter {
                param,
                value,
                expected,
            } => write!(
                f,
                "parameter {param}={value} is invalid (must be {expected})"
            ),
            SolveError::NoIncumbent { reason } => write!(
                f,
                "solve stopped ({reason}) before finding any feasible incumbent"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// Run statistics reported by every solver.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolverStats {
    /// Final solutions sampled (`T` actually spent; greedy counts 1).
    pub samples_drawn: u64,
    /// Stages executed (1 for single-pass algorithms).
    pub stages: u32,
    /// Start nodes considered (`m`).
    pub start_nodes: u32,
    /// Start nodes pruned by zero budget allocations.
    pub pruned_start_nodes: u32,
    /// Probability-vector reverts performed (backtracking, §4.4.2).
    pub backtracks: u32,
    /// `true` when a work cap cut the solve short, so the result is the
    /// best *found* rather than a completed run (the exact solver's
    /// expansion cap, a `patience=` early stop, a deadline or a
    /// cancellation; anytime modes generally).
    pub truncated: bool,
    /// Why the solve stopped: ran to completion (including `patience=`
    /// convergence stops), hit its `deadline_ms=`, or was cancelled. Any
    /// reason other than [`Termination::Completed`] also sets
    /// [`SolverStats::truncated`].
    pub termination: Termination,
    /// Wall-clock time of the solve call.
    pub elapsed: Duration,
}

impl SolverStats {
    /// Sampling throughput of the solve: `samples_drawn / elapsed`
    /// (0 when the run was too fast to time or drew nothing). The
    /// perf-trajectory figure the bench harness tracks per backend and
    /// thread count.
    pub fn samples_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 && self.samples_drawn > 0 {
            self.samples_drawn as f64 / secs
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for SolverStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} samples ({:.0}/s), {} stages, {} start nodes ({} pruned), {} backtracks, {:.3}s{}",
            self.samples_drawn,
            self.samples_per_sec(),
            self.stages,
            self.start_nodes,
            self.pruned_start_nodes,
            self.backtracks,
            self.elapsed.as_secs_f64(),
            match (self.truncated, self.termination) {
                (_, Termination::Deadline) => " (truncated: deadline)",
                (_, Termination::Cancelled) => " (truncated: cancelled)",
                (true, Termination::Completed) => " (truncated)",
                (false, Termination::Completed) => "",
            }
        )
    }
}

/// A solver's answer: the best group found plus statistics.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The best feasible group found.
    pub group: Group,
    /// Run statistics.
    pub stats: SolverStats,
}

impl std::fmt::Display for SolveResult {
    /// The group with its willingness, then the stats one-liner —
    /// what CLIs and examples print instead of formatting by hand.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} — {}", self.group, self.stats)
    }
}

/// Common interface of all WASO solvers.
///
/// Implementations are deterministic functions of `(instance, seed)` —
/// rerunning with the same arguments yields the same group. This also makes
/// the parallel driver bit-identical to the serial one (per-start-node RNG
/// streams; see [`parallel`]).
///
/// Beyond the core [`Solver::solve_seeded`], the trait carries the uniform
/// constraint surface the [`SolverRegistry`] and the `waso::WasoSession`
/// facade rely on: [`Solver::capabilities`] declares what a solver can
/// honour, [`Solver::solve_with_required`] enforces required attendees (or
/// rejects loudly), and [`Solver::warm_start`] primes anytime solvers with
/// an incumbent.
pub trait Solver {
    /// Short machine-friendly name (`"dgreedy"`, `"cbas-nd"`, …).
    fn name(&self) -> &'static str;

    /// Solves `instance`, deriving all randomness from `seed`.
    fn solve_seeded(
        &mut self,
        instance: &WasoInstance,
        seed: u64,
    ) -> Result<SolveResult, SolveError>;

    /// What this solver can honour. Defaults to "nothing beyond plain
    /// solving"; solvers opt in to each capability they implement.
    fn capabilities(&self) -> Capabilities {
        Capabilities::default()
    }

    /// Solves with *required attendees*: every listed node must appear in
    /// the answer.
    ///
    /// The default rejects any non-empty requirement with
    /// [`SolveError::RequiredUnsupported`] — constraints are *never*
    /// silently dropped. Solvers that can guarantee membership (CBAS-ND's
    /// partial-solution growth, DGreedy's pinned start for a single
    /// attendee) override this and set
    /// [`Capabilities::required_attendees`].
    fn solve_with_required(
        &mut self,
        instance: &WasoInstance,
        required: &[NodeId],
        seed: u64,
    ) -> Result<SolveResult, SolveError> {
        if required.is_empty() {
            return self.solve_seeded(instance, seed);
        }
        Err(SolveError::RequiredUnsupported {
            solver: self.name(),
        })
    }

    /// Offers an incumbent solution before solving. Anytime/exact solvers
    /// use it to prune ([`Capabilities::warm_start`]); everyone else
    /// ignores it — a warm start is an optimization hint, not a
    /// constraint, so ignoring it is sound.
    fn warm_start(&mut self, incumbent: &Group) {
        let _ = incumbent;
    }

    /// The worker count this solver would like from a [`SharedPool`], or
    /// `None` for inherently serial solvers (and for solvers configured
    /// with [`PoolMode::Private`], which spawn their own workers).
    /// Sessions use this to decide whether a solve is worth routing
    /// through (and lazily spawning) their shared pool.
    fn pool_threads(&self) -> Option<usize> {
        None
    }

    /// [`Solver::solve_with_required`] as a job of a [`SharedPool`]:
    /// pooled solvers submit their stages to the already-spawned workers
    /// instead of spawning their own, amortizing thread creation across
    /// every job the pool serves — concurrently with other jobs and
    /// sessions. Results are bit-identical to the non-pooled paths for
    /// every worker count and tenant mix (per-sample RNG streams,
    /// index-keyed merge). The default ignores the pool — correct for
    /// serial solvers.
    fn solve_pooled(
        &mut self,
        instance: &std::sync::Arc<WasoInstance>,
        required: &[NodeId],
        seed: u64,
        pool: &SharedPool,
    ) -> Result<SolveResult, SolveError> {
        let _ = pool;
        self.solve_with_required(instance, required, seed)
    }

    /// The job-handle entry point: solve under a [`JobControl`] that can
    /// cancel the run, bound it with a deadline, and observe its progress
    /// and incumbents ([`Capabilities::anytime`]).
    ///
    /// The determinism contract extends here: a solve whose control never
    /// trips is **bit-identical** to [`Solver::solve_with_required`] /
    /// [`Solver::solve_pooled`] with the same arguments — the control only
    /// ever decides *how many stages run*, never what a stage computes.
    ///
    /// The default is the right behaviour for single-pass solvers (greedy,
    /// exact): honour a stop request that arrived before work started
    /// (returning [`SolveError::NoIncumbent`]), run the blocking solve,
    /// then publish the final result's progress. Staged solvers override
    /// this to check the control at every stage boundary and stream
    /// incumbents.
    fn solve_controlled(
        &mut self,
        instance: &std::sync::Arc<WasoInstance>,
        required: &[NodeId],
        seed: u64,
        pool: Option<&SharedPool>,
        control: &JobControl,
    ) -> Result<SolveResult, SolveError> {
        if let Some(reason) = control.stop_reason() {
            return Err(SolveError::NoIncumbent { reason });
        }
        let result = match pool {
            Some(pool) => self.solve_pooled(instance, required, seed, pool),
            None => self.solve_with_required(instance, required, seed),
        };
        if let Ok(res) = &result {
            control.publish_stage(
                res.stats.stages,
                res.stats.samples_drawn,
                Some((res.group.willingness(), res.group.nodes())),
            );
        }
        result
    }
}

/// SplitMix64 — derives independent RNG streams from `(seed, stream ids)`.
/// Used so each (start node, stage) pair gets its own deterministic stream,
/// making thread count irrelevant to results.
#[inline]
pub(crate) fn mix_seed(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed ^ a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Per-sample RNG stream id for the staged solvers: every
/// `(start node, stage, sample)` triple draws from its own stream, so work
/// can be split across threads at *sample* granularity and still merge into
/// bit-identical results (OCBA concentrates most of a stage's budget on one
/// start node, so per-node parallelism alone would serialize).
#[inline]
pub(crate) fn sample_seed(seed: u64, start_idx: u64, stage: u64, sample: u64) -> u64 {
    mix_seed(mix_seed(seed, start_idx, stage), sample, 0x5EED_CAFE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_separates_streams() {
        let s = 42;
        let a = mix_seed(s, 0, 0);
        let b = mix_seed(s, 0, 1);
        let c = mix_seed(s, 1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // Deterministic.
        assert_eq!(a, mix_seed(42, 0, 0));
    }

    #[test]
    fn solve_error_messages() {
        assert!(SolveError::NoFeasibleGroup
            .to_string()
            .contains("no feasible"));
        let e = SolveError::Invalid(CoreError::Disconnected);
        assert!(e.to_string().contains("connected"));
    }
}

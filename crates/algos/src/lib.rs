//! # waso-algos
//!
//! The paper's solvers and their supporting machinery.
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`greedy`] | §1, §3 | `DGreedy`, the deterministic greedy baseline |
//! | [`rgreedy`] | §4.1 | `RGreedy`, randomized greedy with willingness-proportional selection |
//! | [`sampler`] | §3.1 | random growth of partial solutions (uniform / probability-vector weighted) |
//! | [`ocba`] | §3.1–3.2 | computational-budget allocation across start nodes, stage derivation |
//! | [`cbas`] | §3 | `Cbas` — budget-allocated random sampling |
//! | [`cross_entropy`] | §4.2–4.3 | sparse node-selection probability vectors, elite updates, smoothing |
//! | [`cbasnd`] | §4 | `CbasNd` — CBAS with neighbour differentiation (+ backtracking §4.4.2) |
//! | [`gaussian`] | Appendix A | Gaussian budget allocation (`CBAS-ND-G`) |
//! | [`online`] | §4.4.1 | replanning after declines, keeping confirmed attendees |
//! | [`parallel`] | §5.3.1 | multi-threaded stage execution (the paper's OpenMP run, Fig 5(d)) |
//! | [`theory`] | §3.2, §4.3 | the approximation-ratio and `P_b` formulas of Theorems 3–5 |
//!
//! All solvers implement [`Solver`]: deterministic given `(instance, seed)`,
//! returning a validated [`waso_core::Group`] plus run statistics.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cbas;
pub mod cbasnd;
pub mod cross_entropy;
pub mod gaussian;
pub mod greedy;
pub mod ocba;
pub mod online;
pub mod parallel;
pub mod rgreedy;
pub mod sampler;
pub mod theory;

use std::time::Duration;

use waso_core::{CoreError, Group, WasoInstance};

pub use cbas::{Cbas, CbasConfig};
pub use cbasnd::{CbasNd, CbasNdConfig};
pub use cross_entropy::ProbabilityVector;
pub use gaussian::Allocation;
pub use greedy::DGreedy;
pub use online::OnlinePlanner;
pub use parallel::ParallelCbasNd;
pub use rgreedy::{RGreedy, RGreedyConfig};

/// Why a solver could not produce a group.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// No start node could be grown to `k` nodes (e.g. every component of
    /// the graph is smaller than `k`).
    NoFeasibleGroup,
    /// The produced group failed validation — indicates a solver bug and is
    /// surfaced rather than masked.
    Invalid(CoreError),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NoFeasibleGroup => {
                write!(f, "no feasible group of the requested size exists or was found")
            }
            SolveError::Invalid(e) => write!(f, "solver produced an invalid group: {e}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Run statistics reported by every solver.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolverStats {
    /// Final solutions sampled (`T` actually spent; greedy counts 1).
    pub samples_drawn: u64,
    /// Stages executed (1 for single-pass algorithms).
    pub stages: u32,
    /// Start nodes considered (`m`).
    pub start_nodes: u32,
    /// Start nodes pruned by zero budget allocations.
    pub pruned_start_nodes: u32,
    /// Probability-vector reverts performed (backtracking, §4.4.2).
    pub backtracks: u32,
    /// Wall-clock time of the solve call.
    pub elapsed: Duration,
}

/// A solver's answer: the best group found plus statistics.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The best feasible group found.
    pub group: Group,
    /// Run statistics.
    pub stats: SolverStats,
}

/// Common interface of all WASO solvers.
///
/// Implementations are deterministic functions of `(instance, seed)` —
/// rerunning with the same arguments yields the same group. This also makes
/// the parallel driver bit-identical to the serial one (per-start-node RNG
/// streams; see [`parallel`]).
pub trait Solver {
    /// Short machine-friendly name (`"dgreedy"`, `"cbas-nd"`, …).
    fn name(&self) -> &'static str;

    /// Solves `instance`, deriving all randomness from `seed`.
    fn solve_seeded(
        &mut self,
        instance: &WasoInstance,
        seed: u64,
    ) -> Result<SolveResult, SolveError>;
}

/// SplitMix64 — derives independent RNG streams from `(seed, stream ids)`.
/// Used so each (start node, stage) pair gets its own deterministic stream,
/// making thread count irrelevant to results.
#[inline]
pub(crate) fn mix_seed(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed ^ a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Per-sample RNG stream id for the staged solvers: every
/// `(start node, stage, sample)` triple draws from its own stream, so work
/// can be split across threads at *sample* granularity and still merge into
/// bit-identical results (OCBA concentrates most of a stage's budget on one
/// start node, so per-node parallelism alone would serialize).
#[inline]
pub(crate) fn sample_seed(seed: u64, start_idx: u64, stage: u64, sample: u64) -> u64 {
    mix_seed(mix_seed(seed, start_idx, stage), sample, 0x5EED_CAFE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_separates_streams() {
        let s = 42;
        let a = mix_seed(s, 0, 0);
        let b = mix_seed(s, 0, 1);
        let c = mix_seed(s, 1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // Deterministic.
        assert_eq!(a, mix_seed(42, 0, 0));
    }

    #[test]
    fn solve_error_messages() {
        assert!(SolveError::NoFeasibleGroup.to_string().contains("no feasible"));
        let e = SolveError::Invalid(CoreError::Disconnected);
        assert!(e.to_string().contains("connected"));
    }
}

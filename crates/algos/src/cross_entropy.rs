//! The cross-entropy machinery of CBAS-ND (§4.2–4.3).
//!
//! Each start node `v_i` carries a *node-selection probability vector*
//! `p_{i,t}` (Definition 3). Stage `t`'s samples are ranked, the top-ρ
//! quantile `γ_{i,t}` (Definition 5, kept monotone across stages per the
//! pseudo-code lines 36–39) defines the elite set, and Eq. (4) re-fits the
//! vector to the elites' empirical inclusion frequencies — the minimizer of
//! the Kullback–Leibler distance to the optimal importance-sampling density
//! (§4.3). A smoothing step `p ← w·p_new + (1-w)·p_old` keeps probabilities
//! away from hard 0/1 so no node is permanently excluded or forced.
//!
//! The vector is stored *sparsely*: nodes that never appeared in an elite
//! sample share a scalar default that decays by `(1-w)` per stage. This
//! realizes the paper's memory note ("directly set the probability to 0 for
//! every node not neighbouring a partial solution") exactly: m vectors over
//! million-node graphs cost O(total elite nodes), not O(m·n).

use std::collections::BTreeMap;

use waso_graph::NodeId;

use crate::sampler::Sample;

/// Sparse per-start-node selection probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbabilityVector {
    /// Explicit entries; nodes absent here carry `default`. A `BTreeMap`
    /// (not a hash map): iteration order feeds float accumulation and the
    /// sampling weights, and `HashMap`'s per-instance randomized order
    /// would make two identically-seeded runs diverge.
    explicit: BTreeMap<u32, f64>,
    /// Probability of every node without an explicit entry.
    default: f64,
    /// Number of nodes in the graph (needed by the distance metric).
    n: usize,
}

impl ProbabilityVector {
    /// Floor applied during sampling so decayed entries remain reachable
    /// (numerical guard; the paper's smoothing serves the same purpose).
    pub const MIN_PROB: f64 = 1e-12;

    /// The paper's initial vector: `p_{i,1,j} = (k-1)/(n-1)` for every node
    /// (Example 1 uses exactly 4/9 for n = 10, k = 5).
    pub fn uniform(n: usize, k: usize) -> Self {
        assert!(n >= 2, "need at least two nodes");
        Self {
            explicit: BTreeMap::new(),
            default: (k.saturating_sub(1)) as f64 / (n - 1) as f64,
            n,
        }
    }

    /// Initial vector for start node `start`, which carries probability 1
    /// (it is in every sample by construction; Example 1's
    /// 〈4/9, 4/9, 1, 4/9, …〉 for start node v3).
    pub fn uniform_for_start(n: usize, k: usize, start: NodeId) -> Self {
        let mut p = Self::uniform(n, k);
        p.set(start, 1.0);
        p
    }

    /// Probability of selecting `v`.
    #[inline]
    pub fn get(&self, v: NodeId) -> f64 {
        *self.explicit.get(&v.0).unwrap_or(&self.default)
    }

    /// Overrides the probability of one node.
    pub fn set(&mut self, v: NodeId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        self.explicit.insert(v.0, p);
    }

    /// The shared probability of all non-explicit nodes.
    pub fn default_prob(&self) -> f64 {
        self.default
    }

    /// Number of explicit entries (memory accounting / diagnostics).
    pub fn explicit_len(&self) -> usize {
        self.explicit.len()
    }

    /// Number of nodes the vector spans.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the vector covers no nodes (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Eq. (4) + smoothing from raw elite samples: computes each node's
    /// elite inclusion frequency and applies
    /// `p ← w · freq + (1-w) · p_old`.
    ///
    /// # Panics
    /// Panics if `w` is outside `[0, 1]` or `elites` is empty.
    pub fn update_from_elites(&mut self, elites: &[&Sample], w: f64) {
        assert!(!elites.is_empty(), "elite set must be non-empty");
        let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
        for s in elites {
            for &v in &s.nodes {
                *counts.entry(v.0).or_insert(0) += 1;
            }
        }
        let denom = elites.len() as f64;
        let freqs: Vec<(NodeId, f64)> = counts
            .into_iter()
            .map(|(v, c)| (NodeId(v), c as f64 / denom))
            .collect();
        self.update_from_frequencies(&freqs, w);
    }

    /// Eq. (4) + smoothing from precomputed elite frequencies. Nodes not
    /// listed have frequency 0 and simply decay by `(1-w)`.
    ///
    /// # Panics
    /// Panics if `w` is outside `[0, 1]` or any frequency is outside `[0,1]`.
    pub fn update_from_frequencies(&mut self, freqs: &[(NodeId, f64)], w: f64) {
        assert!(
            (0.0..=1.0).contains(&w),
            "smoothing weight {w} outside [0,1]"
        );
        let old_default = self.default;

        // Decay phase: every probability (explicit and implicit) shrinks by
        // (1-w); the frequency mass is added next.
        for p in self.explicit.values_mut() {
            *p *= 1.0 - w;
        }
        self.default *= 1.0 - w;

        for &(v, freq) in freqs {
            assert!(
                (0.0..=1.0).contains(&freq),
                "frequency {freq} outside [0,1]"
            );
            let base = self
                .explicit
                .get(&v.0)
                .copied()
                .unwrap_or((1.0 - w) * old_default);
            self.explicit.insert(v.0, w * freq + base);
        }
    }

    /// The convergence distance of §4.4.2:
    /// `z = Σ_j (p_t(j) - p_{t-1}(j))²` over all `n` nodes. Sparse defaults
    /// are compared pairwise; nodes explicit in neither vector contribute
    /// `(default_a - default_b)²` each.
    ///
    /// # Panics
    /// Panics if the vectors span different node counts.
    pub fn distance_sq(&self, other: &ProbabilityVector) -> f64 {
        assert_eq!(self.n, other.n, "vectors over different graphs");
        let mut z = 0.0;
        let mut covered = 0usize;
        for (&v, &p) in &self.explicit {
            let q = other.get(NodeId(v));
            z += (p - q) * (p - q);
            covered += 1;
        }
        for (&v, &q) in &other.explicit {
            if !self.explicit.contains_key(&v) {
                let p = self.default;
                z += (p - q) * (p - q);
                covered += 1;
            }
        }
        let rest = self.n - covered;
        let dd = self.default - other.default;
        z + rest as f64 * dd * dd
    }
}

/// One stage's full cross-entropy update for one start node (Algorithm 2
/// lines 35–46): rank the stage's samples, lift γ to the top-ρ quantile
/// (kept monotone across stages), re-fit the vector to the elites via
/// Eq. (4) with smoothing `w`, and optionally backtrack per §4.4.2 when
/// the update moved the vector less than `z_t`. Returns `true` when
/// backtracking reverted the vector.
///
/// This is the distribution-update step of the
/// [`crate::engine::StagedEngine`]; it lives here with the vector it
/// mutates.
pub fn update_vector(
    vector: &mut ProbabilityVector,
    gamma: &mut f64,
    stage_samples: &mut [Sample],
    rho: f64,
    smoothing: f64,
    backtrack_threshold: Option<f64>,
) -> bool {
    // γ_{t+1} = max(γ_t, W_(⌈ρN⌉)) — pseudo-code lines 35–39.
    stage_samples.sort_by(|a, b| {
        b.willingness
            .partial_cmp(&a.willingness)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let idx = waso_stats::quantile::top_rho_count(stage_samples.len(), rho);
    let stage_gamma = stage_samples[idx - 1].willingness;
    if stage_gamma > *gamma {
        *gamma = stage_gamma;
    }
    // Elites: samples meeting the (monotone) threshold, Eq. (4).
    let elites: Vec<&Sample> = stage_samples
        .iter()
        .filter(|s| s.willingness >= *gamma)
        .collect();
    if elites.is_empty() {
        // Whole stage below the historic γ: nothing to learn from.
        return false;
    }
    let previous = vector.clone();
    vector.update_from_elites(&elites, smoothing);
    if let Some(z_t) = backtrack_threshold {
        // §4.4.2: converged updates are reverted so the next stage
        // re-samples from the previous, more diverse distribution.
        if vector.distance_sq(&previous) < z_t {
            *vector = previous;
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gamma_monotonicity_filters_bad_stages() {
        // A second stage entirely below the first stage's γ must not update
        // the vector.
        let mut v = ProbabilityVector::uniform(10, 3);
        let mut gamma = f64::NEG_INFINITY;
        let mut stage1 = vec![sample(&[0, 1, 2], 10.0), sample(&[0, 1, 3], 8.0)];
        let reverted = update_vector(&mut v, &mut gamma, &mut stage1, 0.5, 0.5, None);
        assert!(!reverted);
        assert_eq!(gamma, 10.0);
        let after_stage1 = v.clone();

        let mut stage2 = vec![sample(&[4, 5, 6], 3.0), sample(&[4, 5, 7], 2.0)];
        update_vector(&mut v, &mut gamma, &mut stage2, 0.5, 0.5, None);
        assert_eq!(gamma, 10.0, "gamma must not regress");
        assert_eq!(v, after_stage1, "sub-γ stages contribute no elites");
    }

    fn sample(nodes: &[u32], w: f64) -> Sample {
        Sample {
            nodes: nodes.iter().map(|&v| NodeId(v)).collect(),
            willingness: w,
        }
    }

    #[test]
    fn uniform_matches_example_one() {
        // n = 10, k = 5 → p = (k-1)/(n-1) = 4/9 everywhere, 1 at the start.
        let p = ProbabilityVector::uniform_for_start(10, 5, NodeId(2));
        assert!((p.get(NodeId(0)) - 4.0 / 9.0).abs() < 1e-12);
        assert!((p.get(NodeId(9)) - 4.0 / 9.0).abs() < 1e-12);
        assert_eq!(p.get(NodeId(2)), 1.0);
    }

    /// Example 2 verbatim: elite frequencies 〈2/3, 1/3, 1, 2/3, 1, 2/3,
    /// 1/3, 0, 0, 0〉 smoothed with w = 0.6 over the uniform start vector
    /// 〈4/9, …, 1 at v3, … 4/9〉 must give
    /// 〈5.2/9, 3.4/9, 1, 5.2/9, 7/9, 5.2/9, 3.4/9, 1.6/9, 1.6/9, 1.6/9〉.
    #[test]
    fn smoothing_matches_example_two() {
        let mut p = ProbabilityVector::uniform_for_start(10, 5, NodeId(2));
        let freqs = [
            (NodeId(0), 2.0 / 3.0),
            (NodeId(1), 1.0 / 3.0),
            (NodeId(2), 1.0),
            (NodeId(3), 2.0 / 3.0),
            (NodeId(4), 1.0),
            (NodeId(5), 2.0 / 3.0),
            (NodeId(6), 1.0 / 3.0),
        ];
        p.update_from_frequencies(&freqs, 0.6);
        let want = [
            5.2 / 9.0,
            3.4 / 9.0,
            1.0,
            5.2 / 9.0,
            7.0 / 9.0,
            5.2 / 9.0,
            3.4 / 9.0,
            1.6 / 9.0,
            1.6 / 9.0,
            1.6 / 9.0,
        ];
        for (j, &expected) in want.iter().enumerate() {
            let got = p.get(NodeId(j as u32));
            assert!(
                (got - expected).abs() < 1e-12,
                "p[{j}] = {got}, want {expected}"
            );
        }
    }

    #[test]
    fn elite_frequencies_are_inclusion_fractions() {
        let mut p = ProbabilityVector::uniform(6, 3);
        let s1 = sample(&[0, 1, 2], 10.0);
        let s2 = sample(&[0, 2, 4], 9.0);
        p.update_from_elites(&[&s1, &s2], 1.0); // w=1: pure frequencies
        assert_eq!(p.get(NodeId(0)), 1.0);
        assert_eq!(p.get(NodeId(1)), 0.5);
        assert_eq!(p.get(NodeId(2)), 1.0);
        assert_eq!(p.get(NodeId(3)), 0.0); // decayed default
        assert_eq!(p.get(NodeId(4)), 0.5);
    }

    #[test]
    fn w_zero_is_identity() {
        let mut p = ProbabilityVector::uniform(5, 2);
        let before = p.clone();
        let s = sample(&[0, 1], 1.0);
        p.update_from_elites(&[&s], 0.0);
        // All values unchanged (0.25 default everywhere).
        for j in 0..5 {
            assert!((p.get(NodeId(j)) - before.get(NodeId(j))).abs() < 1e-15);
        }
    }

    #[test]
    fn repeated_updates_decay_unseen_nodes() {
        let mut p = ProbabilityVector::uniform(4, 2);
        let p0 = p.default_prob();
        let s = sample(&[0, 1], 1.0);
        for _ in 0..3 {
            p.update_from_elites(&[&s], 0.5);
        }
        // Node 3 never elite: (1-w)^3 · p0.
        assert!((p.get(NodeId(3)) - 0.125 * p0).abs() < 1e-12);
        // Node 0 always elite: converges toward 1.
        assert!(p.get(NodeId(0)) > 0.9);
        // Sparse representation: only elite nodes became explicit.
        assert_eq!(p.explicit_len(), 2);
    }

    #[test]
    fn distance_counts_implicit_nodes() {
        let a = ProbabilityVector::uniform(10, 5); // 4/9 everywhere
        let mut b = ProbabilityVector::uniform(10, 5);
        b.set(NodeId(0), 1.0);
        let d = a.distance_sq(&b);
        let expect = (1.0 - 4.0 / 9.0_f64).powi(2);
        assert!((d - expect).abs() < 1e-12);
        // Symmetric.
        assert!((b.distance_sq(&a) - d).abs() < 1e-15);
        // Identical vectors are at distance zero.
        assert_eq!(a.distance_sq(&a), 0.0);
    }

    #[test]
    fn distance_tracks_update_magnitude() {
        let mut p = ProbabilityVector::uniform(8, 3);
        let prev = p.clone();
        let s = sample(&[0, 1, 2], 5.0);
        p.update_from_elites(&[&s], 0.9);
        let big = p.distance_sq(&prev);

        let mut q = prev.clone();
        q.update_from_elites(&[&s], 0.1);
        let small = q.distance_sq(&prev);
        assert!(big > small, "stronger smoothing moves the vector farther");
    }

    #[test]
    #[should_panic(expected = "elite set must be non-empty")]
    fn empty_elites_panics() {
        let mut p = ProbabilityVector::uniform(4, 2);
        p.update_from_elites(&[], 0.5);
    }

    proptest! {
        #[test]
        fn probabilities_stay_in_unit_interval(
            elite_nodes in proptest::collection::vec(0u32..20, 1..10),
            w in 0.0..1.0f64,
            rounds in 1usize..5,
        ) {
            let mut p = ProbabilityVector::uniform(20, 4);
            let mut elite_nodes = elite_nodes;
            elite_nodes.sort_unstable();
            elite_nodes.dedup(); // samples never contain duplicates
            let s = sample(&elite_nodes, 1.0);
            for _ in 0..rounds {
                p.update_from_elites(&[&s], w);
            }
            for j in 0..20 {
                let v = p.get(NodeId(j));
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "p[{}] = {}", j, v);
            }
        }
    }
}

//! Structural fingerprints over [`WasoInstance`] — the memo key half of
//! the session's solve cache.
//!
//! A fingerprint digests everything a solver's answer can depend on:
//! the group size `k`, the connectivity requirement, every node's
//! interest score (bit-exact), and every directed tightness value with
//! its adjacency (bit-exact, in CSR row order). Two instances with the
//! same digest are — up to 64-bit collision — the same optimization
//! problem, so a cached [`crate::Group`] for one is valid for the other.
//!
//! The digest folds per-node hashes with XOR, which makes it
//! *incrementally updatable*: a graph delta that touches node `v`
//! (an interest change, or an edge at `v`) only requires re-hashing
//! `v`'s row — [`InstanceFingerprint::update_node`] is `O(degree(v))`
//! while a full [`InstanceFingerprint::of`] is `O(n + m)`.
//!
//! Determinism: the hash is a hand-rolled SplitMix64-style fold — no
//! `std` hashers, no per-process `RandomState`, no clocks — so the same
//! instance fingerprints identically across processes, runs, and
//! platforms. That keeps this module clean under the workspace audit's
//! D1/D2 rules.

use waso_graph::NodeId;

use crate::WasoInstance;

/// SplitMix64 finalizer — the same avalanche the solver seed streams use.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Folds one value into a running hash (order-dependent).
#[inline]
fn fold(h: u64, v: u64) -> u64 {
    mix(h ^ v.wrapping_mul(0x9E3779B97F4A7C15))
}

/// Hash of one node's contribution: its index, its interest score, and
/// its full CSR row of (neighbor, outgoing tightness) pairs, all
/// bit-exact. Rows are stored sorted by neighbor id, so this is a pure
/// function of the instance's structure.
fn node_hash(instance: &WasoInstance, v: NodeId) -> u64 {
    let g = instance.graph();
    let mut h = fold(0x57A5_0F1A_6E0D_0001, v.index() as u64);
    h = fold(h, g.interest(v).to_bits());
    for (j, tau, _) in g.neighbor_entries(v) {
        h = fold(h, j.index() as u64);
        h = fold(h, tau.to_bits());
    }
    h
}

/// An incrementally-updatable structural digest of a [`WasoInstance`].
///
/// Holds one hash per node plus an XOR accumulator over them, so a
/// local change re-folds only the touched rows. Equality of
/// [`InstanceFingerprint::digest`] is the memo-key notion of "same
/// instance".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceFingerprint {
    /// Per-node row hashes, indexed by node id.
    node_hashes: Vec<u64>,
    /// Hash of the instance header: `n`, `k`, connectivity requirement.
    header: u64,
    /// XOR over `mix(node_hashes[i])` — order-independent, so single
    /// rows can be swapped out without re-folding the rest.
    xor_sum: u64,
}

impl InstanceFingerprint {
    /// Fingerprints `instance` from scratch in `O(n + m)`.
    pub fn of(instance: &WasoInstance) -> Self {
        let g = instance.graph();
        let n = g.num_nodes();
        let mut header = fold(0x57A5_0F1A_6E0D_0002, n as u64);
        header = fold(header, instance.k() as u64);
        header = fold(header, u64::from(instance.requires_connectivity()));
        let mut node_hashes = Vec::with_capacity(n);
        let mut xor_sum = 0u64;
        for v in g.node_ids() {
            let h = node_hash(instance, v);
            xor_sum ^= mix(h);
            node_hashes.push(h);
        }
        Self {
            node_hashes,
            header,
            xor_sum,
        }
    }

    /// The 64-bit digest — the value memo keys carry.
    pub fn digest(&self) -> u64 {
        fold(self.header, self.xor_sum)
    }

    /// Re-hashes node `v`'s row against (a possibly rebuilt) `instance`
    /// and splices it into the digest in `O(degree(v))`.
    ///
    /// `instance` must have the same node count, `k`, and connectivity
    /// requirement as the instance this fingerprint was built from —
    /// graph deltas preserve all three.
    pub fn update_node(&mut self, instance: &WasoInstance, v: NodeId) {
        debug_assert_eq!(
            self.node_hashes.len(),
            instance.graph().num_nodes(),
            "update_node requires an instance with the same node count"
        );
        let slot = &mut self.node_hashes[v.index()];
        self.xor_sum ^= mix(*slot);
        *slot = node_hash(instance, v);
        self.xor_sum ^= mix(*slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_graph::GraphBuilder;

    fn triangle(eta2: f64, tau01: f64) -> WasoInstance {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(0.5);
        let v1 = b.add_node(1.0);
        let v2 = b.add_node(eta2);
        b.add_edge(v0, v1, tau01, 0.4).unwrap();
        b.add_edge(v1, v2, 0.2, 0.3).unwrap();
        b.add_edge(v0, v2, 0.1, 0.6).unwrap();
        WasoInstance::new(b.build(), 2).unwrap()
    }

    #[test]
    fn identical_instances_fingerprint_identically() {
        let a = InstanceFingerprint::of(&triangle(2.0, 0.7));
        let b = InstanceFingerprint::of(&triangle(2.0, 0.7));
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn interest_tightness_k_and_connectivity_all_matter() {
        let base = InstanceFingerprint::of(&triangle(2.0, 0.7)).digest();
        assert_ne!(base, InstanceFingerprint::of(&triangle(2.5, 0.7)).digest());
        assert_ne!(base, InstanceFingerprint::of(&triangle(2.0, 0.8)).digest());

        let g = triangle(2.0, 0.7).into_graph();
        let k3 = WasoInstance::new(g.clone(), 3).unwrap();
        assert_ne!(base, InstanceFingerprint::of(&k3).digest());
        let free = WasoInstance::without_connectivity(g, 2).unwrap();
        assert_ne!(base, InstanceFingerprint::of(&free).digest());
    }

    #[test]
    fn incremental_update_matches_full_recompute() {
        let before = triangle(2.0, 0.7);
        let after = triangle(9.0, 0.7);
        let mut fp = InstanceFingerprint::of(&before);
        fp.update_node(&after, NodeId(2));
        assert_eq!(fp, InstanceFingerprint::of(&after));

        // An edge change touches both endpoints.
        let retaued = triangle(2.0, 0.9);
        let mut fp = InstanceFingerprint::of(&before);
        fp.update_node(&retaued, NodeId(0));
        fp.update_node(&retaued, NodeId(1));
        assert_eq!(fp, InstanceFingerprint::of(&retaued));
    }
}

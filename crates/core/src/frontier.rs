//! The `VS`/`VA` growth machinery shared by every solver.
//!
//! The paper's algorithms all grow a partial solution `VS` by repeatedly
//! selecting from the candidate set `VA` of nodes adjacent to `VS`
//! (Algorithm 1, lines 17–23). [`Frontier`] is `VA` with O(1) insert,
//! remove, membership and indexed access (a dense item list plus a position
//! map), which makes uniform random selection a single `random_range`.
//! [`GrowthWorkspace`] bundles `VS` (membership bit set + order), `VA`, the
//! running willingness, and an optional blocked set (declined invitees,
//! §4.4.1), and is designed to be reset and reused across the thousands of
//! samples a CBAS run draws — no per-sample allocation.

use waso_graph::{BitSet, NodeId, SocialGraph};

use crate::willingness::marginal_gain;

/// The candidate set `VA`: a set of node ids with O(1) insert/remove/
/// membership and O(1) access by dense index (for uniform sampling).
#[derive(Debug, Clone)]
pub struct Frontier {
    items: Vec<u32>,
    /// `pos[v]` = index of `v` in `items`, or `u32::MAX` when absent.
    pos: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl Frontier {
    /// Creates an empty frontier over node ids `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            items: Vec::new(),
            pos: vec![ABSENT; n],
        }
    }

    /// Number of candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no candidates remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.pos[v.index()] != ABSENT
    }

    /// Candidate at dense index `i` (for uniform sampling).
    #[inline]
    pub fn item(&self, i: usize) -> NodeId {
        NodeId(self.items[i])
    }

    /// All candidates (order is unspecified but stable between mutations).
    #[inline]
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Inserts `v`; returns `true` if it was absent.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        let slot = &mut self.pos[v.index()];
        if *slot != ABSENT {
            return false;
        }
        *slot = self.items.len() as u32;
        self.items.push(v.0);
        true
    }

    /// Removes `v` (swap-remove, O(1)); returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: NodeId) -> bool {
        let slot = self.pos[v.index()];
        if slot == ABSENT {
            return false;
        }
        let Some(&last) = self.items.last() else {
            // Unreachable when `pos` and `items` agree; treat a desynced
            // frontier as "not present" rather than aborting the solve.
            return false;
        };
        self.items.swap_remove(slot as usize);
        if last != v.0 {
            self.pos[last as usize] = slot;
        }
        self.pos[v.index()] = ABSENT;
        true
    }

    /// Pre-reserves capacity for `cap` candidates (buffer-reuse hint for
    /// long-lived workspaces; see [`GrowthWorkspace::reserve`]).
    pub fn reserve(&mut self, cap: usize) {
        let cap = cap.min(self.pos.len());
        if cap > self.items.capacity() {
            self.items.reserve(cap - self.items.len());
        }
    }

    /// Empties the frontier in O(current length).
    pub fn clear(&mut self) {
        for &v in &self.items {
            self.pos[v as usize] = ABSENT;
        }
        self.items.clear();
    }
}

/// A reusable partial-solution grower: `VS`, `VA`, running willingness.
#[derive(Debug, Clone)]
pub struct GrowthWorkspace {
    members: BitSet,
    selected: Vec<NodeId>,
    frontier: Frontier,
    willingness: f64,
    /// `true` → frontier is the neighbourhood of `VS` (connected growth);
    /// `false` → frontier is every unselected node (WASO-dis growth).
    connected: bool,
    blocked: Option<BitSet>,
}

impl GrowthWorkspace {
    /// Creates a workspace for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            members: BitSet::new(n),
            selected: Vec::new(),
            frontier: Frontier::new(n),
            willingness: 0.0,
            connected: true,
            blocked: None,
        }
    }

    /// Marks nodes that may never enter a solution (declined invitees in the
    /// online extension, §4.4.1). Applies to subsequent seeds/adds.
    pub fn set_blocked(&mut self, blocked: Option<BitSet>) {
        self.blocked = blocked;
    }

    /// `true` if `v` is currently blocked.
    #[inline]
    pub fn is_blocked(&self, v: NodeId) -> bool {
        self.blocked.as_ref().is_some_and(|b| b.contains(v.index()))
    }

    /// Pre-reserves the growth buffers for groups of `k` nodes whose
    /// frontier can reach roughly `k · max_degree` candidates. Long-lived
    /// workspaces (one per staged-engine worker, reused across thousands
    /// of samples) call this once so even the first samples allocate
    /// nothing.
    pub fn reserve(&mut self, k: usize, max_degree: usize) {
        if k > self.selected.capacity() {
            self.selected.reserve(k - self.selected.len());
        }
        self.frontier.reserve(k.saturating_mul(max_degree));
    }

    /// Clears `VS`, `VA` and the running willingness (keeps the blocked
    /// set). O(|VS| + |VA|) — constant-ish per sample regardless of n.
    pub fn reset(&mut self) {
        for &v in &self.selected {
            self.members.remove(v.index());
        }
        self.selected.clear();
        self.frontier.clear();
        self.willingness = 0.0;
        self.connected = true;
    }

    /// Seeds connected growth at `start`: `VS = {start}`,
    /// `VA = N(start)` (minus blocked).
    ///
    /// # Panics
    /// Panics if the workspace is non-empty or `start` is blocked.
    pub fn seed(&mut self, g: &SocialGraph, start: NodeId) {
        assert!(self.selected.is_empty(), "seed on a non-empty workspace");
        assert!(!self.is_blocked(start), "seeding a blocked node {start}");
        self.connected = true;
        self.push_member(g, start);
    }

    /// Seeds connected growth with a whole partial solution (the online
    /// extension of §4.4.1 starts from the already-confirmed attendees):
    /// `VS = seeds`, `VA` = all non-blocked neighbours of `VS`.
    ///
    /// The seed set itself need not be connected; feasibility of the final
    /// group is the caller's responsibility (validated by `Group::new`).
    ///
    /// # Panics
    /// Panics if the workspace is non-empty, `seeds` is empty or contains a
    /// blocked or duplicate node.
    pub fn seed_set(&mut self, g: &SocialGraph, seeds: &[NodeId]) {
        assert!(self.selected.is_empty(), "seed on a non-empty workspace");
        assert!(!seeds.is_empty(), "seed set must be non-empty");
        self.connected = true;
        for &v in seeds {
            assert!(!self.is_blocked(v), "seeding a blocked node {v}");
            let fresh = self.members.insert(v.index());
            assert!(fresh, "duplicate seed {v}");
            self.selected.push(v);
        }
        self.willingness =
            crate::willingness::willingness_of_members(g, &self.members, &self.selected);
        for &v in seeds {
            for &j in g.neighbors(v) {
                let cand = NodeId(j);
                if !self.members.contains(j as usize) && !self.is_blocked(cand) {
                    self.frontier.insert(cand);
                }
            }
        }
    }

    /// Seeds unconstrained growth (WASO-dis): `VS = {start}`, `VA` = every
    /// other non-blocked node.
    pub fn seed_free(&mut self, g: &SocialGraph, start: NodeId) {
        assert!(self.selected.is_empty(), "seed on a non-empty workspace");
        assert!(!self.is_blocked(start), "seeding a blocked node {start}");
        self.connected = false;
        self.members.insert(start.index());
        self.selected.push(start);
        self.willingness += g.interest(start);
        for v in g.node_ids() {
            if v != start && !self.is_blocked(v) {
                self.frontier.insert(v);
            }
        }
    }

    /// Moves candidate `v` from `VA` into `VS`, updating the willingness
    /// incrementally and extending `VA` with `v`'s unseen neighbours.
    ///
    /// # Panics
    /// Panics if `v` is not currently a candidate.
    pub fn add(&mut self, g: &SocialGraph, v: NodeId) {
        assert!(self.frontier.contains(v), "{v} is not a candidate");
        if self.connected {
            self.push_member(g, v);
        } else {
            self.frontier.remove(v);
            let gain = marginal_gain(g, &self.members, v);
            self.members.insert(v.index());
            self.willingness += gain;
            self.selected.push(v);
        }
    }

    /// Connected-mode insertion: gain, membership, frontier maintenance.
    fn push_member(&mut self, g: &SocialGraph, v: NodeId) {
        debug_assert!(!self.members.contains(v.index()));
        self.willingness += marginal_gain(g, &self.members, v);
        self.members.insert(v.index());
        self.selected.push(v);
        self.frontier.remove(v);
        for &j in g.neighbors(v) {
            let cand = NodeId(j);
            if !self.members.contains(j as usize) && !self.is_blocked(cand) {
                self.frontier.insert(cand);
            }
        }
    }

    /// Current partial solution, in insertion order.
    pub fn selected(&self) -> &[NodeId] {
        &self.selected
    }

    /// Current candidate set.
    pub fn frontier(&self) -> &Frontier {
        &self.frontier
    }

    /// Membership bit set of `VS`.
    pub fn members(&self) -> &BitSet {
        &self.members
    }

    /// Running willingness `W(VS)`.
    pub fn willingness(&self) -> f64 {
        self.willingness
    }

    /// Size of `VS`.
    pub fn len(&self) -> usize {
        self.selected.len()
    }

    /// `true` before seeding.
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }

    /// Marginal gain of a candidate (Δ of Eq. 1).
    #[inline]
    pub fn gain(&self, g: &SocialGraph, v: NodeId) -> f64 {
        marginal_gain(g, &self.members, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::willingness::willingness;
    use waso_graph::GraphBuilder;

    fn diamond() -> SocialGraph {
        // 0-1, 0-2, 1-3, 2-3 with distinct scores.
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..4).map(|i| b.add_node((i + 1) as f64)).collect();
        b.add_edge_symmetric(ids[0], ids[1], 0.5).unwrap();
        b.add_edge_symmetric(ids[0], ids[2], 1.0).unwrap();
        b.add_edge_symmetric(ids[1], ids[3], 2.0).unwrap();
        b.add_edge_symmetric(ids[2], ids[3], 4.0).unwrap();
        b.build()
    }

    #[test]
    fn frontier_insert_remove_swap() {
        let mut f = Frontier::new(10);
        assert!(f.insert(NodeId(3)));
        assert!(f.insert(NodeId(7)));
        assert!(f.insert(NodeId(5)));
        assert!(!f.insert(NodeId(3)), "duplicate insert is a no-op");
        assert_eq!(f.len(), 3);
        assert!(f.remove(NodeId(3))); // head removal exercises swap path
        assert!(!f.contains(NodeId(3)));
        assert!(f.contains(NodeId(5)) && f.contains(NodeId(7)));
        assert!(!f.remove(NodeId(9)));
        // Position map still consistent: every item reachable by index.
        let mut got: Vec<u32> = (0..f.len()).map(|i| f.item(i).0).collect();
        got.sort_unstable();
        assert_eq!(got, vec![5, 7]);
    }

    #[test]
    fn frontier_clear_is_reusable() {
        let mut f = Frontier::new(5);
        for v in 0..5u32 {
            f.insert(NodeId(v));
        }
        f.clear();
        assert!(f.is_empty());
        assert!(f.insert(NodeId(2)));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn seeded_growth_tracks_willingness_and_frontier() {
        let g = diamond();
        let mut ws = GrowthWorkspace::new(4);
        ws.seed(&g, NodeId(0));
        assert_eq!(ws.willingness(), 1.0);
        assert_eq!(ws.frontier().len(), 2); // neighbours 1, 2

        ws.add(&g, NodeId(1));
        // Δ = η_1 + pw(0,1) = 2 + 1 = 3.
        assert_eq!(ws.willingness(), 4.0);
        assert!(ws.frontier().contains(NodeId(3)));
        assert!(ws.frontier().contains(NodeId(2)));
        assert_eq!(ws.frontier().len(), 2);

        ws.add(&g, NodeId(3));
        // Δ = 4 + pw(1,3) = 4 + 4 = 8.
        assert_eq!(ws.willingness(), 12.0);
        assert_eq!(
            ws.willingness(),
            willingness(&g, &[NodeId(0), NodeId(1), NodeId(3)])
        );
    }

    #[test]
    #[should_panic(expected = "not a candidate")]
    fn adding_non_candidate_panics() {
        let g = diamond();
        let mut ws = GrowthWorkspace::new(4);
        ws.seed(&g, NodeId(0));
        ws.add(&g, NodeId(3)); // not adjacent to 0
    }

    #[test]
    fn reset_allows_reuse_without_leaks() {
        let g = diamond();
        let mut ws = GrowthWorkspace::new(4);
        ws.seed(&g, NodeId(0));
        ws.add(&g, NodeId(2));
        ws.reset();
        assert!(ws.is_empty());
        assert_eq!(ws.willingness(), 0.0);
        assert!(ws.members().is_empty());
        assert!(ws.frontier().is_empty());
        // Grows again cleanly.
        ws.seed(&g, NodeId(3));
        ws.add(&g, NodeId(2));
        assert_eq!(ws.willingness(), willingness(&g, &[NodeId(2), NodeId(3)]));
    }

    #[test]
    fn free_growth_offers_all_nodes() {
        let g = diamond();
        let mut ws = GrowthWorkspace::new(4);
        ws.seed_free(&g, NodeId(0));
        assert_eq!(ws.frontier().len(), 3);
        ws.add(&g, NodeId(3)); // not adjacent to 0 — allowed in free mode
        assert_eq!(ws.willingness(), willingness(&g, &[NodeId(0), NodeId(3)]));
        // Frontier no longer offers 3.
        assert!(!ws.frontier().contains(NodeId(3)));
        // Adding an adjacent node still counts its edges.
        ws.add(&g, NodeId(1));
        assert_eq!(
            ws.willingness(),
            willingness(&g, &[NodeId(0), NodeId(1), NodeId(3)])
        );
    }

    #[test]
    fn blocked_nodes_never_become_candidates() {
        let g = diamond();
        let mut ws = GrowthWorkspace::new(4);
        let mut blocked = BitSet::new(4);
        blocked.insert(2);
        ws.set_blocked(Some(blocked));
        ws.seed(&g, NodeId(0));
        assert!(!ws.frontier().contains(NodeId(2)));
        assert_eq!(ws.frontier().len(), 1);
        ws.add(&g, NodeId(1));
        assert!(!ws.frontier().contains(NodeId(2)));

        // Free mode respects blocking too.
        ws.reset();
        ws.seed_free(&g, NodeId(0));
        assert_eq!(ws.frontier().len(), 2); // 1 and 3, not blocked 2
    }

    #[test]
    fn seed_set_matches_sequential_growth() {
        let g = diamond();
        let mut ws = GrowthWorkspace::new(4);
        ws.seed_set(&g, &[NodeId(0), NodeId(1)]);
        assert_eq!(ws.willingness(), willingness(&g, &[NodeId(0), NodeId(1)]));
        // Frontier = neighbours of {0,1} minus members = {2, 3}.
        assert_eq!(ws.frontier().len(), 2);
        assert!(ws.frontier().contains(NodeId(2)));
        assert!(ws.frontier().contains(NodeId(3)));
        ws.add(&g, NodeId(3));
        assert_eq!(
            ws.willingness(),
            willingness(&g, &[NodeId(0), NodeId(1), NodeId(3)])
        );
    }

    #[test]
    #[should_panic(expected = "duplicate seed")]
    fn seed_set_rejects_duplicates() {
        let g = diamond();
        let mut ws = GrowthWorkspace::new(4);
        ws.seed_set(&g, &[NodeId(0), NodeId(0)]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeSet;

        proptest! {
            /// The frontier behaves exactly like a set under arbitrary
            /// insert/remove interleavings, and indexed access always
            /// covers precisely the current membership.
            #[test]
            fn frontier_matches_reference_set(
                ops in proptest::collection::vec((0u32..64, any::<bool>()), 0..200),
            ) {
                let mut f = Frontier::new(64);
                let mut reference = BTreeSet::new();
                for (v, insert) in ops {
                    if insert {
                        prop_assert_eq!(f.insert(NodeId(v)), reference.insert(v));
                    } else {
                        prop_assert_eq!(f.remove(NodeId(v)), reference.remove(&v));
                    }
                    prop_assert_eq!(f.len(), reference.len());
                }
                let mut via_index: Vec<u32> =
                    (0..f.len()).map(|i| f.item(i).0).collect();
                via_index.sort_unstable();
                let expect: Vec<u32> = reference.into_iter().collect();
                prop_assert_eq!(via_index, expect);
            }

            /// Random connected growth keeps the incremental willingness in
            /// lockstep with a from-scratch evaluation.
            #[test]
            fn incremental_willingness_matches_full(
                seed in 0u64..5_000,
                steps in 1usize..8,
            ) {
                use rand::rngs::StdRng;
                use rand::{RngExt, SeedableRng};
                let g = waso_graph::generate::grid_topology(4, 4).into_unit_graph();
                let mut ws = GrowthWorkspace::new(16);
                let mut rng = StdRng::seed_from_u64(seed);
                ws.seed(&g, NodeId(rng.random_range(0..16)));
                for _ in 0..steps {
                    if ws.frontier().is_empty() {
                        break;
                    }
                    let idx = rng.random_range(0..ws.frontier().len());
                    let pick = ws.frontier().item(idx);
                    ws.add(&g, pick);
                }
                let full = willingness(&g, ws.selected());
                prop_assert!((ws.willingness() - full).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gain_previews_without_mutation() {
        let g = diamond();
        let mut ws = GrowthWorkspace::new(4);
        ws.seed(&g, NodeId(0));
        let before = ws.willingness();
        let predicted = ws.gain(&g, NodeId(2));
        ws.add(&g, NodeId(2));
        assert_eq!(before + predicted, ws.willingness());
    }
}

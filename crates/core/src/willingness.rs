//! The WASO objective function (Eq. 1):
//!
//! ```text
//! W(F) = Σ_{v_i ∈ F} ( η_i + Σ_{v_j ∈ F : e_{i,j} ∈ E} τ_{i,j} )
//! ```
//!
//! Both directed scores `τ_{i,j}` and `τ_{j,i}` are counted (§2.1 — "the
//! willingness in Eq. (1) considers both"). The incremental form used by
//! every solver exploits the pair weights cached in the CSR: adding `u` to
//! `S` contributes `η_u + Σ_{j ∈ N(u) ∩ S} (τ_{u,j} + τ_{j,u})`.

use waso_graph::{BitSet, NodeId, SocialGraph};

/// Full willingness of a node set (Eq. 1). `O(Σ_{v ∈ F} deg(v))`.
///
/// Duplicate nodes in `nodes` are an error caught in debug builds only; use
/// [`crate::Group`] for validated solutions.
///
/// ```
/// use waso_core::willingness;
/// use waso_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// let u = b.add_node(1.0);
/// let v = b.add_node(2.0);
/// b.add_edge(u, v, 0.25, 0.5).unwrap(); // asymmetric tightness
/// let g = b.build();
/// // Both directions count: 1 + 2 + 0.25 + 0.5.
/// assert_eq!(willingness(&g, &[u, v]), 3.75);
/// ```
pub fn willingness(g: &SocialGraph, nodes: &[NodeId]) -> f64 {
    let mut members = BitSet::new(g.num_nodes());
    for &v in nodes {
        let fresh = members.insert(v.index());
        debug_assert!(fresh, "duplicate node {v} in willingness()");
    }
    willingness_of_members(g, &members, nodes)
}

/// Full willingness when the caller already owns a membership bit set (the
/// solvers keep one hot). `nodes` must list exactly the members of
/// `members`.
pub fn willingness_of_members(g: &SocialGraph, members: &BitSet, nodes: &[NodeId]) -> f64 {
    let mut total = 0.0;
    for &u in nodes {
        total += g.interest(u);
        for (j, tau_uj, _) in g.neighbor_entries(u) {
            if members.contains(j.index()) {
                total += tau_uj;
            }
        }
    }
    total
}

/// Marginal gain of adding `u` to the member set:
/// `Δ(u) = η_u + Σ_{j ∈ N(u) ∩ members} (τ_{u,j} + τ_{j,u})`.
///
/// `u` must not already be a member (debug-asserted).
#[inline]
pub fn marginal_gain(g: &SocialGraph, members: &BitSet, u: NodeId) -> f64 {
    debug_assert!(
        !members.contains(u.index()),
        "marginal gain of an existing member {u}"
    );
    let mut gain = g.interest(u);
    for (j, _, pair) in g.neighbor_entries(u) {
        if members.contains(j.index()) {
            gain += pair;
        }
    }
    gain
}

/// Marginal *loss* of removing member `u`:
/// `η_u + Σ_{j ∈ N(u) ∩ members \ {u}} (τ_{u,j} + τ_{j,u})`.
///
/// Satisfies `willingness(S) - removal_loss(S, u) = willingness(S \ {u})`;
/// used by the online replanner when attendees decline.
#[inline]
pub fn removal_loss(g: &SocialGraph, members: &BitSet, u: NodeId) -> f64 {
    debug_assert!(members.contains(u.index()), "removing non-member {u}");
    let mut loss = g.interest(u);
    for (j, _, pair) in g.neighbor_entries(u) {
        if j != u && members.contains(j.index()) {
            loss += pair;
        }
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_graph::GraphBuilder;

    /// The Figure-1 counterexample graph, reconstructed from the narrative
    /// (§1): path v1 -1- v2 -2- v3 -4- v4 with η = (8, 7, 6, 5). Greedy
    /// reaches {v1,v2,v3} = 27; the optimum is {v2,v3,v4} = 30.
    pub(crate) fn figure1_graph() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let v1 = b.add_node(8.0);
        let v2 = b.add_node(7.0);
        let v3 = b.add_node(6.0);
        let v4 = b.add_node(5.0);
        b.add_edge_symmetric(v1, v2, 1.0).unwrap();
        b.add_edge_symmetric(v2, v3, 2.0).unwrap();
        b.add_edge_symmetric(v3, v4, 4.0).unwrap();
        b.build()
    }

    fn ids(raw: &[u32]) -> Vec<NodeId> {
        raw.iter().map(|&v| NodeId(v)).collect()
    }

    #[test]
    fn figure1_willingness_values() {
        let g = figure1_graph();
        // Greedy's set {v1, v2, v3}: 8+7+6 + 2·1 + 2·2 = 27.
        assert_eq!(willingness(&g, &ids(&[0, 1, 2])), 27.0);
        // Optimal set {v2, v3, v4}: 7+6+5 + 2·2 + 2·4 = 30.
        assert_eq!(willingness(&g, &ids(&[1, 2, 3])), 30.0);
        // Singletons are just interest.
        assert_eq!(willingness(&g, &ids(&[0])), 8.0);
        assert_eq!(willingness(&g, &[]), 0.0);
    }

    #[test]
    fn asymmetric_tightness_counts_both_directions() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(1.0);
        let v = b.add_node(2.0);
        b.add_edge(u, v, 0.25, 0.5).unwrap();
        let g = b.build();
        assert_eq!(willingness(&g, &[u, v]), 1.0 + 2.0 + 0.25 + 0.5);
    }

    #[test]
    fn non_adjacent_members_contribute_no_tightness() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(1.0);
        let _m = b.add_node(10.0);
        let w = b.add_node(3.0);
        b.add_edge_symmetric(u, NodeId(1), 5.0).unwrap();
        b.add_edge_symmetric(NodeId(1), w, 5.0).unwrap();
        let g = b.build();
        assert_eq!(willingness(&g, &[u, w]), 4.0);
    }

    #[test]
    fn marginal_gain_matches_full_difference() {
        let g = figure1_graph();
        let mut members = BitSet::new(4);
        members.insert(1); // {v2}
        members.insert(2); // {v2, v3}
        let before = willingness(&g, &ids(&[1, 2]));
        let gain = marginal_gain(&g, &members, NodeId(3));
        let after = willingness(&g, &ids(&[1, 2, 3]));
        assert_eq!(before + gain, after);
        // The narrative's numbers: Δ(v4 | {v2,v3}) = 5 + 2·4 = 13.
        assert_eq!(gain, 13.0);
    }

    #[test]
    fn removal_loss_inverts_marginal_gain() {
        let g = figure1_graph();
        let mut members = BitSet::new(4);
        for v in [0usize, 1, 2] {
            members.insert(v);
        }
        let full = willingness(&g, &ids(&[0, 1, 2]));
        let loss = removal_loss(&g, &members, NodeId(0));
        assert_eq!(full - loss, willingness(&g, &ids(&[1, 2])));
        // v1 contributes η=8 plus the symmetric edge to v2: 8 + 2 = 10.
        assert_eq!(loss, 10.0);
    }

    #[test]
    fn negative_scores_are_respected() {
        // Foe modelling (§2.2) assigns large negative tightness.
        let mut b = GraphBuilder::new();
        let u = b.add_node(5.0);
        let v = b.add_node(5.0);
        b.add_edge_symmetric(u, v, -100.0).unwrap();
        let g = b.build();
        assert_eq!(willingness(&g, &[u, v]), 10.0 - 200.0);
    }

    #[test]
    fn members_variant_agrees_with_slice_variant() {
        let g = figure1_graph();
        let nodes = ids(&[0, 2, 3]);
        let mut members = BitSet::new(4);
        for v in &nodes {
            members.insert(v.index());
        }
        assert_eq!(
            willingness(&g, &nodes),
            willingness_of_members(&g, &members, &nodes)
        );
    }
}

//! Error type for problem construction and solution validation.

use std::fmt;
use waso_graph::GraphError;

/// Errors raised when constructing instances or validating groups.
#[derive(Debug, Clone)]
pub enum CoreError {
    /// `k` must satisfy `1 <= k <= n`.
    InvalidGroupSize {
        /// Requested group size.
        k: usize,
        /// Number of nodes available.
        n: usize,
    },
    /// A group referenced a node outside the graph.
    UnknownNode(u32),
    /// A group contained the same node twice.
    DuplicateMember(u32),
    /// A group had the wrong number of members.
    WrongSize {
        /// Members provided.
        got: usize,
        /// Members required (`k`).
        want: usize,
    },
    /// The induced subgraph of the group is not connected although the
    /// instance requires it (§2.1).
    Disconnected,
    /// A per-node parameter array (λ weights) had the wrong length.
    BadParameterLength {
        /// Entries provided.
        got: usize,
        /// Entries required (`n`).
        want: usize,
    },
    /// A λ weight was outside `[0, 1]`.
    LambdaOutOfRange {
        /// Offending node.
        node: u32,
        /// Offending value.
        value: f64,
    },
    /// Rebuilding a derived graph failed structurally.
    Graph(GraphError),
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

/// Hand-written so the one float payload (`LambdaOutOfRange::value`)
/// compares by bit pattern: that keeps the equivalence total (NaN == NaN),
/// which lets `CoreError` — and every error type wrapping it, like
/// `waso_algos::SolveError` — be `Eq`.
impl PartialEq for CoreError {
    fn eq(&self, other: &Self) -> bool {
        use CoreError::*;
        match (self, other) {
            (InvalidGroupSize { k: a, n: b }, InvalidGroupSize { k: c, n: d }) => (a, b) == (c, d),
            (UnknownNode(a), UnknownNode(b)) => a == b,
            (DuplicateMember(a), DuplicateMember(b)) => a == b,
            (WrongSize { got: a, want: b }, WrongSize { got: c, want: d }) => (a, b) == (c, d),
            (Disconnected, Disconnected) => true,
            (BadParameterLength { got: a, want: b }, BadParameterLength { got: c, want: d }) => {
                (a, b) == (c, d)
            }
            (LambdaOutOfRange { node: a, value: x }, LambdaOutOfRange { node: b, value: y }) => {
                a == b && x.to_bits() == y.to_bits()
            }
            (Graph(a), Graph(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for CoreError {}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidGroupSize { k, n } => {
                write!(f, "group size k={k} invalid for a graph with {n} nodes")
            }
            CoreError::UnknownNode(v) => write!(f, "group references unknown node v{v}"),
            CoreError::DuplicateMember(v) => write!(f, "node v{v} appears twice in the group"),
            CoreError::WrongSize { got, want } => {
                write!(f, "group has {got} members, instance requires {want}")
            }
            CoreError::Disconnected => {
                write!(f, "group does not induce a connected subgraph")
            }
            CoreError::BadParameterLength { got, want } => {
                write!(
                    f,
                    "parameter array has {got} entries, graph has {want} nodes"
                )
            }
            CoreError::LambdaOutOfRange { node, value } => {
                write!(f, "lambda weight {value} of node v{node} outside [0, 1]")
            }
            CoreError::Graph(e) => write!(f, "graph construction failed: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CoreError::InvalidGroupSize { k: 9, n: 4 }.to_string(),
            "group size k=9 invalid for a graph with 4 nodes"
        );
        assert_eq!(
            CoreError::Disconnected.to_string(),
            "group does not induce a connected subgraph"
        );
        assert!(CoreError::LambdaOutOfRange {
            node: 3,
            value: 1.5
        }
        .to_string()
        .contains("v3"));
    }
}

//! Problem instances: graph + group size + constraint mode + λ weights.

use waso_graph::{GraphBuilder, SocialGraph};

use crate::error::CoreError;

/// A validated WASO instance.
///
/// Holds the scored graph, the requested group size `k`, and whether the
/// connected-subgraph constraint of §2.1 applies (`false` models WASO-dis,
/// §2.2 "Separate Groups"). Per-node λ weights (footnote 7) are folded into
/// *effective scores* at construction via [`WasoInstance::with_lambda`], so
/// solvers only ever evaluate Eq. (1).
#[derive(Debug, Clone)]
pub struct WasoInstance {
    graph: SocialGraph,
    k: usize,
    connectivity: bool,
}

impl WasoInstance {
    /// Creates a standard (connectivity-constrained) instance.
    pub fn new(graph: SocialGraph, k: usize) -> Result<Self, CoreError> {
        Self::build(graph, k, true)
    }

    /// Creates a WASO-dis instance (no connectivity constraint).
    pub fn without_connectivity(graph: SocialGraph, k: usize) -> Result<Self, CoreError> {
        Self::build(graph, k, false)
    }

    fn build(graph: SocialGraph, k: usize, connectivity: bool) -> Result<Self, CoreError> {
        let n = graph.num_nodes();
        if k == 0 || k > n {
            return Err(CoreError::InvalidGroupSize { k, n });
        }
        Ok(Self {
            graph,
            k,
            connectivity,
        })
    }

    /// Creates an instance whose objective uses per-node weights λ_i
    /// (footnote 7):
    ///
    /// ```text
    /// W(F) = Σ_i ( λ_i η_i + (1-λ_i) Σ_j τ_{i,j} )
    /// ```
    ///
    /// The weights are folded into the stored scores (`η̃ = λη`,
    /// `τ̃_{i,·} = (1-λ_i) τ_{i,·}`), so the returned instance is a plain
    /// Eq.-(1) instance over the transformed graph.
    pub fn with_lambda(graph: SocialGraph, k: usize, lambda: &[f64]) -> Result<Self, CoreError> {
        let transformed = apply_lambda(&graph, lambda)?;
        Self::build(transformed, k, true)
    }

    /// The scored graph (with λ already applied, if any).
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// Requested group size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether solutions must induce a connected subgraph.
    pub fn requires_connectivity(&self) -> bool {
        self.connectivity
    }

    /// Same graph, different `k` — the paper's §1 use case of solving for a
    /// whole range of group sizes and letting the organizer pick.
    pub fn with_k(&self, k: usize) -> Result<Self, CoreError> {
        Self::build(self.graph.clone(), k, self.connectivity)
    }

    /// Consumes the instance, returning the graph.
    pub fn into_graph(self) -> SocialGraph {
        self.graph
    }
}

/// Rebuilds a graph with λ weights folded into the scores:
/// `η̃_i = λ_i η_i`, `τ̃_{i,j} = (1-λ_i) τ_{i,j}` (note: the weight of the
/// *owner* `i` scales its outgoing tightness, per footnote 7).
pub fn apply_lambda(g: &SocialGraph, lambda: &[f64]) -> Result<SocialGraph, CoreError> {
    if lambda.len() != g.num_nodes() {
        return Err(CoreError::BadParameterLength {
            got: lambda.len(),
            want: g.num_nodes(),
        });
    }
    for (i, &l) in lambda.iter().enumerate() {
        if !(0.0..=1.0).contains(&l) {
            return Err(CoreError::LambdaOutOfRange {
                node: i as u32,
                value: l,
            });
        }
    }
    let mut b = GraphBuilder::with_capacity(g.num_nodes(), g.num_edges());
    for v in g.node_ids() {
        b.add_node(lambda[v.index()] * g.interest(v));
    }
    for (u, v, tau_uv, tau_vu) in g.undirected_edges() {
        b.add_edge(
            u,
            v,
            (1.0 - lambda[u.index()]) * tau_uv,
            (1.0 - lambda[v.index()]) * tau_vu,
        )?;
    }
    Ok(b.try_build()?)
}

/// Convenience: a uniform λ for every node.
pub fn uniform_lambda(n: usize, lambda: f64) -> Vec<f64> {
    vec![lambda; n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::willingness::willingness;
    use waso_graph::{GraphBuilder, NodeId};

    fn two_nodes() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let u = b.add_node(10.0);
        let v = b.add_node(20.0);
        b.add_edge(u, v, 2.0, 4.0).unwrap();
        b.build()
    }

    #[test]
    fn validates_group_size() {
        let g = two_nodes();
        assert!(WasoInstance::new(g.clone(), 0).is_err());
        assert!(WasoInstance::new(g.clone(), 3).is_err());
        let inst = WasoInstance::new(g, 2).unwrap();
        assert_eq!(inst.k(), 2);
        assert!(inst.requires_connectivity());
    }

    #[test]
    fn without_connectivity_flag() {
        let inst = WasoInstance::without_connectivity(two_nodes(), 1).unwrap();
        assert!(!inst.requires_connectivity());
    }

    #[test]
    fn lambda_weights_scale_scores() {
        // λ_0 = 1 (interest only), λ_1 = 0 (tightness only).
        let inst = WasoInstance::with_lambda(two_nodes(), 2, &[1.0, 0.0]).unwrap();
        let g = inst.graph();
        assert_eq!(g.interest(NodeId(0)), 10.0);
        assert_eq!(g.interest(NodeId(1)), 0.0);
        assert_eq!(g.tightness(NodeId(0), NodeId(1)), Some(0.0));
        assert_eq!(g.tightness(NodeId(1), NodeId(0)), Some(4.0));
        // W({0,1}) = 1·10 + 0·20 + 0·2 + 1·4 = 14.
        assert_eq!(willingness(g, &[NodeId(0), NodeId(1)]), 14.0);
    }

    #[test]
    fn lambda_half_is_half_of_everything() {
        let g = two_nodes();
        let w_raw = willingness(&g, &[NodeId(0), NodeId(1)]);
        let inst = WasoInstance::with_lambda(g, 2, &uniform_lambda(2, 0.5)).unwrap();
        let w_half = willingness(inst.graph(), &[NodeId(0), NodeId(1)]);
        assert!((w_half - 0.5 * w_raw).abs() < 1e-12);
    }

    #[test]
    fn lambda_validation() {
        let g = two_nodes();
        assert_eq!(
            WasoInstance::with_lambda(g.clone(), 1, &[0.5]).unwrap_err(),
            CoreError::BadParameterLength { got: 1, want: 2 }
        );
        assert!(matches!(
            WasoInstance::with_lambda(g, 1, &[0.5, 1.5]).unwrap_err(),
            CoreError::LambdaOutOfRange { node: 1, .. }
        ));
    }

    #[test]
    fn with_k_rescopes_the_same_graph() {
        let inst = WasoInstance::new(two_nodes(), 1).unwrap();
        let wider = inst.with_k(2).unwrap();
        assert_eq!(wider.k(), 2);
        assert_eq!(wider.graph(), inst.graph());
        assert!(inst.with_k(5).is_err());
    }
}

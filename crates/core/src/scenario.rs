//! The §2.2 scenario parameterizations.
//!
//! Every scenario in the paper is a graph/parameter transformation followed
//! by plain WASO solving:
//!
//! * **Couple** — two people who must attend together are merged into one
//!   node (`η` summed, incident tightness summed), and `k` shrinks by one;
//! * **Foe** — a pair's tightness is set to a large negative value so no
//!   high-willingness group contains both;
//! * **Invitation** — candidates are the inviter's neighbours; their λ is 1
//!   (only their interest counts) while the inviter keeps λ = 0 (only the
//!   inviter's closeness to the guests counts);
//! * **Exhibition** — λ_i = 1 for everyone (pure interest);
//! * **House-warming** — λ_i = 0 for everyone (pure tightness);
//! * **Separate groups** — the Theorem-2 virtual-node reduction from
//!   WASO-dis to WASO: a virtual node `v` with
//!   `η_v = ε + Σ_i (η_i + Σ_j τ_{i,j})` and `τ_{v,·} = 0` edges to every
//!   node; solve for `k+1` and strip `v`.

use waso_graph::{subgraph, GraphBuilder, NodeId, SocialGraph};

use crate::error::CoreError;
use crate::instance::{apply_lambda, uniform_lambda, WasoInstance};

/// Result of merging a couple: the transformed graph and the id mapping.
#[derive(Debug, Clone)]
pub struct CoupleMerge {
    /// The merged graph (one node fewer than the input).
    pub graph: SocialGraph,
    /// `to_old[new_id]` = the original ids this node represents (length 1,
    /// or 2 for the merged node).
    pub to_old: Vec<Vec<NodeId>>,
    /// Id of the merged node in the new graph.
    pub merged: NodeId,
}

/// Merges `a` and `b` into one node (§2.2 "Couple"): for each neighbour
/// `x`, `τ_{merged,x} = τ_{a,x} + τ_{b,x}` (terms missing when the edge is
/// absent), symmetrically for incoming. Remember to reduce `k` by one when
/// solving the merged instance.
///
/// Fidelity note: the paper sets `η_merged = η_a + η_b`, which silently
/// drops the couple's mutual tightness `τ_{a,b} + τ_{b,a}` from every group
/// containing them. We add that constant to the merged interest so Eq. (1)
/// willingness is *exactly* preserved between the merged and original
/// graphs (`expand_couple` round-trips verify this).
pub fn merge_couple(g: &SocialGraph, a: NodeId, b: NodeId) -> Result<CoupleMerge, CoreError> {
    let n = g.num_nodes() as u32;
    if a.0 >= n {
        return Err(CoreError::UnknownNode(a.0));
    }
    if b.0 >= n {
        return Err(CoreError::UnknownNode(b.0));
    }
    if a == b {
        return Err(CoreError::DuplicateMember(a.0));
    }

    // New ids: all nodes except b keep relative order; a becomes the merge.
    let mut new_id = vec![0u32; g.num_nodes()];
    let mut to_old: Vec<Vec<NodeId>> = Vec::with_capacity(g.num_nodes() - 1);
    for v in g.node_ids() {
        if v == b {
            continue;
        }
        new_id[v.index()] = to_old.len() as u32;
        if v == a {
            to_old.push(vec![a, b]);
        } else {
            to_old.push(vec![v]);
        }
    }
    new_id[b.index()] = new_id[a.index()];
    let merged = NodeId(new_id[a.index()]);

    let mut builder = GraphBuilder::with_capacity(to_old.len(), g.num_edges());
    let internal_tightness = g.pair_weight(a, b).unwrap_or(0.0);
    for olds in &to_old {
        let mut eta: f64 = olds.iter().map(|&v| g.interest(v)).sum();
        if olds.len() == 2 {
            // Preserve the couple's mutual tightness (see the doc note).
            eta += internal_tightness;
        }
        builder.add_node(eta);
    }

    // Accumulate directed tightness between new ids (summing parallel edges
    // created by the merge), then emit each unordered pair once. A BTreeMap
    // keeps the emission order a pure function of the input (rule D1).
    let mut acc: std::collections::BTreeMap<(u32, u32), f64> = std::collections::BTreeMap::new();
    for (u, v, tau_uv, tau_vu) in g.undirected_edges() {
        let (nu, nv) = (new_id[u.index()], new_id[v.index()]);
        if nu == nv {
            continue; // the a–b edge itself disappears
        }
        *acc.entry((nu, nv)).or_insert(0.0) += tau_uv;
        *acc.entry((nv, nu)).or_insert(0.0) += tau_vu;
    }
    let pairs: Vec<(u32, u32)> = acc.keys().filter(|&&(x, y)| x < y).copied().collect();
    for (x, y) in pairs {
        let fwd = acc[&(x, y)];
        let back = acc[&(y, x)];
        builder
            .add_edge(NodeId(x), NodeId(y), fwd, back)
            .expect("merged ids are valid");
    }

    Ok(CoupleMerge {
        graph: builder.build(),
        to_old,
        merged,
    })
}

/// Expands a group over a merged graph back to original ids.
pub fn expand_couple(merge: &CoupleMerge, group: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(group.len() + 1);
    for &v in group {
        out.extend_from_slice(&merge.to_old[v.index()]);
    }
    out.sort_unstable();
    out
}

/// Marks `a` and `b` as foes (§2.2): their mutual tightness becomes
/// `-penalty` (the edge is created if absent). With
/// `penalty > Σ(η) + Σ(τ)` no positive-willingness group keeps both.
pub fn mark_foes(
    g: &SocialGraph,
    a: NodeId,
    b: NodeId,
    penalty: f64,
) -> Result<SocialGraph, CoreError> {
    let n = g.num_nodes() as u32;
    if a.0 >= n {
        return Err(CoreError::UnknownNode(a.0));
    }
    if b.0 >= n {
        return Err(CoreError::UnknownNode(b.0));
    }
    if a == b {
        return Err(CoreError::DuplicateMember(a.0));
    }
    let mut builder = GraphBuilder::with_capacity(g.num_nodes(), g.num_edges() + 1);
    for v in g.node_ids() {
        builder.add_node(g.interest(v));
    }
    let mut seen_pair = false;
    for (u, v, tau_uv, tau_vu) in g.undirected_edges() {
        if (u == a && v == b) || (u == b && v == a) {
            seen_pair = true;
            builder
                .add_edge(u, v, -penalty, -penalty)
                .expect("existing edge endpoints are valid");
        } else {
            builder.add_edge(u, v, tau_uv, tau_vu).expect("valid edge");
        }
    }
    if !seen_pair {
        builder
            .add_edge(a, b, -penalty, -penalty)
            .expect("validated endpoints");
    }
    Ok(builder.build())
}

/// A sensible default foe penalty: strictly larger than any achievable
/// willingness on `g` (positive part of all scores plus 1).
pub fn default_foe_penalty(g: &SocialGraph) -> f64 {
    let pos_interest: f64 = g.interests().iter().map(|&x| x.max(0.0)).sum();
    let pos_tau: f64 = g
        .undirected_edges()
        .map(|(_, _, a, b)| a.max(0.0) + b.max(0.0))
        .sum();
    pos_interest + pos_tau + 1.0
}

/// The invitation scenario (§2.2): restrict to the inviter's closed
/// neighbourhood; guests get λ = 1 (pure interest), the inviter λ = 0
/// (pure closeness to the guests). Node 0 of the returned instance is the
/// inviter. `k` counts the inviter.
pub fn invitation(
    g: &SocialGraph,
    inviter: NodeId,
    k: usize,
) -> Result<(WasoInstance, subgraph::Induced), CoreError> {
    if inviter.0 >= g.num_nodes() as u32 {
        return Err(CoreError::UnknownNode(inviter.0));
    }
    let ego = subgraph::ego_network(g, inviter, 1, usize::MAX);
    let mut lambda = uniform_lambda(ego.graph.num_nodes(), 1.0);
    lambda[0] = 0.0; // the inviter (ego centre is node 0)
    let weighted = apply_lambda(&ego.graph, &lambda)?;
    let instance = WasoInstance::new(weighted, k)?;
    Ok((instance, ego))
}

/// Exhibition outreach (§2.2): λ_i = 1 for all — only interest matters.
pub fn exhibition(g: &SocialGraph, k: usize) -> Result<WasoInstance, CoreError> {
    let weighted = apply_lambda(g, &uniform_lambda(g.num_nodes(), 1.0))?;
    WasoInstance::new(weighted, k)
}

/// House-warming party (§2.2): λ_i = 0 for all — only tightness matters.
pub fn house_warming(g: &SocialGraph, k: usize) -> Result<WasoInstance, CoreError> {
    let weighted = apply_lambda(g, &uniform_lambda(g.num_nodes(), 0.0))?;
    WasoInstance::new(weighted, k)
}

/// The Theorem-2 reduction of WASO-dis to WASO via a virtual node.
#[derive(Debug, Clone)]
pub struct VirtualNodeReduction {
    /// The augmented instance (asks for `k + 1` nodes).
    pub instance: WasoInstance,
    /// Id of the virtual node in the augmented graph (= original `n`).
    pub virtual_node: NodeId,
}

impl VirtualNodeReduction {
    /// Removes the virtual node from an augmented-graph group, returning the
    /// original-graph ids.
    pub fn strip(&self, group: &[NodeId]) -> Vec<NodeId> {
        group
            .iter()
            .copied()
            .filter(|&v| v != self.virtual_node)
            .collect()
    }
}

/// Builds the separate-groups reduction (§2.2, Theorem 2): virtual node `v`
/// with `η_v = ε + Σ_i (η_i + Σ_j τ_{i,j})`, zero-tightness edges to every
/// node, and group size `k + 1`.
///
/// ```
/// use waso_core::scenario;
/// use waso_graph::GraphBuilder;
///
/// // Two isolated people: no connected pair exists, but the camping trip
/// // (WASO-dis) may take both.
/// let mut b = GraphBuilder::new();
/// b.add_node(0.9);
/// b.add_node(0.8);
/// let reduction = scenario::separate_groups(&b.build(), 2, 1.0).unwrap();
/// assert_eq!(reduction.instance.k(), 3); // k + 1 with the virtual node
/// assert_eq!(reduction.instance.graph().num_nodes(), 3);
/// // The virtual node's interest dominates everything else combined.
/// let eta_v = reduction.instance.graph().interest(reduction.virtual_node);
/// assert_eq!(eta_v, 1.0 + 0.9 + 0.8);
/// ```
pub fn separate_groups(
    g: &SocialGraph,
    k: usize,
    epsilon: f64,
) -> Result<VirtualNodeReduction, CoreError> {
    assert!(epsilon > 0.0, "Theorem 2 requires a positive epsilon");
    let n = g.num_nodes();
    if k == 0 || k > n {
        return Err(CoreError::InvalidGroupSize { k, n });
    }
    let eta_v = epsilon + g.total_willingness_upper();

    let mut builder = GraphBuilder::with_capacity(n + 1, g.num_edges() + n);
    for v in g.node_ids() {
        builder.add_node(g.interest(v));
    }
    let virtual_node = builder.add_node(eta_v);
    for (u, v, tau_uv, tau_vu) in g.undirected_edges() {
        builder.add_edge(u, v, tau_uv, tau_vu).expect("valid edge");
    }
    for v in g.node_ids() {
        builder
            .add_edge(virtual_node, v, 0.0, 0.0)
            .expect("virtual edges are valid");
    }
    let instance = WasoInstance::new(builder.build(), k + 1)?;
    Ok(VirtualNodeReduction {
        instance,
        virtual_node,
    })
}

/// Restricts the candidate pool to people satisfying `keep` — the paper's
/// §6 future-work items: filtering by calendar availability ("integrating
/// the proposed system with Google Calendar to filter unavailable users")
/// and by profile attributes ("location and gender … can be specified as
/// input parameters to further filter out unsuitable candidate attendees").
///
/// Returns the induced subgraph over the kept nodes plus the id mapping
/// back to the full network (`Induced::parent_id`). Scores are preserved;
/// edges to removed people disappear.
pub fn filter_candidates<P: FnMut(NodeId) -> bool>(
    g: &SocialGraph,
    mut keep: P,
) -> subgraph::Induced {
    let kept: Vec<NodeId> = g.node_ids().filter(|&v| keep(v)).collect();
    subgraph::induced_subgraph(g, &kept)
}

/// Availability filter: `available[i]` says whether person `i` can attend
/// (the calendar-integration use case of §6). Convenience wrapper over
/// [`filter_candidates`].
///
/// # Panics
/// Panics if `available` has the wrong length.
pub fn filter_available(g: &SocialGraph, available: &[bool]) -> subgraph::Induced {
    assert_eq!(
        available.len(),
        g.num_nodes(),
        "availability array must cover every node"
    );
    filter_candidates(g, |v| available[v.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::willingness::willingness;

    /// Path 0-1-2-3 with distinct interests and asymmetric tightness.
    fn path4() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..4).map(|i| b.add_node((i + 1) as f64)).collect();
        b.add_edge(ids[0], ids[1], 1.0, 2.0).unwrap();
        b.add_edge(ids[1], ids[2], 3.0, 4.0).unwrap();
        b.add_edge(ids[2], ids[3], 5.0, 6.0).unwrap();
        b.build()
    }

    #[test]
    fn couple_merge_sums_scores() {
        let g = path4();
        let m = merge_couple(&g, NodeId(1), NodeId(2)).unwrap();
        assert_eq!(m.graph.num_nodes(), 3);
        // Merged node: η = 2 + 3 plus the internal edge τ 3 + 4 = 12.
        assert_eq!(m.graph.interest(m.merged), 12.0);
        // Old edge 0→1 (τ=1) becomes 0→merged; old 1→0 (τ=2) becomes merged→0.
        assert_eq!(m.graph.tightness(NodeId(0), m.merged), Some(1.0));
        assert_eq!(m.graph.tightness(m.merged, NodeId(0)), Some(2.0));
        // The internal 1–2 edge disappears.
        assert_eq!(m.graph.num_edges(), 2);
    }

    #[test]
    fn couple_merge_sums_parallel_edges() {
        // Triangle: both a and b adjacent to x — the merged node's edge to x
        // accumulates both tightness contributions.
        let mut b = GraphBuilder::new();
        let a = b.add_node(1.0);
        let c = b.add_node(1.0);
        let x = b.add_node(1.0);
        b.add_edge(a, x, 1.0, 10.0).unwrap();
        b.add_edge(c, x, 2.0, 20.0).unwrap();
        b.add_edge(a, c, 5.0, 5.0).unwrap();
        let g = b.build();
        let m = merge_couple(&g, a, c).unwrap();
        assert_eq!(m.graph.num_nodes(), 2);
        assert_eq!(m.graph.tightness(m.merged, NodeId(1)), Some(3.0));
        assert_eq!(m.graph.tightness(NodeId(1), m.merged), Some(30.0));
    }

    #[test]
    fn couple_expand_restores_both_people() {
        let g = path4();
        let m = merge_couple(&g, NodeId(1), NodeId(2)).unwrap();
        let expanded = expand_couple(&m, &[m.merged, NodeId(0)]);
        assert_eq!(expanded, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn couple_merge_validates_inputs() {
        let g = path4();
        assert!(merge_couple(&g, NodeId(0), NodeId(0)).is_err());
        assert!(merge_couple(&g, NodeId(0), NodeId(9)).is_err());
    }

    #[test]
    fn foes_get_negative_tightness() {
        let g = path4();
        let penalty = default_foe_penalty(&g);
        // Existing edge: overwritten.
        let g2 = mark_foes(&g, NodeId(0), NodeId(1), penalty).unwrap();
        assert_eq!(g2.tightness(NodeId(0), NodeId(1)), Some(-penalty));
        // Non-adjacent pair: edge created.
        let g3 = mark_foes(&g, NodeId(0), NodeId(3), penalty).unwrap();
        assert_eq!(g3.num_edges(), g.num_edges() + 1);
        assert_eq!(g3.tightness(NodeId(3), NodeId(0)), Some(-penalty));
        // Any group with both foes has negative willingness.
        let w = willingness(&g3, &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert!(w < 0.0, "foe pair must poison the group, got {w}");
    }

    #[test]
    fn default_penalty_dominates_positive_scores() {
        let g = path4();
        let p = default_foe_penalty(&g);
        // Positive mass: interests 10 + taus (1+2+3+4+5+6)=21 → 32.
        assert_eq!(p, 32.0);
    }

    #[test]
    fn invitation_restricts_to_neighbourhood() {
        let g = path4();
        let (inst, ego) = invitation(&g, NodeId(1), 2).unwrap();
        // Closed neighbourhood of v1 = {1, 0, 2}.
        assert_eq!(inst.graph().num_nodes(), 3);
        assert_eq!(ego.parent_id(NodeId(0)), NodeId(1));
        // Inviter keeps tightness (λ=0): outgoing τ intact, interest zeroed.
        assert_eq!(inst.graph().interest(NodeId(0)), 0.0);
        // Guests keep interest (λ=1) and lose outgoing tightness.
        let guest_ids = [NodeId(1), NodeId(2)];
        for v in guest_ids {
            assert!(inst.graph().interest(v) > 0.0);
            for (_, tau, _) in inst.graph().neighbor_entries(v) {
                assert_eq!(tau, 0.0, "guest outgoing tightness must be zeroed");
            }
        }
    }

    #[test]
    fn exhibition_keeps_only_interest() {
        let g = path4();
        let inst = exhibition(&g, 2).unwrap();
        assert_eq!(willingness(inst.graph(), &[NodeId(0), NodeId(1)]), 3.0);
    }

    #[test]
    fn house_warming_keeps_only_tightness() {
        let g = path4();
        let inst = house_warming(&g, 2).unwrap();
        assert_eq!(
            willingness(inst.graph(), &[NodeId(0), NodeId(1)]),
            3.0_f64.min(3.0)
        );
        // η zeroed, τ intact: W = 1 + 2 = 3.
        assert_eq!(willingness(inst.graph(), &[NodeId(1), NodeId(2)]), 7.0);
        assert_eq!(inst.graph().interest(NodeId(3)), 0.0);
    }

    #[test]
    fn filter_candidates_keeps_scores_and_structure() {
        let g = path4();
        // Keep even-indexed people only: {0, 2} — the 1-2 and 2-3 edges
        // disappear, as does node 1's bridge.
        let filtered = filter_candidates(&g, |v| v.0 % 2 == 0);
        assert_eq!(filtered.graph.num_nodes(), 2);
        assert_eq!(filtered.graph.num_edges(), 0);
        assert_eq!(filtered.parent_id(NodeId(0)), NodeId(0));
        assert_eq!(filtered.parent_id(NodeId(1)), NodeId(2));
        assert_eq!(filtered.graph.interest(NodeId(1)), 3.0);
    }

    #[test]
    fn filter_available_drops_busy_people() {
        let g = path4();
        let filtered = filter_available(&g, &[true, true, true, false]);
        assert_eq!(filtered.graph.num_nodes(), 3);
        // The 2-3 edge went with node 3; 0-1-2 chain survives with scores.
        assert_eq!(filtered.graph.num_edges(), 2);
        assert_eq!(filtered.graph.tightness(NodeId(1), NodeId(2)), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "availability array")]
    fn filter_available_validates_length() {
        let g = path4();
        let _ = filter_available(&g, &[true, false]);
    }

    #[test]
    fn virtual_node_dominates_and_strips() {
        let g = path4();
        let red = separate_groups(&g, 2, 1.0).unwrap();
        let aug = red.instance.graph();
        assert_eq!(aug.num_nodes(), 5);
        assert_eq!(red.instance.k(), 3);
        // η_v = ε + Σ(η + τ) = 1 + 10 + 21 = 32.
        assert_eq!(aug.interest(red.virtual_node), 32.0);
        // Virtual node adjacent to everyone with zero tightness.
        for v in g.node_ids() {
            assert_eq!(aug.tightness(red.virtual_node, v), Some(0.0));
        }
        let stripped = red.strip(&[NodeId(0), red.virtual_node, NodeId(3)]);
        assert_eq!(stripped, vec![NodeId(0), NodeId(3)]);
    }

    #[test]
    fn virtual_node_makes_disconnected_sets_feasible() {
        let g = path4();
        let red = separate_groups(&g, 2, 1.0).unwrap();
        // {0, 3} is disconnected in g, but {0, 3, v} is connected via v.
        let group = crate::Group::new(&red.instance, vec![NodeId(0), NodeId(3), red.virtual_node]);
        assert!(group.is_ok());
        // Willingness = η_0 + η_3 + η_v (zero-tightness edges): 1+4+32.
        assert_eq!(group.unwrap().willingness(), 37.0);
    }
}

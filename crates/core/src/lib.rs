//! # waso-core
//!
//! The WASO problem core (§2 of the paper).
//!
//! * [`WasoInstance`] — a validated problem instance: a scored
//!   [`waso_graph::SocialGraph`], a group size `k`, and whether the
//!   connectivity constraint applies;
//! * [`willingness()`] — the objective `W(F) = Σ_i (η_i + Σ_j τ_{i,j})`
//!   (Eq. 1), in full and incremental (marginal-gain) form;
//! * [`Group`] — a validated solution with its willingness;
//! * [`fingerprint`] — incrementally-updatable structural digests of an
//!   instance, the key half of session-level solve memoization;
//! * [`frontier`] — the `VS`/`VA` growth machinery shared by every solver:
//!   a partial solution plus the candidate set of nodes neighbouring it,
//!   with O(1) uniform sampling and running willingness;
//! * [`scenario`] — the §2.2 parameterizations: couples, foes, invitation,
//!   exhibition, house-warming, and the separate-groups (WASO-dis)
//!   virtual-node reduction of Theorem 2.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod fingerprint;
pub mod frontier;
pub mod instance;
pub mod scenario;
pub mod solution;
pub mod willingness;

pub use error::CoreError;
pub use fingerprint::InstanceFingerprint;
pub use frontier::{Frontier, GrowthWorkspace};
pub use instance::WasoInstance;
pub use solution::Group;
pub use willingness::{marginal_gain, willingness, willingness_of_members};

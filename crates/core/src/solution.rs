//! Validated solutions (`F` in the paper's notation).

use waso_graph::{traversal, NodeId};

use crate::error::CoreError;
use crate::instance::WasoInstance;
use crate::willingness::willingness;

/// A feasible WASO solution: exactly `k` distinct nodes, connected if the
/// instance requires it, with its willingness cached.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    nodes: Vec<NodeId>,
    willingness: f64,
}

impl Group {
    /// Validates `nodes` against `instance` and computes the willingness.
    pub fn new(instance: &WasoInstance, mut nodes: Vec<NodeId>) -> Result<Self, CoreError> {
        let g = instance.graph();
        let n = g.num_nodes() as u32;
        for &v in &nodes {
            if v.0 >= n {
                return Err(CoreError::UnknownNode(v.0));
            }
        }
        nodes.sort_unstable();
        if let Some(w) = nodes.windows(2).find(|w| w[0] == w[1]) {
            return Err(CoreError::DuplicateMember(w[0].0));
        }
        if nodes.len() != instance.k() {
            return Err(CoreError::WrongSize {
                got: nodes.len(),
                want: instance.k(),
            });
        }
        if instance.requires_connectivity() && !traversal::is_connected_subset(g, &nodes) {
            return Err(CoreError::Disconnected);
        }
        let willingness = willingness(g, &nodes);
        Ok(Self { nodes, willingness })
    }

    /// Constructs a group that is known-valid (e.g. produced by a solver
    /// that maintains feasibility), re-deriving only the willingness.
    ///
    /// # Panics
    /// Debug builds re-run full validation and panic on violations.
    pub fn new_unchecked(instance: &WasoInstance, mut nodes: Vec<NodeId>) -> Self {
        nodes.sort_unstable();
        debug_assert!(
            Group::new(instance, nodes.clone()).is_ok(),
            "new_unchecked received an infeasible group"
        );
        let willingness = willingness(instance.graph(), &nodes);
        Self { nodes, willingness }
    }

    /// The members, sorted by node id.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of members (= `k` of the originating instance).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Groups are never empty (instances require `k >= 1`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The cached willingness `W(F)`.
    pub fn willingness(&self) -> f64 {
        self.willingness
    }

    /// Membership test (binary search over the sorted members).
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// Re-validates against an instance (useful after graph edits).
    pub fn validate(&self, instance: &WasoInstance) -> Result<(), CoreError> {
        Group::new(instance, self.nodes.clone()).map(|_| ())
    }
}

impl std::fmt::Display for Group {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}} (willingness {:.4})", self.willingness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waso_graph::GraphBuilder;

    fn path4_instance(k: usize, connected: bool) -> WasoInstance {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..4).map(|i| b.add_node(i as f64)).collect();
        for w in ids.windows(2) {
            b.add_edge_symmetric(w[0], w[1], 1.0).unwrap();
        }
        let g = b.build();
        if connected {
            WasoInstance::new(g, k).unwrap()
        } else {
            WasoInstance::without_connectivity(g, k).unwrap()
        }
    }

    #[test]
    fn accepts_valid_connected_group() {
        let inst = path4_instance(3, true);
        let g = Group::new(&inst, vec![NodeId(2), NodeId(0), NodeId(1)]).unwrap();
        assert_eq!(g.nodes(), &[NodeId(0), NodeId(1), NodeId(2)]);
        // η 0+1+2 plus two symmetric unit edges = 3 + 4.
        assert_eq!(g.willingness(), 7.0);
        assert!(g.contains(NodeId(1)));
        assert!(!g.contains(NodeId(3)));
    }

    #[test]
    fn rejects_structural_violations() {
        let inst = path4_instance(2, true);
        assert_eq!(
            Group::new(&inst, vec![NodeId(0), NodeId(9)]).unwrap_err(),
            CoreError::UnknownNode(9)
        );
        assert_eq!(
            Group::new(&inst, vec![NodeId(0), NodeId(0)]).unwrap_err(),
            CoreError::DuplicateMember(0)
        );
        assert_eq!(
            Group::new(&inst, vec![NodeId(0)]).unwrap_err(),
            CoreError::WrongSize { got: 1, want: 2 }
        );
        assert_eq!(
            Group::new(&inst, vec![NodeId(0), NodeId(2)]).unwrap_err(),
            CoreError::Disconnected
        );
    }

    #[test]
    fn disconnected_allowed_without_constraint() {
        let inst = path4_instance(2, false);
        let g = Group::new(&inst, vec![NodeId(0), NodeId(3)]).unwrap();
        assert_eq!(g.willingness(), 3.0); // no internal edge
    }

    #[test]
    fn unchecked_matches_checked() {
        let inst = path4_instance(2, true);
        let a = Group::new(&inst, vec![NodeId(1), NodeId(2)]).unwrap();
        let b = Group::new_unchecked(&inst, vec![NodeId(2), NodeId(1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_readable() {
        let inst = path4_instance(2, true);
        let g = Group::new(&inst, vec![NodeId(1), NodeId(0)]).unwrap();
        assert_eq!(g.to_string(), "{v0, v1} (willingness 3.0000)");
    }

    #[test]
    fn validate_roundtrip() {
        let inst = path4_instance(2, true);
        let g = Group::new(&inst, vec![NodeId(0), NodeId(1)]).unwrap();
        assert!(g.validate(&inst).is_ok());
        let smaller = path4_instance(3, true);
        assert!(g.validate(&smaller).is_err());
    }
}

//! Deterministic community detection for scale-adaptive decomposition.
//!
//! The paper's sequel (*Scale-Adaptive Group Optimization for Social
//! Activity Planning*) reaches 10^5–10^6-node graphs by partitioning the
//! network into communities, solving per community, and stitching at the
//! boundaries. This module provides the partitioning stage: a **seeded
//! label-propagation** pass over the weighted graph (each node repeatedly
//! adopts the label with the largest incident pair-weight), plus a
//! deterministic coarsening step that merges communities down to a target
//! count.
//!
//! Determinism contract: [`label_propagation`] is a pure function of
//! `(graph, seed, max_rounds)` — the visit order is a seeded shuffle, all
//! tie-breaks go to the smaller label, and the final labels are
//! canonicalized by first occurrence in node-id order. Rerunning with the
//! same arguments yields the identical [`Partition`].

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::csr::{NodeId, SocialGraph};

/// A disjoint partition of a graph's nodes into communities.
///
/// Community ids are dense (`0..num_communities`) and canonical: community
/// 0 is the one containing the smallest node id, community 1 the one
/// containing the smallest node id not in community 0, and so on. Member
/// lists are sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `labels[v]` = community id of node `v`.
    labels: Vec<u32>,
    /// Members per community, sorted ascending.
    members: Vec<Vec<NodeId>>,
}

impl Partition {
    /// Canonicalizes raw per-node labels into a dense partition:
    /// communities are renumbered by the order their first member appears
    /// in node-id order. Labels must be `< raw.len()` (label propagation
    /// uses node ids as labels; explicit partitions should too).
    pub fn from_raw_labels(raw: &[u32]) -> Self {
        let mut dense = vec![u32::MAX; raw.len()];
        let mut labels = Vec::with_capacity(raw.len());
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        for (v, &l) in raw.iter().enumerate() {
            let d = if dense[l as usize] == u32::MAX {
                let id = members.len() as u32;
                dense[l as usize] = id;
                members.push(Vec::new());
                id
            } else {
                dense[l as usize]
            };
            labels.push(d);
            members[d as usize].push(NodeId(v as u32));
        }
        Self { labels, members }
    }

    /// Number of communities.
    pub fn num_communities(&self) -> usize {
        self.members.len()
    }

    /// The community id of node `v`.
    #[inline]
    pub fn community_of(&self, v: NodeId) -> usize {
        self.labels[v.index()] as usize
    }

    /// Per-node community ids.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Members of community `c`, sorted ascending.
    pub fn members(&self, c: usize) -> &[NodeId] {
        &self.members[c]
    }

    /// Iterates `(community id, members)` pairs.
    pub fn communities(&self) -> impl Iterator<Item = (usize, &[NodeId])> {
        self.members.iter().enumerate().map(|(c, m)| (c, &m[..]))
    }

    /// `true` when `u` and `v` are in the same community.
    pub fn same_community(&self, u: NodeId, v: NodeId) -> bool {
        self.labels[u.index()] == self.labels[v.index()]
    }

    /// Merges communities until at most `target` remain, or returns `self`
    /// unchanged if already within the target. Deterministic: at each step
    /// the smallest community (ties to the smaller id) is merged into the
    /// neighbouring community with the largest total cross pair-weight
    /// (ties to the smaller id; a community with no cross edges merges
    /// into the smallest-id other community).
    pub fn coarsen(self, g: &SocialGraph, target: usize) -> Partition {
        let target = target.max(1);
        if self.num_communities() <= target {
            return self;
        }
        let n_comm = self.num_communities();
        // Aggregated community graph: per-community cross pair-weights.
        // BTreeMaps keep iteration (and therefore merging) deterministic.
        let mut cross: Vec<std::collections::BTreeMap<u32, f64>> = vec![Default::default(); n_comm];
        for u in g.node_ids() {
            let cu = self.labels[u.index()];
            for (v, _, pw) in g.neighbor_entries(u) {
                let cv = self.labels[v.index()];
                if cu < cv {
                    *cross[cu as usize].entry(cv).or_insert(0.0) += pw;
                    *cross[cv as usize].entry(cu).or_insert(0.0) += pw;
                }
            }
        }
        let mut size: Vec<usize> = self.members.iter().map(Vec::len).collect();
        // `parent[c]` tracks where community c ended up (union-find-lite,
        // path-compressed on lookup since merges are few).
        let mut alive: Vec<bool> = vec![true; n_comm];
        let mut parent: Vec<u32> = (0..n_comm as u32).collect();
        let mut remaining = n_comm;
        while remaining > target {
            // Smallest live community (tie: smaller id).
            let (src, _) = (0..n_comm)
                .filter(|&c| alive[c])
                .map(|c| (c, size[c]))
                .min_by_key(|&(c, s)| (s, c))
                .expect("at least one live community");
            // Strongest cross-weight neighbour (tie: smaller id).
            let dst = cross[src]
                .iter()
                .filter(|(&c, _)| alive[c as usize])
                .max_by(|(ca, wa), (cb, wb)| {
                    wa.partial_cmp(wb)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| cb.cmp(ca))
                })
                .map(|(&c, _)| c as usize)
                .unwrap_or_else(|| {
                    (0..n_comm)
                        .find(|&c| alive[c] && c != src)
                        .expect("more than target communities remain")
                });
            // Fold src's cross row into dst and retarget third parties.
            let row = std::mem::take(&mut cross[src]);
            for (c, w) in row {
                let c = c as usize;
                cross[c].remove(&(src as u32));
                if c != dst {
                    *cross[dst].entry(c as u32).or_insert(0.0) += w;
                    *cross[c].entry(dst as u32).or_insert(0.0) += w;
                }
            }
            size[dst] += size[src];
            alive[src] = false;
            parent[src] = dst as u32;
            remaining -= 1;
        }
        let resolve = |mut c: u32| {
            while parent[c as usize] != c {
                c = parent[c as usize];
            }
            c
        };
        let raw: Vec<u32> = self.labels.iter().map(|&l| resolve(l)).collect();
        Partition::from_raw_labels(&raw)
    }
}

/// Seeded weighted label propagation.
///
/// Every node starts in its own community; each round visits the nodes in
/// a seeded shuffled order and moves each node to the label carrying the
/// largest total incident pair-weight (`τ_{u,v} + τ_{v,u}` summed per
/// label; ties to the smaller label, and a node keeps its current label
/// unless a strictly better one exists). Updates are asynchronous (later
/// visits in a round see earlier moves), which is what makes plain label
/// propagation converge. Stops after a full round without changes or
/// after `max_rounds`.
///
/// Isolated nodes end up in singleton communities. `O(max_rounds · m)`.
pub fn label_propagation(g: &SocialGraph, seed: u64, max_rounds: usize) -> Partition {
    let n = g.num_nodes();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    if n == 0 {
        return Partition::from_raw_labels(&labels);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    // Scratch: per-label accumulated weight, plus the touched labels to
    // undo it in O(degree) instead of O(n).
    let mut weight = vec![0.0f64; n];
    let mut touched: Vec<u32> = Vec::new();

    for _ in 0..max_rounds {
        // Fisher–Yates reshuffle per round, all from the one seeded stream.
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut changed = false;
        for &v in &order {
            let v = NodeId(v);
            touched.clear();
            for (u, _, pw) in g.neighbor_entries(v) {
                let l = labels[u.index()];
                if weight[l as usize] == 0.0 {
                    touched.push(l);
                }
                weight[l as usize] += pw;
            }
            if touched.is_empty() {
                continue; // isolated node keeps its own label
            }
            let current = labels[v.index()];
            let mut best = current;
            let mut best_w = if touched.contains(&current) {
                weight[current as usize]
            } else {
                0.0
            };
            for &l in &touched {
                let w = weight[l as usize];
                // Strictly heavier wins; equal weight only wins with a
                // smaller label than the incumbent choice.
                if w > best_w || (w == best_w && l < best) {
                    best = l;
                    best_w = w;
                }
            }
            for &l in &touched {
                weight[l as usize] = 0.0;
            }
            if best != current {
                labels[v.index()] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Partition::from_raw_labels(&labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    const ROUNDS: usize = 16;

    #[test]
    fn empty_and_singleton_graphs() {
        let g = crate::GraphBuilder::new().build();
        assert_eq!(label_propagation(&g, 0, ROUNDS).num_communities(), 0);
        let mut b = crate::GraphBuilder::new();
        b.add_node(1.0);
        let p = label_propagation(&b.build(), 0, ROUNDS);
        assert_eq!(p.num_communities(), 1);
        assert_eq!(p.members(0), &[NodeId(0)]);
    }

    #[test]
    fn isolated_nodes_stay_singletons() {
        let mut b = crate::GraphBuilder::new();
        for _ in 0..4 {
            b.add_node(1.0);
        }
        let p = label_propagation(&b.build(), 7, ROUNDS);
        assert_eq!(p.num_communities(), 4);
        for c in 0..4 {
            assert_eq!(p.members(c).len(), 1);
        }
    }

    #[test]
    fn two_cliques_with_a_bridge_split_cleanly() {
        // Two 5-cliques joined by one weak edge.
        let mut b = crate::GraphBuilder::new();
        let ids: Vec<NodeId> = (0..10).map(|_| b.add_node(1.0)).collect();
        for block in [&ids[..5], &ids[5..]] {
            for i in 0..block.len() {
                for j in (i + 1)..block.len() {
                    b.add_edge_symmetric(block[i], block[j], 1.0).unwrap();
                }
            }
        }
        b.add_edge_symmetric(ids[4], ids[5], 0.1).unwrap();
        let p = label_propagation(&b.build(), 42, ROUNDS);
        assert_eq!(p.num_communities(), 2);
        assert_eq!(p.members(0).len(), 5);
        assert!(p.members(0).iter().all(|v| v.0 < 5));
        assert!(p.members(1).iter().all(|v| v.0 >= 5));
    }

    #[test]
    fn planted_partition_is_recovered() {
        // High p_in / low p_out ⇒ the planted blocks (node v belongs to
        // block v / block_size) are recovered exactly.
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let topo = generate::planted_partition(200, 4, 0.4, 0.002, &mut rng);
        let g = topo.into_unit_graph();
        let p = label_propagation(&g, 17, ROUNDS);
        assert_eq!(p.num_communities(), 4, "planted communities recovered");
        for v in g.node_ids() {
            let block = v.index() / 50;
            assert_eq!(
                p.community_of(v),
                p.community_of(NodeId((block * 50) as u32)),
                "{v} must share its block's community"
            );
        }
    }

    #[test]
    fn partition_is_deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generate::planted_partition(120, 3, 0.3, 0.01, &mut rng).into_unit_graph();
        let a = label_propagation(&g, 5, ROUNDS);
        let b = label_propagation(&g, 5, ROUNDS);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_and_members_are_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generate::planted_partition(90, 3, 0.35, 0.01, &mut rng).into_unit_graph();
        let p = label_propagation(&g, 9, ROUNDS);
        let mut seen = 0usize;
        for (c, members) in p.communities() {
            assert!(!members.is_empty());
            assert!(members.windows(2).all(|w| w[0] < w[1]), "sorted members");
            for &v in members {
                assert_eq!(p.community_of(v), c);
            }
            seen += members.len();
        }
        assert_eq!(seen, g.num_nodes());
        // Canonical numbering: community c's smallest member is smaller
        // than community c+1's smallest member.
        let firsts: Vec<NodeId> = (0..p.num_communities()).map(|c| p.members(c)[0]).collect();
        assert!(firsts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn coarsen_reaches_the_target_deterministically() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generate::planted_partition(200, 8, 0.4, 0.004, &mut rng).into_unit_graph();
        let p = label_propagation(&g, 11, ROUNDS);
        assert!(p.num_communities() >= 4);
        let c3 = p.clone().coarsen(&g, 3);
        assert_eq!(c3.num_communities(), 3);
        assert_eq!(c3, p.clone().coarsen(&g, 3), "coarsen is deterministic");
        // Already within target: unchanged.
        let same = p.clone().coarsen(&g, p.num_communities());
        assert_eq!(same, p);
        // Collapse to one community.
        assert_eq!(p.coarsen(&g, 1).num_communities(), 1);
    }

    #[test]
    fn coarsen_merges_disconnected_singletons_too() {
        let mut b = crate::GraphBuilder::new();
        for _ in 0..5 {
            b.add_node(1.0);
        }
        let g = b.build();
        let p = label_propagation(&g, 0, ROUNDS);
        assert_eq!(p.num_communities(), 5);
        assert_eq!(p.coarsen(&g, 2).num_communities(), 2);
    }
}

//! Induced subgraphs and ego networks.
//!
//! Two uses in the reproduction: the *invitation* scenario (§2.2) restricts
//! the candidate set to the inviter's neighbourhood, and the user-study
//! instances (§5.2) are small ego networks "extracted from their social
//! networks in Facebook". Both need score-preserving induced subgraphs with
//! a mapping back to the original ids.

use crate::bitset::BitSet;
use crate::builder::GraphBuilder;
use crate::csr::{NodeId, SocialGraph};

/// An induced subgraph plus the mapping from its dense ids back to the
/// parent graph's ids.
#[derive(Debug, Clone)]
pub struct Induced {
    /// The extracted graph; node `i` corresponds to `to_parent[i]`.
    pub graph: SocialGraph,
    /// `to_parent[new_id] = old_id`.
    pub to_parent: Vec<NodeId>,
}

impl Induced {
    /// Maps a subgraph node id back to the parent graph.
    pub fn parent_id(&self, v: NodeId) -> NodeId {
        self.to_parent[v.index()]
    }

    /// Maps a set of subgraph ids back to parent ids.
    pub fn parent_ids(&self, vs: &[NodeId]) -> Vec<NodeId> {
        vs.iter().map(|&v| self.parent_id(v)).collect()
    }
}

/// Extracts the subgraph induced by `nodes` (order defines the new ids;
/// duplicates are ignored after their first occurrence).
pub fn induced_subgraph(g: &SocialGraph, nodes: &[NodeId]) -> Induced {
    let mut to_parent = Vec::with_capacity(nodes.len());
    let mut new_id = vec![u32::MAX; g.num_nodes()];
    for &v in nodes {
        if new_id[v.index()] == u32::MAX {
            new_id[v.index()] = to_parent.len() as u32;
            to_parent.push(v);
        }
    }

    let mut b = GraphBuilder::with_capacity(to_parent.len(), 0);
    for &v in &to_parent {
        b.add_node(g.interest(v));
    }
    for &u in &to_parent {
        for (v, tau_uv, _) in g.neighbor_entries(u) {
            // Each undirected pair once: keep the direction where the parent
            // id of u is smaller.
            if u.0 < v.0 && new_id[v.index()] != u32::MAX {
                let tau_vu = g.tightness(v, u).expect("reverse slot exists");
                b.add_edge(
                    NodeId(new_id[u.index()]),
                    NodeId(new_id[v.index()]),
                    tau_uv,
                    tau_vu,
                )
                .expect("validated ids");
            }
        }
    }
    Induced {
        graph: b.build(),
        to_parent,
    }
}

/// Extracts the ego network of `center`: every node within `radius` hops,
/// capped at `max_nodes` (BFS order decides which boundary nodes survive the
/// cap; the centre is always node 0 of the result).
pub fn ego_network(g: &SocialGraph, center: NodeId, radius: usize, max_nodes: usize) -> Induced {
    assert!(max_nodes >= 1, "ego network needs room for the centre");
    let mut seen = BitSet::new(g.num_nodes());
    let mut frontier = vec![center];
    let mut selected = vec![center];
    seen.insert(center.index());

    let mut depth = 0;
    while depth < radius && selected.len() < max_nodes && !frontier.is_empty() {
        let mut next = Vec::new();
        'outer: for &u in &frontier {
            for &j in g.neighbors(u) {
                if seen.insert(j as usize) {
                    selected.push(NodeId(j));
                    next.push(NodeId(j));
                    if selected.len() >= max_nodes {
                        break 'outer;
                    }
                }
            }
        }
        frontier = next;
        depth += 1;
    }
    induced_subgraph(g, &selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generate;
    use crate::traversal;

    fn asymmetric_path() -> SocialGraph {
        // 0 -(1,2)- 1 -(3,4)- 2 -(5,6)- 3, interests 10/20/30/40.
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..4).map(|i| b.add_node(10.0 * (i + 1) as f64)).collect();
        b.add_edge(ids[0], ids[1], 1.0, 2.0).unwrap();
        b.add_edge(ids[1], ids[2], 3.0, 4.0).unwrap();
        b.add_edge(ids[2], ids[3], 5.0, 6.0).unwrap();
        b.build()
    }

    #[test]
    fn induced_preserves_scores_and_direction() {
        let g = asymmetric_path();
        let sub = induced_subgraph(&g, &[NodeId(2), NodeId(1), NodeId(3)]);
        assert_eq!(sub.graph.num_nodes(), 3);
        assert_eq!(sub.graph.num_edges(), 2);
        assert_eq!(sub.parent_id(NodeId(0)), NodeId(2));
        // Edge 1→2 carried τ=3 in the parent; node 1 is new id 1, node 2 is 0.
        assert_eq!(sub.graph.tightness(NodeId(1), NodeId(0)), Some(3.0));
        assert_eq!(sub.graph.tightness(NodeId(0), NodeId(1)), Some(4.0));
        assert_eq!(sub.graph.interest(NodeId(2)), 40.0);
    }

    #[test]
    fn induced_drops_outside_edges() {
        let g = asymmetric_path();
        let sub = induced_subgraph(&g, &[NodeId(0), NodeId(2)]);
        assert_eq!(sub.graph.num_edges(), 0);
    }

    #[test]
    fn induced_ignores_duplicates() {
        let g = asymmetric_path();
        let sub = induced_subgraph(&g, &[NodeId(1), NodeId(1), NodeId(2)]);
        assert_eq!(sub.graph.num_nodes(), 2);
        assert_eq!(sub.graph.num_edges(), 1);
    }

    #[test]
    fn ego_radius_one_is_closed_neighborhood() {
        let g = generate::star_topology(6).into_unit_graph();
        let ego = ego_network(&g, NodeId(0), 1, usize::MAX);
        assert_eq!(ego.graph.num_nodes(), 6);
        let leaf_ego = ego_network(&g, NodeId(3), 1, usize::MAX);
        assert_eq!(leaf_ego.graph.num_nodes(), 2);
        assert_eq!(leaf_ego.parent_id(NodeId(0)), NodeId(3));
    }

    #[test]
    fn ego_cap_limits_size_and_stays_connected() {
        let g = generate::grid_topology(10, 10).into_unit_graph();
        let ego = ego_network(&g, NodeId(55), 3, 12);
        assert_eq!(ego.graph.num_nodes(), 12);
        assert!(traversal::is_connected(&ego.graph));
    }

    #[test]
    fn ego_radius_zero_is_single_node() {
        let g = generate::complete_topology(5).into_unit_graph();
        let ego = ego_network(&g, NodeId(2), 0, 100);
        assert_eq!(ego.graph.num_nodes(), 1);
        assert_eq!(ego.parent_id(NodeId(0)), NodeId(2));
    }

    #[test]
    fn parent_ids_roundtrip() {
        let g = asymmetric_path();
        let sub = induced_subgraph(&g, &[NodeId(3), NodeId(0)]);
        let back = sub.parent_ids(&[NodeId(0), NodeId(1)]);
        assert_eq!(back, vec![NodeId(3), NodeId(0)]);
    }
}

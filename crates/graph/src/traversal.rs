//! Breadth-first traversal, connected components, and the subset
//! connectivity test behind WASO's feasibility constraint.
//!
//! A WASO solution `F` must induce a connected subgraph "for each attendee
//! to become acquainted with another attendee according to a social path"
//! (§2.1). [`is_connected_subset`] is the validator used by every solver's
//! result check and by the exact solver's enumeration.

use crate::bitset::BitSet;
use crate::csr::{NodeId, SocialGraph};

/// Breadth-first order of the component containing `start`.
pub fn bfs_order(g: &SocialGraph, start: NodeId) -> Vec<NodeId> {
    let mut seen = BitSet::new(g.num_nodes());
    let mut queue = std::collections::VecDeque::new();
    let mut order = Vec::new();
    seen.insert(start.index());
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &j in g.neighbors(u) {
            if seen.insert(j as usize) {
                queue.push_back(NodeId(j));
            }
        }
    }
    order
}

/// Labels every node with a component id in `[0, #components)`; ids are
/// assigned in order of lowest contained node.
pub fn connected_components(g: &SocialGraph) -> Vec<u32> {
    let n = g.num_nodes();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for v in 0..n {
        if comp[v] != u32::MAX {
            continue;
        }
        comp[v] = next;
        stack.push(v as u32);
        while let Some(u) = stack.pop() {
            for &j in g.neighbors(NodeId(u)) {
                if comp[j as usize] == u32::MAX {
                    comp[j as usize] = next;
                    stack.push(j);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Number of connected components.
pub fn num_components(g: &SocialGraph) -> usize {
    connected_components(g)
        .iter()
        .max()
        .map_or(0, |&m| m as usize + 1)
}

/// Node ids of the largest connected component (ties broken by smallest
/// component id).
pub fn largest_component(g: &SocialGraph) -> Vec<NodeId> {
    let comp = connected_components(g);
    let count = comp.iter().max().map_or(0, |&m| m as usize + 1);
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let Some(best) = (0..count).max_by_key(|&c| (sizes[c], std::cmp::Reverse(c))) else {
        return Vec::new();
    };
    comp.iter()
        .enumerate()
        .filter(|&(_, &c)| c as usize == best)
        .map(|(v, _)| NodeId(v as u32))
        .collect()
}

/// `true` when the *whole graph* is connected (vacuously true when empty).
pub fn is_connected(g: &SocialGraph) -> bool {
    num_components(g) <= 1
}

/// `true` when the subgraph induced by `nodes` is connected.
///
/// BFS restricted to the subset; runs in `O(Σ_{v ∈ nodes} deg(v))` with two
/// bit sets and no allocation proportional to the graph beyond them.
/// The empty set and singletons are connected by convention.
pub fn is_connected_subset(g: &SocialGraph, nodes: &[NodeId]) -> bool {
    match nodes.len() {
        0 | 1 => return true,
        _ => {}
    }
    let mut member = BitSet::new(g.num_nodes());
    for &v in nodes {
        if !member.insert(v.index()) {
            // Duplicate node: treat the multiset as invalid.
            return false;
        }
    }
    let mut seen = BitSet::new(g.num_nodes());
    let mut stack = vec![nodes[0]];
    seen.insert(nodes[0].index());
    let mut reached = 1usize;
    while let Some(u) = stack.pop() {
        for &j in g.neighbors(u) {
            let j = j as usize;
            if member.contains(j) && seen.insert(j) {
                reached += 1;
                stack.push(NodeId(j as u32));
            }
        }
    }
    reached == nodes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generate;

    /// Two triangles joined by nothing: {0,1,2} and {3,4,5}.
    fn two_triangles() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..6).map(|_| b.add_node(0.0)).collect();
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge_symmetric(ids[u], ids[v], 1.0).unwrap();
        }
        b.build()
    }

    #[test]
    fn bfs_visits_component_once() {
        let g = two_triangles();
        let order = bfs_order(&g, NodeId(0));
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], NodeId(0));
        let mut ids: Vec<u32> = order.iter().map(|v| v.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn components_are_labelled() {
        let g = two_triangles();
        let comp = connected_components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_eq!(num_components(&g), 2);
        assert!(!is_connected(&g));
    }

    #[test]
    fn largest_component_prefers_size_then_lowest_id() {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..5).map(|_| b.add_node(0.0)).collect();
        b.add_edge_symmetric(ids[0], ids[1], 1.0).unwrap(); // size-2 comp
        b.add_edge_symmetric(ids[2], ids[3], 1.0).unwrap(); // size-3 comp
        b.add_edge_symmetric(ids[3], ids[4], 1.0).unwrap();
        let g = b.build();
        let big: Vec<u32> = largest_component(&g).iter().map(|v| v.0).collect();
        assert_eq!(big, vec![2, 3, 4]);
    }

    #[test]
    fn subset_connectivity() {
        let g = two_triangles();
        assert!(is_connected_subset(&g, &[]));
        assert!(is_connected_subset(&g, &[NodeId(4)]));
        assert!(is_connected_subset(&g, &[NodeId(0), NodeId(1), NodeId(2)]));
        assert!(!is_connected_subset(&g, &[NodeId(0), NodeId(3)]));
        // Connected in G but not within the subset: 0 and 2 are adjacent,
        // adding 4 (other triangle) breaks it.
        assert!(!is_connected_subset(&g, &[NodeId(0), NodeId(2), NodeId(4)]));
    }

    #[test]
    fn subset_with_duplicates_is_rejected() {
        let g = two_triangles();
        assert!(!is_connected_subset(&g, &[NodeId(0), NodeId(0)]));
    }

    #[test]
    fn path_graph_is_connected() {
        let g = generate::path_topology(10).into_unit_graph();
        assert!(is_connected(&g));
        assert_eq!(num_components(&g), 1);
        // Dropping the middle node disconnects the rest.
        let subset: Vec<NodeId> = (0..10).filter(|&i| i != 5).map(NodeId).collect();
        assert!(!is_connected_subset(&g, &subset));
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = GraphBuilder::new().build();
        assert_eq!(num_components(&g), 0);
        assert!(is_connected(&g));
        assert!(largest_component(&g).is_empty());
    }
}

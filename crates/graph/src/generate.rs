//! Topology generators.
//!
//! The paper evaluates on three crawled networks (Facebook New Orleans,
//! DBLP, Flickr) that are not redistributable here; `waso-datasets`
//! re-creates their statistical shape from these generators (see DESIGN.md
//! §3 for the substitution argument). A [`GraphTopology`] is pure structure;
//! interest and tightness scores are attached afterwards by
//! [`crate::scores`].

use rand::{Rng, RngExt};
use std::collections::BTreeSet;

use crate::builder::GraphBuilder;
use crate::csr::{NodeId, SocialGraph};

/// An unscored, undirected simple graph: `n` nodes and a deduplicated edge
/// list with `u < v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphTopology {
    /// Number of nodes.
    pub n: usize,
    /// Undirected edges, each stored once with `u < v`.
    pub edges: Vec<(u32, u32)>,
}

impl GraphTopology {
    /// Creates a topology from a raw edge list, normalizing order and
    /// dropping duplicates and self-loops.
    pub fn new(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut set = BTreeSet::new();
        let mut out = Vec::new();
        for (a, b) in edges {
            if a == b {
                continue;
            }
            let (u, v) = if a < b { (a, b) } else { (b, a) };
            debug_assert!((v as usize) < n, "edge endpoint {v} out of range {n}");
            if set.insert(((u as u64) << 32) | v as u64) {
                out.push((u, v));
            }
        }
        Self { n, edges: out }
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Average degree `2|E|/n` (0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.n as f64
        }
    }

    /// Per-node degrees.
    pub fn degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        deg
    }

    /// Sorted adjacency lists (for common-neighbour computations).
    pub fn adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        for row in &mut adj {
            row.sort_unstable();
        }
        adj
    }

    /// Materializes a [`SocialGraph`] with zero interests and unit symmetric
    /// tightness — handy for purely structural tests.
    pub fn into_unit_graph(self) -> SocialGraph {
        let mut b = GraphBuilder::with_capacity(self.n, self.edges.len());
        b.add_nodes(self.n, 0.0);
        for (u, v) in self.edges {
            b.add_edge_symmetric(NodeId(u), NodeId(v), 1.0)
                .expect("topology edges are validated");
        }
        b.build()
    }
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges drawn uniformly.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges `n(n-1)/2`.
pub fn erdos_renyi_gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> GraphTopology {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "G(n={n}) has at most {max_edges} edges, asked for {m}"
    );
    let mut set = BTreeSet::new();
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u == v {
            continue;
        }
        let (u, v) = if u < v { (u, v) } else { (v, u) };
        if set.insert(((u as u64) << 32) | v as u64) {
            edges.push((u, v));
        }
    }
    GraphTopology { n, edges }
}

/// Erdős–Rényi `G(n, p)` via geometric skipping (O(n + m) expected).
pub fn erdos_renyi_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> GraphTopology {
    assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
    let mut edges = Vec::new();
    if p <= 0.0 || n < 2 {
        return GraphTopology { n, edges };
    }
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        return GraphTopology { n, edges };
    }
    // Walk the upper-triangular pair index with geometric jumps.
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    while (v as usize) < n {
        let r: f64 = rng.random();
        w += 1 + ((1.0 - r).ln() / log_q).floor() as i64;
        while w >= v && (v as usize) < n {
            w -= v;
            v += 1;
        }
        if (v as usize) < n {
            edges.push((w as u32, v as u32));
        }
    }
    GraphTopology { n, edges }
}

/// Barabási–Albert preferential attachment: starts from a clique of
/// `m_attach + 1` nodes, then every new node attaches to `m_attach` distinct
/// existing nodes with probability proportional to their degree.
///
/// Produces the heavy-tailed degree distributions of real social networks
/// (the Facebook-like and Flickr-like datasets build on this).
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m_attach: usize, rng: &mut R) -> GraphTopology {
    assert!(m_attach >= 1, "attachment degree must be at least 1");
    assert!(
        n > m_attach,
        "need more than m_attach={m_attach} nodes, got {n}"
    );
    let mut edges = Vec::with_capacity(n * m_attach);
    // Repeated-endpoint list: node x appears deg(x) times; sampling uniform
    // from it is sampling proportional to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m_attach);

    // Seed clique on nodes 0..=m_attach.
    for u in 0..=(m_attach as u32) {
        for v in (u + 1)..=(m_attach as u32) {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    // A BTreeSet iterates ascending, so the edge list (and everything
    // downstream of it) is a pure function of the RNG seed (rule D1).
    let mut chosen = BTreeSet::new();
    for new in (m_attach + 1)..n {
        chosen.clear();
        while chosen.len() < m_attach {
            let pick = endpoints[rng.random_range(0..endpoints.len())];
            chosen.insert(pick);
        }
        for &t in &chosen {
            edges.push((t.min(new as u32), t.max(new as u32)));
            endpoints.push(t);
            endpoints.push(new as u32);
        }
    }
    GraphTopology { n, edges }
}

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbours per
/// side rewired with probability `beta`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> GraphTopology {
    assert!(k >= 1 && 2 * k < n, "need 1 <= k and 2k < n (n={n}, k={k})");
    assert!((0.0..=1.0).contains(&beta));
    let mut set = BTreeSet::new();
    let key = |u: u32, v: u32| {
        let (u, v) = if u < v { (u, v) } else { (v, u) };
        ((u as u64) << 32) | v as u64
    };
    // Ring lattice.
    for u in 0..n as u32 {
        for d in 1..=k as u32 {
            let v = (u + d) % n as u32;
            set.insert(key(u, v));
        }
    }
    // Rewire each lattice edge's far endpoint with probability beta.
    // Snapshotted because the loop mutates `set`; BTreeSet iteration is
    // ascending, so the RNG stream is a pure function of the seed.
    let lattice: Vec<u64> = set.iter().copied().collect();
    for e in lattice {
        if rng.random::<f64>() >= beta {
            continue;
        }
        let u = (e >> 32) as u32;
        set.remove(&e);
        let mut tries = 0;
        loop {
            let w = rng.random_range(0..n as u32);
            if w != u && !set.contains(&key(u, w)) {
                set.insert(key(u, w));
                break;
            }
            tries += 1;
            if tries > 64 {
                set.insert(e); // dense corner case: keep the original edge
                break;
            }
        }
    }
    GraphTopology::new(n, set.into_iter().map(|e| ((e >> 32) as u32, e as u32)))
}

/// Planted community structure: `communities` equal-size groups, expected
/// in-community degree `deg_in` and cross-community degree `deg_out` per
/// node. Models the co-authorship clusters of the DBLP-like dataset.
pub fn planted_communities<R: Rng + ?Sized>(
    n: usize,
    communities: usize,
    deg_in: f64,
    deg_out: f64,
    rng: &mut R,
) -> GraphTopology {
    assert!(communities >= 1 && communities <= n.max(1));
    let size = n.div_ceil(communities);
    let mut set = BTreeSet::new();
    let mut edges = Vec::new();
    let push = |set: &mut BTreeSet<u64>, edges: &mut Vec<(u32, u32)>, a: u32, b: u32| {
        if a == b {
            return;
        }
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        if set.insert(((u as u64) << 32) | v as u64) {
            edges.push((u, v));
        }
    };

    let m_in = (n as f64 * deg_in / 2.0).round() as usize;
    let m_out = (n as f64 * deg_out / 2.0).round() as usize;

    for _ in 0..m_in {
        let u = rng.random_range(0..n as u32);
        let c = u as usize / size;
        let lo = (c * size) as u32;
        let hi = (((c + 1) * size).min(n)) as u32;
        if hi - lo < 2 {
            continue;
        }
        let v = rng.random_range(lo..hi);
        push(&mut set, &mut edges, u, v);
    }
    for _ in 0..m_out {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u as usize / size != v as usize / size {
            push(&mut set, &mut edges, u, v);
        }
    }
    GraphTopology { n, edges }
}

/// The classic planted-partition model: `communities` equal-size blocks,
/// every intra-block pair connected with probability `p_in`, every
/// cross-block pair with probability `p_out` (`p_in >> p_out` plants the
/// structure). Unlike [`planted_communities`] (which targets expected
/// *degrees* by sampling endpoints) this fixes per-*pair* probabilities,
/// giving near-uniform internal degrees — the regime where OCBA's start
/// budget concentrates on whole communities rather than individual hubs,
/// and where pruning behaves differently from the BA/WS topologies the
/// harness otherwise uses.
///
/// Edges are enumerated with the same geometric-skipping trick as
/// [`erdos_renyi_gnp`] (O(n + m) expected): one pass per block for the
/// intra-community pairs, one pass over the global pair index for the
/// cross-community pairs (intra pairs skipped).
pub fn planted_partition<R: Rng + ?Sized>(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> GraphTopology {
    assert!(communities >= 1 && communities <= n.max(1));
    assert!((0.0..=1.0).contains(&p_in), "p_in={p_in} outside [0,1]");
    assert!((0.0..=1.0).contains(&p_out), "p_out={p_out} outside [0,1]");
    let size = n.div_ceil(communities);
    let mut edges: Vec<(u32, u32)> = Vec::new();

    // Intra-community edges: an independent G(s, p_in) per block.
    let mut start = 0usize;
    while start < n {
        let s = size.min(n - start);
        let block = erdos_renyi_gnp(s, p_in, rng);
        let offset = start as u32;
        edges.extend(block.edges.iter().map(|&(u, v)| (u + offset, v + offset)));
        start += s;
    }

    // Cross-community edges: geometric skipping over the global pair
    // index, dropping pairs that fall inside one block.
    if p_out > 0.0 && n >= 2 {
        let log_q = (1.0 - p_out).ln();
        let full = p_out >= 1.0;
        let mut v: i64 = 1;
        let mut w: i64 = -1;
        while (v as usize) < n {
            if full {
                w += 1;
            } else {
                let r: f64 = rng.random();
                w += 1 + ((1.0 - r).ln() / log_q).floor() as i64;
            }
            while w >= v && (v as usize) < n {
                w -= v;
                v += 1;
            }
            if (v as usize) < n && (w as usize) / size != (v as usize) / size {
                edges.push((w as u32, v as u32));
            }
        }
    }
    GraphTopology { n, edges }
}

/// Community-structured preferential attachment: the friendship-network
/// model behind the Facebook-like and Flickr-like datasets.
///
/// Real online social networks combine heavy-tailed degrees with strong
/// community structure *of varying density* — and that variance is what
/// separates greedy from sampling-based WASO solvers: a greedy walk commits
/// to whatever community it first enters, while multi-start sampling
/// compares communities. Plain BA has one global dense core and misses this
/// entirely.
///
/// Nodes are split into consecutive blocks of `community_size`; each block
/// grows as a Barabási–Albert graph whose attachment degree is drawn
/// uniformly from `attach_lo..=attach_hi` (communities of different
/// density), then every node sprouts on average `cross_per_node` uniform
/// inter-community edges (the weak ties).
pub fn community_ba<R: Rng + ?Sized>(
    n: usize,
    community_size: usize,
    attach_lo: usize,
    attach_hi: usize,
    cross_per_node: f64,
    rng: &mut R,
) -> GraphTopology {
    assert!(community_size >= 3, "communities need at least 3 nodes");
    assert!(1 <= attach_lo && attach_lo <= attach_hi);
    assert!(cross_per_node >= 0.0);

    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut start = 0usize;
    while start < n {
        let size = community_size.min(n - start);
        let offset = start as u32;
        if size >= 3 {
            let attach = rng
                .random_range(attach_lo..=attach_hi)
                .min((size - 1) / 2)
                .max(1);
            let sub = barabasi_albert(size, attach, rng);
            edges.extend(sub.edges.iter().map(|&(u, v)| (u + offset, v + offset)));
        } else if size == 2 {
            edges.push((offset, offset + 1));
        }
        start += size;
    }

    // Weak ties across communities.
    let mut set: BTreeSet<u64> = edges
        .iter()
        .map(|&(u, v)| ((u as u64) << 32) | v as u64)
        .collect();
    let cross_edges = (n as f64 * cross_per_node / 2.0).round() as usize;
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < cross_edges && attempts < cross_edges * 20 {
        attempts += 1;
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        if a == b || a as usize / community_size == b as usize / community_size {
            continue;
        }
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        if set.insert(((u as u64) << 32) | v as u64) {
            edges.push((u, v));
            added += 1;
        }
    }
    GraphTopology { n, edges }
}

/// Deterministic path `0 - 1 - … - (n-1)`.
pub fn path_topology(n: usize) -> GraphTopology {
    GraphTopology {
        n,
        edges: (1..n as u32).map(|v| (v - 1, v)).collect(),
    }
}

/// Deterministic star with centre 0.
pub fn star_topology(n: usize) -> GraphTopology {
    GraphTopology {
        n,
        edges: (1..n as u32).map(|v| (0, v)).collect(),
    }
}

/// Deterministic complete graph `K_n`.
pub fn complete_topology(n: usize) -> GraphTopology {
    let mut edges = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    GraphTopology { n, edges }
}

/// Deterministic `w × h` grid, node `(x, y)` at index `y*w + x`.
pub fn grid_topology(w: usize, h: usize) -> GraphTopology {
    let mut edges = Vec::new();
    let at = |x: usize, y: usize| (y * w + x) as u32;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((at(x, y), at(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((at(x, y), at(x, y + 1)));
            }
        }
    }
    GraphTopology { n: w * h, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn topology_new_normalizes() {
        let t = GraphTopology::new(4, [(2, 1), (1, 2), (3, 3), (0, 1)]);
        assert_eq!(t.edges, vec![(1, 2), (0, 1)]);
        assert_eq!(t.num_edges(), 2);
    }

    #[test]
    fn gnm_produces_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = erdos_renyi_gnm(50, 120, &mut rng);
        assert_eq!(t.n, 50);
        assert_eq!(t.num_edges(), 120);
        // All edges distinct and in range.
        let set: BTreeSet<_> = t.edges.iter().collect();
        assert_eq!(set.len(), 120);
        assert!(t.edges.iter().all(|&(u, v)| u < v && (v as usize) < 50));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn gnm_rejects_impossible_edge_counts() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = erdos_renyi_gnm(4, 7, &mut rng);
    }

    #[test]
    fn gnp_degree_concentrates() {
        let mut rng = StdRng::seed_from_u64(11);
        let (n, p) = (2000, 0.01);
        let t = erdos_renyi_gnp(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = t.num_edges() as f64;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "expected ~{expected}, got {got}"
        );
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(erdos_renyi_gnp(100, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(erdos_renyi_gnp(10, 1.0, &mut rng).num_edges(), 45);
        assert_eq!(erdos_renyi_gnp(1, 0.5, &mut rng).num_edges(), 0);
    }

    #[test]
    fn barabasi_albert_counts_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(1);
        let (n, m) = (300, 5);
        let t = barabasi_albert(n, m, &mut rng);
        // Clique seed edges + m per additional node.
        let want = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(t.num_edges(), want);
        assert!(traversal::is_connected(&t.into_unit_graph()));
    }

    #[test]
    fn barabasi_albert_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(22);
        let t = barabasi_albert(2000, 3, &mut rng);
        let deg = t.degrees();
        let max = *deg.iter().max().unwrap() as f64;
        let mean = t.avg_degree();
        // Hubs should dwarf the mean — a heavy-tail smoke test that would
        // fail for ER graphs of the same density (max/mean ≈ 3).
        assert!(max / mean > 8.0, "max {max}, mean {mean}");
    }

    #[test]
    fn watts_strogatz_preserves_edge_count_roughly() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = watts_strogatz(200, 4, 0.1, &mut rng);
        // Ring lattice has n*k edges; rewiring preserves count except for
        // rare dense-corner fallbacks.
        assert!((t.num_edges() as i64 - 800).abs() <= 8);
        assert!(t.edges.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn planted_communities_bias_inside() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = planted_communities(400, 4, 8.0, 1.0, &mut rng);
        let size = 100;
        let inside = t
            .edges
            .iter()
            .filter(|&&(u, v)| u as usize / size == v as usize / size)
            .count();
        let outside = t.num_edges() - inside;
        assert!(inside > 4 * outside, "inside {inside}, outside {outside}");
    }

    #[test]
    fn planted_partition_plants_the_structure() {
        let mut rng = StdRng::seed_from_u64(17);
        let (n, c) = (400, 8);
        let size = n / c;
        let (p_in, p_out) = (0.25, 0.005);
        let t = planted_partition(n, c, p_in, p_out, &mut rng);
        assert_eq!(t.n, n);
        let inside = t
            .edges
            .iter()
            .filter(|&&(u, v)| u as usize / size == v as usize / size)
            .count();
        let outside = t.num_edges() - inside;
        // Expected: c·(s choose 2)·p_in ≈ 2450 intra, ~875 inter.
        let want_in = c as f64 * (size * (size - 1) / 2) as f64 * p_in;
        assert!(
            (inside as f64 - want_in).abs() < 0.2 * want_in,
            "intra {inside} vs expected {want_in}"
        );
        assert!(inside > 2 * outside, "inside {inside}, outside {outside}");
        assert!(t.edges.iter().all(|&(u, v)| u < v && (v as usize) < n));
    }

    #[test]
    fn planted_partition_extremes_and_determinism() {
        let mut rng = StdRng::seed_from_u64(3);
        // No cross edges at all.
        let isolated = planted_partition(60, 3, 1.0, 0.0, &mut rng);
        let size = 20;
        assert!(isolated
            .edges
            .iter()
            .all(|&(u, v)| u as usize / size == v as usize / size));
        assert_eq!(isolated.num_edges(), 3 * size * (size - 1) / 2);
        // p_in = p_out = 1 is the complete graph.
        let complete = planted_partition(12, 3, 1.0, 1.0, &mut rng);
        assert_eq!(complete.num_edges(), 12 * 11 / 2);
        // Pure function of the seed.
        let a = planted_partition(100, 4, 0.3, 0.02, &mut StdRng::seed_from_u64(8));
        let b = planted_partition(100, 4, 0.3, 0.02, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
    }

    #[test]
    fn community_ba_structure() {
        let mut rng = StdRng::seed_from_u64(31);
        let t = community_ba(600, 100, 5, 12, 2.0, &mut rng);
        assert_eq!(t.n, 600);
        // Mostly intra-community edges.
        let intra = t
            .edges
            .iter()
            .filter(|&&(u, v)| u as usize / 100 == v as usize / 100)
            .count();
        let inter = t.num_edges() - intra;
        assert!(intra > 3 * inter, "intra {intra}, inter {inter}");
        // Roughly cross_per_node/2 · n cross edges.
        assert!((inter as f64 - 600.0).abs() < 120.0, "inter {inter}");
        // Connectedness: weak ties glue the communities together whp.
        assert!(traversal::is_connected(&t.into_unit_graph()));
    }

    #[test]
    fn community_ba_densities_vary() {
        let mut rng = StdRng::seed_from_u64(32);
        let t = community_ba(1000, 100, 3, 13, 1.0, &mut rng);
        // Per-community internal degree should differ across communities.
        let mut internal = vec![0usize; 10];
        for &(u, v) in &t.edges {
            let (cu, cv) = (u as usize / 100, v as usize / 100);
            if cu == cv {
                internal[cu] += 1;
            }
        }
        let min = *internal.iter().min().unwrap();
        let max = *internal.iter().max().unwrap();
        assert!(max > min + min / 2, "density spread: {internal:?}");
    }

    #[test]
    fn community_ba_is_deterministic() {
        let a = community_ba(400, 80, 4, 10, 1.5, &mut StdRng::seed_from_u64(9));
        let b = community_ba(400, 80, 4, 10, 1.5, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_fixtures() {
        assert_eq!(path_topology(4).edges, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(star_topology(4).edges, vec![(0, 1), (0, 2), (0, 3)]);
        assert_eq!(complete_topology(4).num_edges(), 6);
        let grid = grid_topology(3, 2);
        assert_eq!(grid.n, 6);
        assert_eq!(grid.num_edges(), 7);
        assert!(traversal::is_connected(&grid.into_unit_graph()));
    }

    #[test]
    fn degrees_and_adjacency_agree() {
        let t = grid_topology(4, 4);
        let deg = t.degrees();
        let adj = t.adjacency();
        for v in 0..t.n {
            assert_eq!(deg[v] as usize, adj[v].len());
            assert!(adj[v].windows(2).all(|w| w[0] < w[1]), "sorted rows");
        }
    }
}

//! Validated construction of [`SocialGraph`]s.
//!
//! The builder accepts nodes with interest scores and undirected friendships
//! with one tightness score per direction (`τ_{u,v}`, `τ_{v,u}`), then
//! compiles them into CSR form. All structural errors (self-loops, unknown
//! endpoints, duplicate edges) surface as [`GraphError`]s rather than
//! corrupt storage.

use crate::csr::{NodeId, SocialGraph};
use std::fmt;

/// Structural errors detected while building a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a node id that was never added.
    UnknownNode(u32),
    /// An edge connects a node to itself; WASO graphs are simple.
    SelfLoop(u32),
    /// The same unordered pair was added twice.
    DuplicateEdge(u32, u32),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(v) => write!(f, "edge references unknown node v{v}"),
            GraphError::SelfLoop(v) => write!(f, "self-loop on node v{v}"),
            GraphError::DuplicateEdge(u, v) => {
                write!(f, "duplicate edge between v{u} and v{v}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental builder for a [`SocialGraph`].
///
/// ```
/// use waso_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let u = b.add_node(0.8);
/// let v = b.add_node(0.3);
/// b.add_edge_symmetric(u, v, 0.6).unwrap();
/// let g = b.build();
/// assert_eq!(g.num_nodes(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    interest: Vec<f64>,
    /// `(u, v, τ_{u,v}, τ_{v,u})` with `u != v`, unordered pair stored once.
    edges: Vec<(u32, u32, f64, f64)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            interest: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a node with interest score `η` and returns its id.
    pub fn add_node(&mut self, interest: f64) -> NodeId {
        let id = NodeId(self.interest.len() as u32);
        self.interest.push(interest);
        id
    }

    /// Adds `count` nodes all carrying `interest`; returns the first id.
    pub fn add_nodes(&mut self, count: usize, interest: f64) -> NodeId {
        let first = NodeId(self.interest.len() as u32);
        self.interest.extend(std::iter::repeat_n(interest, count));
        first
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.interest.len()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Overwrites the interest score of an existing node.
    pub fn set_interest(&mut self, v: NodeId, interest: f64) -> Result<(), GraphError> {
        let slot = self
            .interest
            .get_mut(v.index())
            .ok_or(GraphError::UnknownNode(v.0))?;
        *slot = interest;
        Ok(())
    }

    /// Adds an undirected friendship with asymmetric tightness
    /// (`τ_{u,v}` and `τ_{v,u}`). Duplicates are detected at [`build`] time.
    ///
    /// [`build`]: GraphBuilder::build
    pub fn add_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        tau_uv: f64,
        tau_vu: f64,
    ) -> Result<(), GraphError> {
        let n = self.interest.len() as u32;
        if u.0 >= n {
            return Err(GraphError::UnknownNode(u.0));
        }
        if v.0 >= n {
            return Err(GraphError::UnknownNode(v.0));
        }
        if u == v {
            return Err(GraphError::SelfLoop(u.0));
        }
        self.edges.push((u.0, v.0, tau_uv, tau_vu));
        Ok(())
    }

    /// Adds an undirected friendship with symmetric tightness `τ`.
    pub fn add_edge_symmetric(&mut self, u: NodeId, v: NodeId, tau: f64) -> Result<(), GraphError> {
        self.add_edge(u, v, tau, tau)
    }

    /// Compiles into CSR form, or reports the first duplicate edge.
    pub fn try_build(self) -> Result<SocialGraph, GraphError> {
        let n = self.interest.len();
        let mut degree = vec![0u32; n];
        for &(u, v, _, _) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }

        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let slots = offsets[n] as usize;

        // Scatter both directions, then sort each row by neighbour id.
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0u32; slots];
        let mut tightness = vec![0f64; slots];
        for &(u, v, tau_uv, tau_vu) in &self.edges {
            let su = cursor[u as usize] as usize;
            cursor[u as usize] += 1;
            neighbors[su] = v;
            tightness[su] = tau_uv;

            let sv = cursor[v as usize] as usize;
            cursor[v as usize] += 1;
            neighbors[sv] = u;
            tightness[sv] = tau_vu;
        }

        for i in 0..n {
            let (lo, hi) = (offsets[i] as usize, offsets[i + 1] as usize);
            // Sort (neighbor, tightness) pairs of the row together.
            let mut row: Vec<(u32, f64)> = neighbors[lo..hi]
                .iter()
                .copied()
                .zip(tightness[lo..hi].iter().copied())
                .collect();
            row.sort_by_key(|&(j, _)| j);
            for (w, (j, t)) in row.into_iter().enumerate() {
                if w > 0 && neighbors[lo + w - 1] == j {
                    return Err(GraphError::DuplicateEdge(i as u32, j));
                }
                neighbors[lo + w] = j;
                tightness[lo + w] = t;
            }
        }

        // pair_weight[slot i→j] = τ_{i,j} + τ_{j,i}; rows are sorted so the
        // reverse slot is found by binary search once, at build time.
        let mut pair_weight = vec![0f64; slots];
        for i in 0..n {
            let (lo, hi) = (offsets[i] as usize, offsets[i + 1] as usize);
            for s in lo..hi {
                let j = neighbors[s] as usize;
                let (jlo, jhi) = (offsets[j] as usize, offsets[j + 1] as usize);
                // The builder inserts both directions, so the reverse slot
                // exists unless the adjacency is inconsistent — surface that
                // as a structural error instead of aborting mid-build.
                let back = match neighbors[jlo..jhi].binary_search(&(i as u32)) {
                    Ok(off) => jlo + off,
                    Err(_) => return Err(GraphError::UnknownNode(i as u32)),
                };
                pair_weight[s] = tightness[s] + tightness[back];
            }
        }

        Ok(SocialGraph::from_parts(
            offsets,
            neighbors,
            tightness,
            pair_weight,
            self.interest,
        ))
    }

    /// Compiles into CSR form.
    ///
    /// # Panics
    /// Panics on duplicate edges; use [`GraphBuilder::try_build`] to handle
    /// that case gracefully.
    pub fn build(self) -> SocialGraph {
        // audit:allow(P2): documented `# Panics` contract — callers that need the fallible path use `try_build`
        self.try_build().expect("graph construction failed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unknown_nodes_and_self_loops() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(0.0);
        assert_eq!(
            b.add_edge(v0, NodeId(5), 1.0, 1.0),
            Err(GraphError::UnknownNode(5))
        );
        assert_eq!(b.add_edge(v0, v0, 1.0, 1.0), Err(GraphError::SelfLoop(0)));
    }

    #[test]
    fn rejects_duplicate_edges_in_either_order() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(0.0);
        let v1 = b.add_node(0.0);
        b.add_edge_symmetric(v0, v1, 1.0).unwrap();
        b.add_edge_symmetric(v1, v0, 2.0).unwrap();
        match b.try_build() {
            Err(GraphError::DuplicateEdge(_, _)) => {}
            other => panic!("expected duplicate edge error, got {other:?}"),
        }
    }

    #[test]
    fn adjacency_rows_are_sorted() {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..5).map(|i| b.add_node(i as f64)).collect();
        // Insert in scrambled order.
        b.add_edge_symmetric(ids[2], ids[4], 0.1).unwrap();
        b.add_edge_symmetric(ids[2], ids[0], 0.2).unwrap();
        b.add_edge_symmetric(ids[2], ids[3], 0.3).unwrap();
        b.add_edge_symmetric(ids[2], ids[1], 0.4).unwrap();
        let g = b.build();
        assert_eq!(g.neighbors(ids[2]), &[0, 1, 2 + 1, 4]);
        // Weights must travel with their neighbour through the sort.
        assert_eq!(g.tightness(ids[2], ids[0]), Some(0.2));
        assert_eq!(g.tightness(ids[2], ids[4]), Some(0.1));
    }

    #[test]
    fn set_interest_overwrites() {
        let mut b = GraphBuilder::new();
        let v = b.add_node(1.0);
        b.set_interest(v, 9.0).unwrap();
        assert!(b.set_interest(NodeId(3), 1.0).is_err());
        let g = b.build();
        assert_eq!(g.interest(v), 9.0);
    }

    #[test]
    fn add_nodes_bulk() {
        let mut b = GraphBuilder::new();
        let first = b.add_nodes(4, 0.5);
        assert_eq!(first, NodeId(0));
        assert_eq!(b.num_nodes(), 4);
        let g = b.build();
        assert!(g.interests().iter().all(|&x| x == 0.5));
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert_eq!(
            GraphError::DuplicateEdge(1, 2).to_string(),
            "duplicate edge between v1 and v2"
        );
        assert_eq!(
            GraphError::UnknownNode(9).to_string(),
            "edge references unknown node v9"
        );
        assert_eq!(GraphError::SelfLoop(3).to_string(), "self-loop on node v3");
    }
}

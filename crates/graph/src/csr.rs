//! Compressed-sparse-row storage of a scored social network.
//!
//! [`SocialGraph`] is the immutable product of [`crate::GraphBuilder`].
//! Each undirected friendship `(u, v)` is stored as two directed *slots*
//! (`u → v` carrying `τ_{u,v}` and `v → u` carrying `τ_{v,u}`), exactly
//! matching Eq. (1) of the paper where both directions contribute to the
//! willingness. Each slot additionally caches the *pair weight*
//! `τ_{u,v} + τ_{v,u}`: adding node `u` to a partial solution `S` changes
//! the willingness by `η_u + Σ_{v ∈ N(u) ∩ S} pw(u,v)`, so solvers never
//! need a reverse-edge lookup.

use std::fmt;

/// Identifier of a node (person) in a [`SocialGraph`]; a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's dense index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

/// An immutable scored social network in CSR form.
///
/// Node `i` carries interest score `η_i`; the directed slot `i → j` carries
/// tightness `τ_{i,j}`. Adjacency lists are sorted by neighbour id.
#[derive(Debug, Clone, PartialEq)]
pub struct SocialGraph {
    /// CSR row offsets, length `n + 1`.
    offsets: Vec<u32>,
    /// Neighbour ids, one entry per directed slot, rows sorted ascending.
    neighbors: Vec<u32>,
    /// Directed tightness `τ_{i,j}` per slot.
    tightness: Vec<f64>,
    /// `τ_{i,j} + τ_{j,i}` per slot.
    pair_weight: Vec<f64>,
    /// Interest score `η_i` per node.
    interest: Vec<f64>,
    /// Largest degree, computed once at build time.
    max_degree: u32,
}

impl SocialGraph {
    /// Assembles a graph from raw CSR parts. Used by the builder; see
    /// [`crate::GraphBuilder`] for the validated public path.
    pub(crate) fn from_parts(
        offsets: Vec<u32>,
        neighbors: Vec<u32>,
        tightness: Vec<f64>,
        pair_weight: Vec<f64>,
        interest: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), interest.len() + 1);
        debug_assert_eq!(neighbors.len(), tightness.len());
        debug_assert_eq!(neighbors.len(), pair_weight.len());
        let max_degree = offsets.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        Self {
            offsets,
            neighbors,
            tightness,
            pair_weight,
            interest,
            max_degree,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.interest.len()
    }

    /// Number of undirected edges `|E|` (half the number of directed slots).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of node `v` (number of neighbours).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Largest degree in the graph (0 for an empty graph). Cached at build
    /// time, so per-sampler growth-buffer sizing is O(1).
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree as usize
    }

    /// Interest score `η_v`.
    #[inline]
    pub fn interest(&self, v: NodeId) -> f64 {
        self.interest[v.index()]
    }

    /// All interest scores, indexed by node.
    #[inline]
    pub fn interests(&self) -> &[f64] {
        &self.interest
    }

    /// Neighbour ids of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[u32] {
        let i = v.index();
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterates `(neighbour, τ_{v,j}, pair_weight)` triples for `v`.
    #[inline]
    pub fn neighbor_entries(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64, f64)> + '_ {
        let i = v.index();
        let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        (lo..hi).map(move |s| {
            (
                NodeId(self.neighbors[s]),
                self.tightness[s],
                self.pair_weight[s],
            )
        })
    }

    /// Directed tightness `τ_{u,v}`, or `None` if the edge does not exist.
    pub fn tightness(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.slot(u, v).map(|s| self.tightness[s])
    }

    /// Pair weight `τ_{u,v} + τ_{v,u}`, or `None` if the edge does not exist.
    pub fn pair_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.slot(u, v).map(|s| self.pair_weight[s])
    }

    /// `true` when `u` and `v` are adjacent.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.slot(u, v).is_some()
    }

    /// Binary-searches the slot index of `u → v`.
    #[inline]
    fn slot(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let i = u.index();
        let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        self.neighbors[lo..hi]
            .binary_search(&v.0)
            .ok()
            .map(|off| lo + off)
    }

    /// Iterates all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Iterates every undirected edge once as `(u, v, τ_{u,v}, τ_{v,u})`
    /// with `u < v`. Both directions are read from storage (not derived from
    /// the pair weight), so the values are bit-exact for I/O round-trips.
    pub fn undirected_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64, f64)> + '_ {
        self.node_ids().flat_map(move |u| {
            self.neighbor_entries(u)
                .filter(move |&(v, _, _)| u.0 < v.0)
                .filter_map(move |(v, tau_uv, _)| {
                    // The builder inserts both directions, so the reverse
                    // slot exists for any well-formed graph; a missing slot
                    // drops the edge rather than aborting the iteration.
                    let tau_vu = self.tightness(v, u)?;
                    Some((u, v, tau_uv, tau_vu))
                })
        })
    }

    /// The paper's start-node score (CBAS phase 1): interest plus the
    /// tightness of incident edges. Counts each incident edge once, using
    /// the average of the two directions (for symmetric graphs this is the
    /// paper's "adds the interest score and the social tightness scores of
    /// incident edges": Example 1 scores v3 as 0.8+0.6+0.5+0.9+1+0.4 = 4.2).
    pub fn start_node_score(&self, v: NodeId) -> f64 {
        let i = v.index();
        let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        let incident: f64 = self.pair_weight[lo..hi].iter().sum();
        self.interest[i] + 0.5 * incident
    }

    /// Sum of all interests plus all directed tightness scores — the
    /// willingness of selecting *everyone*, used by the Theorem-2
    /// virtual-node construction (`η_v = ε + Σ_i (η_i + Σ_j τ_{i,j})`).
    pub fn total_willingness_upper(&self) -> f64 {
        self.interest.iter().sum::<f64>() + self.tightness.iter().sum::<f64>()
    }

    /// Memory footprint of the CSR arrays in bytes (diagnostics).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.neighbors.len() * 4
            + self.tightness.len() * 8
            + self.pair_weight.len() * 8
            + self.interest.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::csr::NodeId;

    fn triangle() -> crate::SocialGraph {
        // v0 -1.0- v1, v1 -2.0- v2, v0 -0.5- v2 (asymmetric on the last).
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(10.0);
        let v1 = b.add_node(20.0);
        let v2 = b.add_node(30.0);
        b.add_edge_symmetric(v0, v1, 1.0).unwrap();
        b.add_edge_symmetric(v1, v2, 2.0).unwrap();
        b.add_edge(v0, v2, 0.5, 1.5).unwrap();
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.interest(NodeId(2)), 30.0);
        assert_eq!(g.neighbors(NodeId(0)), &[1, 2]);
    }

    #[test]
    fn directed_tightness_is_per_direction() {
        let g = triangle();
        assert_eq!(g.tightness(NodeId(0), NodeId(2)), Some(0.5));
        assert_eq!(g.tightness(NodeId(2), NodeId(0)), Some(1.5));
        assert_eq!(g.pair_weight(NodeId(0), NodeId(2)), Some(2.0));
        assert_eq!(g.pair_weight(NodeId(2), NodeId(0)), Some(2.0));
    }

    #[test]
    fn missing_edges_are_none() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(0.0);
        let v1 = b.add_node(0.0);
        let _v2 = b.add_node(0.0);
        b.add_edge_symmetric(v0, v1, 1.0).unwrap();
        let g = b.build();
        assert_eq!(g.tightness(NodeId(0), NodeId(2)), None);
        assert!(!g.has_edge(NodeId(1), NodeId(2)));
        assert!(g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn undirected_edges_enumerates_each_once() {
        let g = triangle();
        let edges: Vec<_> = g.undirected_edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v, _, _) in &edges {
            assert!(u.0 < v.0);
        }
        // Find the asymmetric edge and check both directions.
        let e = edges
            .iter()
            .find(|(u, v, _, _)| u.0 == 0 && v.0 == 2)
            .unwrap();
        assert_eq!(e.2, 0.5);
        assert!((e.3 - 1.5).abs() < 1e-12);
    }

    #[test]
    fn start_node_score_counts_each_edge_once() {
        let g = triangle();
        // v1: η=20, incident symmetric edges 1.0 and 2.0 → 23.
        assert!((g.start_node_score(NodeId(1)) - 23.0).abs() < 1e-12);
        // v0: η=10, incident edges 1.0 and avg(0.5,1.5)=1.0 → 12.
        assert!((g.start_node_score(NodeId(0)) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn total_willingness_upper_sums_everything() {
        let g = triangle();
        // Interests 60 + directed taus (1+1) + (2+2) + (0.5+1.5) = 68.
        assert!((g.total_willingness_upper() - 68.0).abs() < 1e-12);
    }

    #[test]
    fn neighbor_entries_match_scalar_lookups() {
        let g = triangle();
        for u in g.node_ids() {
            for (v, tau, pw) in g.neighbor_entries(u) {
                assert_eq!(g.tightness(u, v), Some(tau));
                assert_eq!(g.pair_weight(u, v), Some(pw));
            }
        }
    }

    #[test]
    fn max_degree_is_cached_correctly() {
        let g = triangle();
        assert_eq!(g.max_degree(), 2);
        let empty = GraphBuilder::new().build();
        assert_eq!(empty.max_degree(), 0);
        let mut b = GraphBuilder::new();
        let hub = b.add_node(0.0);
        let leaves: Vec<_> = (0..5).map(|_| b.add_node(0.0)).collect();
        for &l in &leaves {
            b.add_edge_symmetric(hub, l, 1.0).unwrap();
        }
        assert_eq!(b.build().max_degree(), 5);
    }

    #[test]
    fn isolated_graph_works() {
        let mut b = GraphBuilder::new();
        b.add_node(1.0);
        b.add_node(2.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(NodeId(0)), 0);
        assert_eq!(g.start_node_score(NodeId(1)), 2.0);
    }

    #[test]
    fn node_id_display_and_conversions() {
        let v = NodeId(7);
        assert_eq!(v.to_string(), "v7");
        assert_eq!(v.index(), 7);
        assert_eq!(NodeId::from(7u32), v);
        assert_eq!(u32::from(v), 7);
    }
}

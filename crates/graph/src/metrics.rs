//! Structural statistics of social graphs.
//!
//! The dataset substitutions (DESIGN.md §3) claim the synthetic networks
//! match the crawled ones in size, mean degree and heavy-tailedness; this
//! module provides the measurements that back those claims (degree summary,
//! degree histogram, density, clustering coefficient).

use crate::csr::{NodeId, SocialGraph};

/// Degree distribution summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree `2|E|/n`.
    pub mean: f64,
    /// Population standard deviation of degrees.
    pub std_dev: f64,
}

/// Computes the degree summary; `None` for an empty graph.
pub fn degree_stats(g: &SocialGraph) -> Option<DegreeStats> {
    let n = g.num_nodes();
    if n == 0 {
        return None;
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for v in g.node_ids() {
        let d = g.degree(v);
        min = min.min(d);
        max = max.max(d);
        sum += d as f64;
        sum_sq += (d * d) as f64;
    }
    let mean = sum / n as f64;
    let var = (sum_sq / n as f64 - mean * mean).max(0.0);
    Some(DegreeStats {
        min,
        max,
        mean,
        std_dev: var.sqrt(),
    })
}

/// Edge density `2|E| / (n(n-1))`; 0 for graphs with fewer than two nodes.
pub fn density(g: &SocialGraph) -> f64 {
    let n = g.num_nodes();
    if n < 2 {
        return 0.0;
    }
    2.0 * g.num_edges() as f64 / (n as f64 * (n as f64 - 1.0))
}

/// Local clustering coefficient of `v`: closed wedges / possible wedges.
/// 0 for degree < 2.
pub fn local_clustering(g: &SocialGraph, v: NodeId) -> f64 {
    let neigh = g.neighbors(v);
    let d = neigh.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (a, &u) in neigh.iter().enumerate() {
        for &w in &neigh[a + 1..] {
            if g.has_edge(NodeId(u), NodeId(w)) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d * (d - 1)) as f64
}

/// Average clustering coefficient over all nodes (0 for an empty graph).
/// Exact; for very large graphs prefer [`sampled_clustering`].
pub fn average_clustering(g: &SocialGraph) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    g.node_ids().map(|v| local_clustering(g, v)).sum::<f64>() / n as f64
}

/// Clustering coefficient averaged over an id-stride sample of about
/// `sample` nodes — deterministic, cheap on million-node graphs.
pub fn sampled_clustering(g: &SocialGraph, sample: usize) -> f64 {
    let n = g.num_nodes();
    if n == 0 || sample == 0 {
        return 0.0;
    }
    let stride = (n / sample.min(n)).max(1);
    let picked: Vec<NodeId> = (0..n).step_by(stride).map(|i| NodeId(i as u32)).collect();
    picked.iter().map(|&v| local_clustering(g, v)).sum::<f64>() / picked.len() as f64
}

/// Histogram of degrees as `(degree, node count)` pairs, ascending, only
/// non-empty buckets.
pub fn degree_histogram(g: &SocialGraph) -> Vec<(usize, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for v in g.node_ids() {
        *counts.entry(g.degree(v)).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn degree_stats_of_star() {
        let g = generate::star_topology(5).into_unit_graph();
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_empty_graph() {
        let g = crate::GraphBuilder::new().build();
        assert!(degree_stats(&g).is_none());
        assert_eq!(density(&g), 0.0);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn density_of_complete_graph_is_one() {
        let g = generate::complete_topology(7).into_unit_graph();
        assert!((density(&g) - 1.0).abs() < 1e-12);
        let p = generate::path_topology(7).into_unit_graph();
        assert!((density(&p) - 6.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_extremes() {
        let complete = generate::complete_topology(6).into_unit_graph();
        assert!((average_clustering(&complete) - 1.0).abs() < 1e-12);
        let star = generate::star_topology(6).into_unit_graph();
        assert_eq!(average_clustering(&star), 0.0);
        let path = generate::path_topology(3).into_unit_graph();
        assert_eq!(local_clustering(&path, crate::NodeId(1)), 0.0);
    }

    #[test]
    fn clustering_of_triangle_with_tail() {
        // Triangle 0-1-2 with a tail 2-3: nodes 0,1 have c=1, node 2 has
        // c = 1/3, node 3 has c = 0 → average 7/12.
        let topo = generate::GraphTopology::new(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        let g = topo.into_unit_graph();
        assert!((average_clustering(&g) - 7.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_clustering_matches_exact_on_small_graphs() {
        let topo = generate::GraphTopology::new(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        let g = topo.into_unit_graph();
        let exact = average_clustering(&g);
        let sampled = sampled_clustering(&g, 100); // sample ≥ n → all nodes
        assert!((exact - sampled).abs() < 1e-12);
    }

    #[test]
    fn degree_histogram_buckets() {
        let g = generate::star_topology(5).into_unit_graph();
        assert_eq!(degree_histogram(&g), vec![(1, 4), (4, 1)]);
    }
}

//! Plain-text interchange format for scored social graphs.
//!
//! The paper's datasets ship as edge lists; this module defines the
//! equivalent for scored WASO inputs so instances can be saved, diffed and
//! reloaded by the experiment harness:
//!
//! ```text
//! # anything after '#' is a comment
//! waso-graph v1
//! n 3
//! v 0 0.8
//! v 1 0.5
//! e 0 1 0.7 0.6      # u v tau_uv tau_vu
//! ```
//!
//! Unlisted nodes default to interest 0, letting raw `e`-only edge lists
//! load directly.

use std::io::{BufRead, Write};

use crate::builder::{GraphBuilder, GraphError};
use crate::csr::{NodeId, SocialGraph};

/// Errors while reading the text format.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// Structurally invalid graph (duplicate edge, self-loop, bad id).
    Graph(GraphError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Parse { line, message } => write!(f, "line {line}: {message}"),
            ReadError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl From<GraphError> for ReadError {
    fn from(e: GraphError) -> Self {
        ReadError::Graph(e)
    }
}

/// Writes `g` in the `waso-graph v1` text format. All I/O failure
/// surfaces through the returned `Result` — this path never panics.
pub fn write_graph<W: Write>(g: &SocialGraph, mut out: W) -> std::io::Result<()> {
    out.write_all(to_string(g).as_bytes())
}

/// Serializes `g` to a `String` in the text format. Rendering into
/// memory is infallible, so this returns the text directly.
pub fn to_string(g: &SocialGraph) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "waso-graph v1");
    let _ = writeln!(s, "n {}", g.num_nodes());
    for v in g.node_ids() {
        let eta = g.interest(v);
        if eta != 0.0 {
            let _ = writeln!(s, "v {} {}", v.0, eta);
        }
    }
    for (u, v, tau_uv, tau_vu) in g.undirected_edges() {
        let _ = writeln!(s, "e {} {} {} {}", u.0, v.0, tau_uv, tau_vu);
    }
    s
}

/// Reads a graph in the `waso-graph v1` text format.
pub fn read_graph<R: BufRead>(input: R) -> Result<SocialGraph, ReadError> {
    let mut n: Option<usize> = None;
    let mut interests: Vec<(u32, f64)> = Vec::new();
    let mut edges: Vec<(u32, u32, f64, f64)> = Vec::new();
    let mut max_id: u32 = 0;
    let mut saw_any = false;

    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut tok = body.split_whitespace();
        // A non-empty body always yields a token; the fallback keeps
        // this path statically panic-free for the audit.
        let Some(head) = tok.next() else { continue };
        let parse_err = |message: String| ReadError::Parse {
            line: line_no,
            message,
        };
        match head {
            "waso-graph" => {
                let ver = tok.next().unwrap_or("");
                if ver != "v1" {
                    return Err(parse_err(format!("unsupported version '{ver}'")));
                }
            }
            "n" => {
                let v = tok
                    .next()
                    .ok_or_else(|| parse_err("missing node count".into()))?;
                n = Some(
                    v.parse()
                        .map_err(|_| parse_err(format!("bad node count '{v}'")))?,
                );
            }
            "v" => {
                let id: u32 = next_num(&mut tok, "node id", line_no)?;
                let eta: f64 = next_num(&mut tok, "interest", line_no)?;
                max_id = max_id.max(id);
                saw_any = true;
                interests.push((id, eta));
            }
            "e" => {
                let u: u32 = next_num(&mut tok, "edge endpoint", line_no)?;
                let v: u32 = next_num(&mut tok, "edge endpoint", line_no)?;
                let tau_uv: f64 = next_num(&mut tok, "tightness", line_no)?;
                let tau_vu: f64 = next_num(&mut tok, "tightness", line_no)?;
                max_id = max_id.max(u).max(v);
                saw_any = true;
                edges.push((u, v, tau_uv, tau_vu));
            }
            other => {
                return Err(parse_err(format!("unknown record '{other}'")));
            }
        }
    }

    let n = n.unwrap_or(if saw_any { max_id as usize + 1 } else { 0 });
    if saw_any && max_id as usize >= n {
        return Err(ReadError::Parse {
            line: 0,
            message: format!("node id {max_id} exceeds declared n {n}"),
        });
    }

    let mut b = GraphBuilder::with_capacity(n, edges.len());
    b.add_nodes(n, 0.0);
    for (id, eta) in interests {
        b.set_interest(NodeId(id), eta)?;
    }
    for (u, v, tau_uv, tau_vu) in edges {
        b.add_edge(NodeId(u), NodeId(v), tau_uv, tau_vu)?;
    }
    Ok(b.try_build()?)
}

/// Parses a graph from an in-memory string.
pub fn from_str(s: &str) -> Result<SocialGraph, ReadError> {
    read_graph(s.as_bytes())
}

fn next_num<T: std::str::FromStr>(
    tok: &mut std::str::SplitWhitespace<'_>,
    what: &str,
    line: usize,
) -> Result<T, ReadError> {
    let raw = tok.next().ok_or_else(|| ReadError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    raw.parse().map_err(|_| ReadError::Parse {
        line,
        message: format!("bad {what} '{raw}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::scores::ScoreModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_graph() {
        let mut rng = StdRng::seed_from_u64(5);
        let topo = generate::barabasi_albert(40, 3, &mut rng);
        let g = ScoreModel::paper_asymmetric().realize(&topo, &mut rng);
        let text = to_string(&g);
        let back = from_str(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn reads_minimal_edge_list() {
        let g = from_str("e 0 1 0.5 0.5\ne 1 2 1.0 2.0\n").unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.interest(NodeId(0)), 0.0);
        assert_eq!(g.tightness(NodeId(2), NodeId(1)), Some(2.0));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nwaso-graph v1\nn 2\nv 0 0.25 # inline\ne 0 1 1 1\n";
        let g = from_str(text).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.interest(NodeId(0)), 0.25);
    }

    #[test]
    fn isolated_nodes_survive_roundtrip() {
        let g = from_str("n 5\nv 4 0.9\n").unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.interest(NodeId(4)), 0.9);
        let back = from_str(&to_string(&g)).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = from_str("e 0 1 0.5\n").unwrap_err();
        match err {
            ReadError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("missing tightness"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }

        let err = from_str("x 1 2\n").unwrap_err();
        assert!(err.to_string().contains("unknown record"));
    }

    #[test]
    fn id_beyond_declared_n_is_rejected() {
        let err = from_str("n 2\ne 0 5 1 1\n").unwrap_err();
        assert!(err.to_string().contains("exceeds declared n"));
    }

    #[test]
    fn structural_errors_propagate() {
        let err = from_str("e 0 1 1 1\ne 1 0 2 2\n").unwrap_err();
        assert!(matches!(err, ReadError::Graph(_)), "{err}");
        let err = from_str("e 3 3 1 1\n").unwrap_err();
        assert!(err.to_string().contains("self-loop"), "{err}");
    }

    #[test]
    fn version_mismatch_is_reported() {
        let err = from_str("waso-graph v9\n").unwrap_err();
        assert!(err.to_string().contains("unsupported version"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn arbitrary_graphs_roundtrip(
                n in 1usize..30,
                edge_seeds in proptest::collection::vec(
                    (0u32..30, 0u32..30, -2.0..2.0f64, -2.0..2.0f64), 0..60),
                interests in proptest::collection::vec(-3.0..3.0f64, 30),
            ) {
                let mut b = crate::GraphBuilder::new();
                #[allow(clippy::needless_range_loop)] // i is the node id
                for i in 0..n {
                    b.add_node(interests[i]);
                }
                let mut seen = std::collections::HashSet::new();
                for (a, c, t1, t2) in edge_seeds {
                    let (u, v) = (a % n as u32, c % n as u32);
                    if u == v {
                        continue;
                    }
                    let key = (u.min(v), u.max(v));
                    if seen.insert(key) {
                        b.add_edge(NodeId(u), NodeId(v), t1, t2).unwrap();
                    }
                }
                let g = b.build();
                let back = from_str(&to_string(&g)).unwrap();
                prop_assert_eq!(g, back);
            }
        }
    }
}

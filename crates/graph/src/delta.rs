//! Incremental graph mutations — the delta half of the session memo.
//!
//! A [`GraphDelta`] names one local change to a [`SocialGraph`]: an
//! edge appears or disappears, a directed tightness pair is re-weighted,
//! or a node's interest score drifts. [`GraphDelta::apply`] produces the
//! mutated graph (the CSR is immutable, so application rebuilds it from
//! the surviving edges — `O(n + m)`, bit-exact for every untouched
//! weight), and [`GraphDelta::touched`] names the endpoints so callers
//! can invalidate or re-fingerprint only what the delta reaches.
//!
//! Deltas never add or remove *nodes*: the node-count, and therefore
//! every `NodeId`, is stable across application. That is what makes
//! cached groups from before a delta comparable to the graph after it.

use crate::builder::GraphBuilder;
use crate::csr::{NodeId, SocialGraph};

/// One local mutation of a [`SocialGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphDelta {
    /// A new friendship: adds the undirected edge `{u, v}` with the
    /// directed tightness values `tau_uv` (u toward v) and `tau_vu`.
    AddEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// Tightness of `u` toward `v`.
        tau_uv: f64,
        /// Tightness of `v` toward `u`.
        tau_vu: f64,
    },
    /// A lapsed friendship: removes the undirected edge `{u, v}`.
    RemoveEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// A drifted interest score: node `v`'s interest becomes `interest`.
    SetInterest {
        /// The node whose interest changes.
        v: NodeId,
        /// The new interest score η_v.
        interest: f64,
    },
    /// Re-weighted tightness on the existing edge `{u, v}`.
    SetTightness {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// New tightness of `u` toward `v`.
        tau_uv: f64,
        /// New tightness of `v` toward `u`.
        tau_vu: f64,
    },
}

/// Why a delta could not be applied. Typed — never panicked — so a
/// serving process survives user-supplied deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// An endpoint is not a node of the graph.
    UnknownNode(u32),
    /// Both endpoints are the same node.
    SelfLoop(u32),
    /// [`GraphDelta::AddEdge`] named an edge that already exists.
    EdgeExists(u32, u32),
    /// [`GraphDelta::RemoveEdge`] / [`GraphDelta::SetTightness`] named
    /// an edge that does not exist.
    MissingEdge(u32, u32),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownNode(v) => write!(f, "delta names unknown node {v}"),
            DeltaError::SelfLoop(v) => write!(f, "delta names a self-loop at node {v}"),
            DeltaError::EdgeExists(u, v) => {
                write!(f, "edge ({u}, {v}) already exists; use SetTightness")
            }
            DeltaError::MissingEdge(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl GraphDelta {
    /// The nodes this delta reaches directly — the set a memo sweep
    /// tests cached groups (and their frontiers) against.
    pub fn touched(&self) -> Vec<NodeId> {
        match *self {
            GraphDelta::AddEdge { u, v, .. }
            | GraphDelta::RemoveEdge { u, v }
            | GraphDelta::SetTightness { u, v, .. } => vec![u, v],
            GraphDelta::SetInterest { v, .. } => vec![v],
        }
    }

    /// Validates this delta against `g` without applying it.
    pub fn validate(&self, g: &SocialGraph) -> Result<(), DeltaError> {
        let n = g.num_nodes() as u32;
        let check = |v: NodeId| -> Result<(), DeltaError> {
            if v.0 >= n {
                Err(DeltaError::UnknownNode(v.0))
            } else {
                Ok(())
            }
        };
        match *self {
            GraphDelta::AddEdge { u, v, .. } => {
                check(u)?;
                check(v)?;
                if u == v {
                    return Err(DeltaError::SelfLoop(u.0));
                }
                if g.has_edge(u, v) {
                    return Err(DeltaError::EdgeExists(u.0, v.0));
                }
            }
            GraphDelta::RemoveEdge { u, v } | GraphDelta::SetTightness { u, v, .. } => {
                check(u)?;
                check(v)?;
                if u == v {
                    return Err(DeltaError::SelfLoop(u.0));
                }
                if !g.has_edge(u, v) {
                    return Err(DeltaError::MissingEdge(u.0, v.0));
                }
            }
            GraphDelta::SetInterest { v, .. } => check(v)?,
        }
        Ok(())
    }

    /// Applies this delta to `g`, returning the mutated graph.
    ///
    /// Every weight the delta does not name is carried over bit-exact,
    /// so repeated application interleaved with solves stays on the
    /// determinism contract: `apply` then solve equals rebuilding the
    /// graph from scratch then solving.
    pub fn apply(&self, g: &SocialGraph) -> Result<SocialGraph, DeltaError> {
        self.validate(g)?;
        let n = g.num_nodes();
        let mut b = GraphBuilder::with_capacity(n, g.num_edges() + 1);
        for v in g.node_ids() {
            let eta = match *self {
                GraphDelta::SetInterest { v: t, interest } if t == v => interest,
                _ => g.interest(v),
            };
            b.add_node(eta);
        }
        for (a, c, tau_ac, tau_ca) in g.undirected_edges() {
            match *self {
                GraphDelta::RemoveEdge { u, v } if same_edge(u, v, a, c) => continue,
                GraphDelta::SetTightness {
                    u,
                    v,
                    tau_uv,
                    tau_vu,
                } if same_edge(u, v, a, c) => {
                    // `undirected_edges` yields a < c; orient the new
                    // directed values to match.
                    let (fwd, back) = if u == a {
                        (tau_uv, tau_vu)
                    } else {
                        (tau_vu, tau_uv)
                    };
                    push_edge(&mut b, a, c, fwd, back);
                }
                _ => push_edge(&mut b, a, c, tau_ac, tau_ca),
            }
        }
        if let GraphDelta::AddEdge {
            u,
            v,
            tau_uv,
            tau_vu,
        } = *self
        {
            push_edge(&mut b, u, v, tau_uv, tau_vu);
        }
        Ok(b.try_build().unwrap_or_else(|e| {
            // Validation above rules out every builder error
            // (unknown nodes, self-loops, duplicate edges).
            unreachable!("validated delta failed to build: {e}")
        }))
    }
}

/// `{u, v}` names the same undirected edge as `{a, c}`.
#[inline]
fn same_edge(u: NodeId, v: NodeId, a: NodeId, c: NodeId) -> bool {
    (u == a && v == c) || (u == c && v == a)
}

/// Adds an edge already validated against the source graph.
fn push_edge(b: &mut GraphBuilder, u: NodeId, v: NodeId, tau_uv: f64, tau_vu: f64) {
    b.add_edge(u, v, tau_uv, tau_vu)
        .unwrap_or_else(|e| unreachable!("validated edge failed to insert: {e}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(0.1);
        let v1 = b.add_node(0.2);
        let v2 = b.add_node(0.3);
        b.add_edge(v0, v1, 0.5, 0.6).unwrap();
        b.add_edge(v1, v2, 0.7, 0.8).unwrap();
        b.build()
    }

    #[test]
    fn add_edge_inserts_both_directions() {
        let g = path3();
        let d = GraphDelta::AddEdge {
            u: NodeId(2),
            v: NodeId(0),
            tau_uv: 0.25,
            tau_vu: 0.75,
        };
        assert_eq!(d.touched(), vec![NodeId(2), NodeId(0)]);
        let g2 = d.apply(&g).unwrap();
        assert_eq!(g2.num_edges(), 3);
        assert_eq!(g2.tightness(NodeId(2), NodeId(0)), Some(0.25));
        assert_eq!(g2.tightness(NodeId(0), NodeId(2)), Some(0.75));
        // Untouched weights are carried over bit-exact.
        assert_eq!(g2.tightness(NodeId(0), NodeId(1)), Some(0.5));
        assert_eq!(g2.tightness(NodeId(1), NodeId(0)), Some(0.6));
    }

    #[test]
    fn remove_and_retighten() {
        let g = path3();
        let g2 = GraphDelta::RemoveEdge {
            u: NodeId(2),
            v: NodeId(1),
        }
        .apply(&g)
        .unwrap();
        assert_eq!(g2.num_edges(), 1);
        assert!(!g2.has_edge(NodeId(1), NodeId(2)));

        // SetTightness given in reverse endpoint order still orients
        // the directed values correctly.
        let g3 = GraphDelta::SetTightness {
            u: NodeId(1),
            v: NodeId(0),
            tau_uv: 0.9,
            tau_vu: 0.1,
        }
        .apply(&g)
        .unwrap();
        assert_eq!(g3.tightness(NodeId(1), NodeId(0)), Some(0.9));
        assert_eq!(g3.tightness(NodeId(0), NodeId(1)), Some(0.1));
        assert_eq!(g3.tightness(NodeId(1), NodeId(2)), Some(0.7));
    }

    #[test]
    fn set_interest_touches_one_node() {
        let g = path3();
        let d = GraphDelta::SetInterest {
            v: NodeId(1),
            interest: 4.5,
        };
        assert_eq!(d.touched(), vec![NodeId(1)]);
        let g2 = d.apply(&g).unwrap();
        assert_eq!(g2.interest(NodeId(1)), 4.5);
        assert_eq!(g2.interest(NodeId(0)), 0.1);
    }

    #[test]
    fn typed_errors_for_bad_deltas() {
        let g = path3();
        let bad = [
            (
                GraphDelta::SetInterest {
                    v: NodeId(9),
                    interest: 1.0,
                },
                DeltaError::UnknownNode(9),
            ),
            (
                GraphDelta::AddEdge {
                    u: NodeId(1),
                    v: NodeId(1),
                    tau_uv: 0.1,
                    tau_vu: 0.1,
                },
                DeltaError::SelfLoop(1),
            ),
            (
                GraphDelta::AddEdge {
                    u: NodeId(0),
                    v: NodeId(1),
                    tau_uv: 0.1,
                    tau_vu: 0.1,
                },
                DeltaError::EdgeExists(0, 1),
            ),
            (
                GraphDelta::RemoveEdge {
                    u: NodeId(0),
                    v: NodeId(2),
                },
                DeltaError::MissingEdge(0, 2),
            ),
        ];
        for (delta, err) in bad {
            assert_eq!(delta.apply(&g).unwrap_err(), err);
        }
    }
}

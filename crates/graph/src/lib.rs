//! # waso-graph
//!
//! Social-graph substrate for the WASO reproduction.
//!
//! The paper's input is a social network `G = (V, E)` with an interest score
//! `η_i` per person and a (possibly asymmetric) social tightness score
//! `τ_{i,j}` per directed friendship. This crate owns that representation
//! end-to-end:
//!
//! * [`SocialGraph`] — immutable CSR storage with per-slot directed
//!   tightness and precomputed *pair weights* `τ_{i,j} + τ_{j,i}` (the hot
//!   quantity for willingness deltas);
//! * [`GraphBuilder`] — validated construction from nodes + undirected
//!   edges with two directed scores;
//! * [`generate`] — topology generators (Erdős–Rényi, Barabási–Albert,
//!   Watts–Strogatz, planted communities, deterministic fixtures);
//! * [`scores`] — the paper's §5.1 score models: power-law interests
//!   (β = 2.5, Clauset et al. \[5\]) and common-neighbour tightness
//!   (Chaoji et al. \[3\]);
//! * [`partition`] — seeded label-propagation community detection (the
//!   decomposition stage of scale-adaptive solving);
//! * [`delta`] — incremental mutations ([`GraphDelta`]): edges appear or
//!   disappear, tightness and interest scores drift, node ids stay
//!   stable — the substrate of session-level memo invalidation;
//! * [`traversal`], [`subgraph`], [`metrics`], [`io`] — BFS/components,
//!   induced subgraphs and ego networks, degree/clustering statistics, and
//!   a plain-text interchange format;
//! * [`bitset::BitSet`] — the membership set used by every solver's hot
//!   loop.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitset;
pub mod builder;
pub mod csr;
pub mod delta;
pub mod generate;
pub mod io;
pub mod metrics;
pub mod partition;
pub mod scores;
pub mod subgraph;
pub mod traversal;

pub use bitset::BitSet;
pub use builder::{GraphBuilder, GraphError};
pub use csr::{NodeId, SocialGraph};
pub use delta::{DeltaError, GraphDelta};
pub use generate::GraphTopology;
pub use partition::{label_propagation, Partition};
pub use scores::{InterestModel, ScoreModel, TightnessModel};

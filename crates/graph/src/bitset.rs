//! A fixed-capacity bit set over node indices.
//!
//! Every solver keeps an "is this node already in the partial solution"
//! membership test in its innermost loop (willingness deltas scan adjacency
//! lists and filter by membership). A flat `Vec<u64>` bit set gives that
//! test in one load and one mask with no hashing, and `clear_fast` lets a
//! growth workspace be reused across thousands of samples without
//! reallocating (see the perf-book notes on reusing collections).

/// A fixed-capacity set of `usize` indices in `[0, capacity)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set that can hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Capacity (exclusive upper bound on storable indices).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`; returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics in debug builds if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(
            i < self.capacity,
            "index {i} out of capacity {}",
            self.capacity
        );
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let was = *word & mask != 0;
        *word |= mask;
        !was
    }

    /// Removes `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let was = *word & mask != 0;
        *word &= !mask;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements (O(capacity/64), no allocation).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Removes exactly the listed elements — O(|elements|). When a workspace
    /// tracked which indices it set, clearing only those beats `clear` for
    /// small solutions inside huge graphs.
    pub fn clear_fast(&mut self, elements: &[u32]) {
        for &e in elements {
            self.remove(e as usize);
        }
    }

    /// Iterates set indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set sized to the largest element + 1.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports already-present");
        assert_eq!(s.len(), 4);
        assert!(s.contains(63));
        assert!(!s.contains(62));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn clear_variants_agree() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        let elems = [3u32, 77, 64, 199];
        for &e in &elems {
            a.insert(e as usize);
            b.insert(e as usize);
        }
        a.clear();
        b.clear_fast(&elems);
        assert_eq!(a, b);
        assert!(b.is_empty());
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut s = BitSet::new(100);
        for i in [99, 0, 64, 63, 5] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 99]);
    }

    #[test]
    fn from_iterator_sizes_itself() {
        let s: BitSet = [10usize, 2, 7].into_iter().collect();
        assert_eq!(s.capacity(), 11);
        assert_eq!(s.len(), 3);
        let empty: BitSet = std::iter::empty::<usize>().collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn zero_capacity_is_usable() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    proptest! {
        #[test]
        fn behaves_like_btreeset(ops in proptest::collection::vec((0usize..256, any::<bool>()), 0..200)) {
            let mut bs = BitSet::new(256);
            let mut reference = BTreeSet::new();
            for (i, is_insert) in ops {
                if is_insert {
                    prop_assert_eq!(bs.insert(i), reference.insert(i));
                } else {
                    prop_assert_eq!(bs.remove(i), reference.remove(&i));
                }
            }
            prop_assert_eq!(bs.len(), reference.len());
            let got: Vec<usize> = bs.iter().collect();
            let want: Vec<usize> = reference.into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }
}

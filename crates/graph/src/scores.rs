//! Score models: turning a bare topology into a scored [`SocialGraph`].
//!
//! §5.1 of the paper fixes the two score sources:
//!
//! * **interest scores** "follow the power-law distribution according to the
//!   recent analysis \[5\] on real datasets, which has found the power
//!   exponent β = 2.5";
//! * **social tightness** "is derived according to the widely adopted model
//!   based on the number of common friends that represent the proximity
//!   interaction \[3\]";
//! * both are then normalized.
//!
//! [`ScoreModel`] packages those choices (plus uniform/constant variants for
//! controlled experiments) and [`ScoreModel::realize`] applies them.

use rand::{Rng, RngExt};

use crate::builder::GraphBuilder;
use crate::csr::{NodeId, SocialGraph};
use crate::generate::GraphTopology;

/// How node interest scores `η_i` are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InterestModel {
    /// Power law with exponent `beta` and cut-off `x_min` (paper default:
    /// β = 2.5, x_min = 1), normalized to `[0, 1]` by the realized maximum.
    PowerLaw {
        /// Exponent β > 1.
        beta: f64,
        /// Lower cut-off.
        x_min: f64,
    },
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Every node gets the same score.
    Constant(f64),
}

/// How edge tightness scores `τ_{i,j}` are derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TightnessModel {
    /// Common-neighbour proximity (Chaoji et al. \[3\]): the raw strength of
    /// `(u, v)` is `|N(u) ∩ N(v)| + 1` (the `+1` keeps leaf friendships
    /// non-zero), normalized by the maximum strength. `symmetric = false`
    /// divides each direction by the owner's degree instead, yielding the
    /// asymmetric `τ_{u,v} ≠ τ_{v,u}` the problem statement allows: a
    /// popular person weighs one friendship less than a person with few
    /// friends does.
    CommonNeighbors {
        /// Produce `τ_{u,v} = τ_{v,u}` when `true`.
        symmetric: bool,
    },
    /// Uniform in `[lo, hi]`, independently per direction.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Every directed slot gets the same score.
    Constant(f64),
}

/// A complete score assignment recipe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreModel {
    /// Node interest distribution.
    pub interest: InterestModel,
    /// Edge tightness derivation.
    pub tightness: TightnessModel,
}

impl ScoreModel {
    /// The paper's §5.1 configuration: power-law interests (β = 2.5) and
    /// symmetric common-neighbour tightness, both normalized.
    pub fn paper_default() -> Self {
        Self {
            interest: InterestModel::PowerLaw {
                beta: 2.5,
                x_min: 1.0,
            },
            tightness: TightnessModel::CommonNeighbors { symmetric: true },
        }
    }

    /// Asymmetric variant of [`ScoreModel::paper_default`].
    pub fn paper_asymmetric() -> Self {
        Self {
            interest: InterestModel::PowerLaw {
                beta: 2.5,
                x_min: 1.0,
            },
            tightness: TightnessModel::CommonNeighbors { symmetric: false },
        }
    }

    /// Applies the model to a topology, producing a scored graph.
    pub fn realize<R: Rng + ?Sized>(&self, topo: &GraphTopology, rng: &mut R) -> SocialGraph {
        let interests = self.draw_interests(topo.n, rng);
        let taus = self.derive_tightness(topo, rng);

        let mut b = GraphBuilder::with_capacity(topo.n, topo.edges.len());
        for eta in interests {
            b.add_node(eta);
        }
        for (&(u, v), &(tau_uv, tau_vu)) in topo.edges.iter().zip(taus.iter()) {
            b.add_edge(NodeId(u), NodeId(v), tau_uv, tau_vu)
                .expect("topology produces valid edges");
        }
        b.build()
    }

    fn draw_interests<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        match self.interest {
            InterestModel::PowerLaw { beta, x_min } => {
                let pl = waso_stats::PowerLaw::new(beta, x_min);
                let mut xs = pl.sample_n(rng, n);
                waso_stats::powerlaw::normalize_max(&mut xs);
                xs
            }
            InterestModel::Uniform { lo, hi } => {
                assert!(hi >= lo, "uniform interest needs hi >= lo");
                (0..n).map(|_| rng.random_range(lo..=hi)).collect()
            }
            InterestModel::Constant(c) => vec![c; n],
        }
    }

    /// Per-edge `(τ_{u,v}, τ_{v,u})` aligned with `topo.edges`.
    fn derive_tightness<R: Rng + ?Sized>(
        &self,
        topo: &GraphTopology,
        rng: &mut R,
    ) -> Vec<(f64, f64)> {
        match self.tightness {
            TightnessModel::CommonNeighbors { symmetric } => {
                common_neighbor_tightness(topo, symmetric)
            }
            TightnessModel::Uniform { lo, hi } => {
                assert!(hi >= lo, "uniform tightness needs hi >= lo");
                topo.edges
                    .iter()
                    .map(|_| (rng.random_range(lo..=hi), rng.random_range(lo..=hi)))
                    .collect()
            }
            TightnessModel::Constant(c) => vec![(c, c); topo.edges.len()],
        }
    }
}

/// Common-neighbour strengths for every edge, normalized to `(0, 1]`.
///
/// Symmetric: `τ = (cn + 1) / max_strength` both ways.
/// Asymmetric: `τ_{u,v} = (cn + 1) / (deg(u) + 1)`, then normalized by the
/// global maximum — the same friendship matters less to the busier person.
pub fn common_neighbor_tightness(topo: &GraphTopology, symmetric: bool) -> Vec<(f64, f64)> {
    let adj = topo.adjacency();
    let deg = topo.degrees();
    let mut raw: Vec<(f64, f64)> = Vec::with_capacity(topo.edges.len());
    for &(u, v) in &topo.edges {
        let cn = sorted_intersection_len(&adj[u as usize], &adj[v as usize]) as f64;
        if symmetric {
            raw.push((cn + 1.0, cn + 1.0));
        } else {
            raw.push((
                (cn + 1.0) / (deg[u as usize] as f64 + 1.0),
                (cn + 1.0) / (deg[v as usize] as f64 + 1.0),
            ));
        }
    }
    let max = raw
        .iter()
        .map(|&(a, b)| a.max(b))
        .fold(f64::NEG_INFINITY, f64::max);
    if max > 0.0 && max.is_finite() {
        for t in &mut raw {
            t.0 /= max;
            t.1 /= max;
        }
    }
    raw
}

/// Length of the intersection of two ascending-sorted slices.
fn sorted_intersection_len(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn realize_preserves_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        let topo = generate::grid_topology(5, 4);
        let g = ScoreModel::paper_default().realize(&topo, &mut rng);
        assert_eq!(g.num_nodes(), 20);
        assert_eq!(g.num_edges(), topo.num_edges());
    }

    #[test]
    fn power_law_interests_are_normalized() {
        let mut rng = StdRng::seed_from_u64(2);
        let topo = generate::complete_topology(50);
        let g = ScoreModel::paper_default().realize(&topo, &mut rng);
        let max = g.interests().iter().cloned().fold(f64::MIN, f64::max);
        assert!((max - 1.0).abs() < 1e-12, "normalized max is 1, got {max}");
        assert!(g.interests().iter().all(|&x| x > 0.0 && x <= 1.0));
    }

    #[test]
    fn constant_models_are_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        let topo = generate::path_topology(4);
        let model = ScoreModel {
            interest: InterestModel::Constant(2.5),
            tightness: TightnessModel::Constant(0.25),
        };
        let g = model.realize(&topo, &mut rng);
        assert!(g.interests().iter().all(|&x| x == 2.5));
        for (u, v, tau_uv, tau_vu) in g.undirected_edges() {
            assert_eq!(tau_uv, 0.25, "{u}->{v}");
            assert_eq!(tau_vu, 0.25);
        }
    }

    #[test]
    fn uniform_models_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let topo = generate::complete_topology(20);
        let model = ScoreModel {
            interest: InterestModel::Uniform { lo: 2.0, hi: 3.0 },
            tightness: TightnessModel::Uniform { lo: 0.1, hi: 0.2 },
        };
        let g = model.realize(&topo, &mut rng);
        assert!(g.interests().iter().all(|&x| (2.0..=3.0).contains(&x)));
        for (_, _, a, b) in g.undirected_edges() {
            assert!((0.1..=0.2).contains(&a) && (0.1..=0.2).contains(&b));
        }
    }

    #[test]
    fn common_neighbors_on_triangle_plus_leaf() {
        // Triangle 0-1-2 plus leaf 3 attached to 0. Edge (0,1) shares
        // neighbour 2; edge (0,3) shares none.
        let topo = GraphTopology::new(4, [(0, 1), (1, 2), (0, 2), (0, 3)]);
        let taus = common_neighbor_tightness(&topo, true);
        let strength: Vec<f64> = taus.iter().map(|&(a, _)| a).collect();
        // Raw strengths: (0,1)→2, (1,2)→2, (0,2)→2, (0,3)→1; normalized by 2.
        assert_eq!(strength, vec![1.0, 1.0, 1.0, 0.5]);
        // Symmetric: both directions equal.
        assert!(taus.iter().all(|&(a, b)| a == b));
    }

    #[test]
    fn asymmetric_tightness_penalizes_high_degree() {
        // Star centre 0 with 4 leaves: centre degree 4, leaf degree 1.
        let topo = generate::star_topology(5);
        let taus = common_neighbor_tightness(&topo, false);
        for &(tau_center, tau_leaf) in &taus {
            // τ from the centre's perspective is smaller: 1/(4+1) vs 1/(1+1).
            assert!(tau_center < tau_leaf);
        }
        let max = taus.iter().map(|&(a, b)| a.max(b)).fold(f64::MIN, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_len_cases() {
        assert_eq!(sorted_intersection_len(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(sorted_intersection_len(&[], &[1]), 0);
        assert_eq!(sorted_intersection_len(&[1, 2], &[3, 4]), 0);
        assert_eq!(sorted_intersection_len(&[1, 2, 3], &[1, 2, 3]), 3);
    }

    #[test]
    fn power_law_exponent_recoverable_from_realized_scores() {
        // Draws many interests, un-normalizes implicitly by refitting on the
        // raw tail shape: the MLE of normalized data with x_min scaled the
        // same way recovers beta.
        let mut rng = StdRng::seed_from_u64(7);
        let topo = GraphTopology::new(20000, std::iter::empty());
        let g = ScoreModel::paper_default().realize(&topo, &mut rng);
        // Normalization divides by max M; power law is scale-free, so fit
        // with x_min = 1/M_est where M_est makes the smallest score 1.
        let min = g.interests().iter().cloned().fold(f64::MAX, f64::min);
        let rescaled: Vec<f64> = g.interests().iter().map(|&x| x / min).collect();
        let n = rescaled.len() as f64;
        let log_sum: f64 = rescaled.iter().map(|&x| x.ln()).sum();
        let beta = 1.0 + n / log_sum;
        assert!((beta - 2.5).abs() < 0.1, "beta {beta}");
    }
}

//! Fixed-width histograms.
//!
//! Figure 6(a) of the paper plots the distribution of willingness values of
//! uniformly grown random samples on the Facebook dataset and observes a
//! Gaussian shape (mean 124.71, variance 13.83 in their run). The harness
//! re-creates that plot with [`Histogram`] and fits the normal via
//! [`crate::normal::NormalFit`].

/// A histogram over `[lo, hi)` with equally wide bins.
///
/// Out-of-range observations are clamped into the first/last bin so that
/// `total()` always equals the number of `add` calls (the paper's histogram
/// is plotted over a fixed axis with everything visible).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(hi > lo, "empty histogram range [{lo}, {hi})");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Builds a histogram spanning the data range of `xs` (padded by half a
    /// bin on each side so the max lands inside the last bin).
    pub fn of(xs: &[f64], bins: usize) -> Self {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if !lo.is_finite() || !hi.is_finite() {
            lo = 0.0;
            hi = 1.0;
        }
        if hi <= lo {
            hi = lo + 1.0;
        }
        let pad = (hi - lo) / (2.0 * bins as f64);
        let mut h = Self::new(lo - pad, hi + pad, bins);
        for &x in xs {
            h.add(x);
        }
        h
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        let nb = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = if !t.is_finite() || t < 0.0 {
            0
        } else {
            ((t * nb as f64) as usize).min(nb - 1)
        };
        self.counts[idx] += 1;
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Raw count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + i as f64 * self.bin_width()
    }

    /// Midpoint of bin `i`.
    pub fn bin_mid(&self, i: usize) -> f64 {
        self.bin_lo(i) + 0.5 * self.bin_width()
    }

    /// Fraction of observations in bin `i` (0 if empty histogram).
    pub fn fraction(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / total as f64
        }
    }

    /// `(bin midpoint, fraction)` series — exactly what the Figure 6(a)
    /// bar chart plots.
    pub fn fractions(&self) -> Vec<(f64, f64)> {
        (0..self.bins())
            .map(|i| (self.bin_mid(i), self.fraction(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.999] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_clamps_to_edge_bins() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-5.0);
        h.add(7.0);
        h.add(1.0); // hi itself is out of the half-open range
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn of_covers_all_data() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.37 - 5.0).collect();
        let h = Histogram::of(&xs, 10);
        assert_eq!(h.total(), 100);
        // min and max must not be clamped: they fall inside the padded range
        assert!(h.bin_lo(0) < -5.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let xs = [1.0, 2.0, 2.5, 3.0, 10.0];
        let h = Histogram::of(&xs, 7);
        let s: f64 = h.fractions().iter().map(|&(_, f)| f).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_data_is_handled() {
        let xs = [3.0; 10];
        let h = Histogram::of(&xs, 4);
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn bin_midpoints_are_centered() {
        let h = Histogram::new(0.0, 4.0, 4);
        assert_eq!(h.bin_mid(0), 0.5);
        assert_eq!(h.bin_mid(3), 3.5);
        assert_eq!(h.bin_width(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}

//! The normal distribution: `erf`, pdf/cdf, inverse cdf, and maximum
//! likelihood fitting.
//!
//! Appendix A of the paper re-derives the CBAS budget-allocation rule when
//! per-start-node willingness samples follow a Gaussian rather than a
//! uniform distribution; evaluating `p(J*_b ≤ J*_i)` then needs `Φ` and
//! numerical quadrature (see [`crate::integrate`]). Figure 6(a) additionally
//! fits a Gaussian to a willingness histogram. The paper cites Bryc \[2\] for
//! tail approximations; we implement the classic Abramowitz–Stegun 7.1.26
//! rational approximation for `erf` (|ε| < 1.5e-7, ample for budget ratios)
//! and Acklam's algorithm for the inverse cdf.

use crate::descriptive::Welford;

/// Error function via Abramowitz & Stegun 7.1.26 (|error| < 1.5e-7).
pub fn erf(x: f64) -> f64 {
    // erf is odd; compute on |x| and restore the sign.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();

    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let t = 1.0 / (1.0 + P * x);
    let poly = ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t;
    let y = 1.0 - poly * (-x * x).exp();
    sign * y
}

/// Standard normal probability density `φ(z)`.
pub fn std_normal_pdf(z: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * z * z).exp()
}

/// Standard normal cumulative distribution `Φ(z)`.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Normal pdf with location `mu` and scale `sigma`.
///
/// A degenerate `sigma <= 0` returns an impulse approximation: `+inf` at the
/// mean, 0 elsewhere (callers guard against this; the sampler never produces
/// zero spread unless every sample is identical).
pub fn normal_pdf(x: f64, mu: f64, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return if x == mu { f64::INFINITY } else { 0.0 };
    }
    std_normal_pdf((x - mu) / sigma) / sigma
}

/// Normal cdf with location `mu` and scale `sigma`.
pub fn normal_cdf(x: f64, mu: f64, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return if x < mu { 0.0 } else { 1.0 };
    }
    std_normal_cdf((x - mu) / sigma)
}

/// Inverse standard normal cdf (Acklam's rational approximation,
/// relative error < 1.15e-9).
///
/// # Panics
/// Panics if `p` is outside `(0, 1)`.
pub fn std_normal_inv_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile of p={p} outside (0,1)");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Draws one standard-normal sample via Box–Muller (the user-study
/// simulator's perception noise; `rand` itself ships no distributions).
pub fn sample_standard<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    use rand::RngExt;
    // u1 ∈ (0, 1] avoids ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws one `N(mu, sigma²)` sample.
pub fn sample<R: rand::Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * sample_standard(rng)
}

/// Maximum-likelihood Gaussian fit `(μ, σ)` of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalFit {
    /// Fitted mean.
    pub mean: f64,
    /// Fitted (population) standard deviation.
    pub std_dev: f64,
}

impl NormalFit {
    /// Fits a Gaussian to `xs` by maximum likelihood (sample mean, population
    /// standard deviation). Returns `None` for fewer than two observations.
    pub fn fit(xs: &[f64]) -> Option<NormalFit> {
        if xs.len() < 2 {
            return None;
        }
        let mut w = Welford::new();
        for &x in xs {
            w.push(x);
        }
        Some(NormalFit {
            mean: w.mean(),
            std_dev: w.std_dev(),
        })
    }

    /// Pdf of the fitted Gaussian at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        normal_pdf(x, self.mean, self.std_dev)
    }

    /// Cdf of the fitted Gaussian at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        normal_cdf(x, self.mean, self.std_dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204999),
            (1.0, 0.8427008),
            (2.0, 0.9953223),
            (3.0, 0.9999779),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-6, "erf({x})");
            assert!((erf(-x) + want).abs() < 2e-6, "erf(-{x})");
        }
    }

    #[test]
    fn cdf_reference_values() {
        // The A&S 7.1.26 approximation carries ~1.5e-7 absolute error.
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std_normal_cdf(1.0) - 0.8413447).abs() < 1e-6);
        assert!((std_normal_cdf(-1.96) - 0.0249979).abs() < 1e-6);
        assert!((std_normal_cdf(2.5758) - 0.995).abs() < 1e-4);
    }

    #[test]
    fn pdf_peak_and_symmetry() {
        assert!((std_normal_pdf(0.0) - 0.3989423).abs() < 1e-7);
        assert!((std_normal_pdf(1.3) - std_normal_pdf(-1.3)).abs() < 1e-15);
    }

    #[test]
    fn scaled_normal_matches_standardization() {
        let (mu, sigma) = (124.71, 13.83_f64.sqrt()); // Figure 6(a) fit
        let x = 130.0;
        let z = (x - mu) / sigma;
        assert!((normal_cdf(x, mu, sigma) - std_normal_cdf(z)).abs() < 1e-14);
        assert!((normal_pdf(x, mu, sigma) - std_normal_pdf(z) / sigma).abs() < 1e-14);
    }

    #[test]
    fn degenerate_sigma_is_a_step() {
        assert_eq!(normal_cdf(0.9, 1.0, 0.0), 0.0);
        assert_eq!(normal_cdf(1.0, 1.0, 0.0), 1.0);
        assert_eq!(normal_pdf(0.9, 1.0, 0.0), 0.0);
    }

    #[test]
    fn inverse_cdf_reference_values() {
        assert!(std_normal_inv_cdf(0.5).abs() < 1e-9);
        assert!((std_normal_inv_cdf(0.975) - 1.959964).abs() < 1e-5);
        assert!((std_normal_inv_cdf(0.025) + 1.959964).abs() < 1e-5);
        assert!((std_normal_inv_cdf(0.995) - 2.575829).abs() < 1e-5);
    }

    #[test]
    fn fit_recovers_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let f = NormalFit::fit(&xs).unwrap();
        assert!((f.mean - 5.0).abs() < 1e-12);
        assert!((f.std_dev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fit_requires_two_points() {
        assert!(NormalFit::fit(&[]).is_none());
        assert!(NormalFit::fit(&[1.0]).is_none());
        assert!(NormalFit::fit(&[1.0, 2.0]).is_some());
    }

    #[test]
    fn box_muller_moments_are_right() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        let xs: Vec<f64> = (0..100_000).map(|_| sample(&mut rng, 3.0, 2.0)).collect();
        let fit = NormalFit::fit(&xs).unwrap();
        assert!((fit.mean - 3.0).abs() < 0.03, "mean {}", fit.mean);
        assert!((fit.std_dev - 2.0).abs() < 0.03, "std {}", fit.std_dev);
    }

    #[test]
    fn box_muller_tail_fractions() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(23);
        let n = 100_000;
        let beyond_2sigma = (0..n)
            .filter(|_| sample_standard(&mut rng).abs() > 2.0)
            .count() as f64
            / n as f64;
        // True mass beyond ±2σ ≈ 4.55%.
        assert!(
            (beyond_2sigma - 0.0455).abs() < 0.005,
            "got {beyond_2sigma}"
        );
    }

    proptest! {
        #[test]
        fn erf_is_odd_and_bounded(x in -10.0..10.0f64) {
            prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
            prop_assert!(erf(x).abs() <= 1.0 + 1e-12);
        }

        #[test]
        fn cdf_is_monotone(a in -6.0..6.0f64, b in -6.0..6.0f64) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(std_normal_cdf(lo) <= std_normal_cdf(hi) + 1e-12);
        }

        #[test]
        fn inv_cdf_inverts_cdf(p in 0.001..0.999f64) {
            let z = std_normal_inv_cdf(p);
            prop_assert!((std_normal_cdf(z) - p).abs() < 1e-5);
        }
    }
}

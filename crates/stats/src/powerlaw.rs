//! Power-law sampling and fitting.
//!
//! §5.1 of the paper assigns interest scores following a power law with
//! exponent β = 2.5, citing Clauset, Shalizi & Newman \[5\] for both the
//! empirical finding and the fitting method. [`PowerLaw`] provides
//! inverse-transform sampling of the continuous Pareto density
//! `p(x) ∝ x^{-β}` for `x ≥ x_min`, and [`PowerLaw::fit_mle`] implements the
//! Clauset et al. continuous MLE `β̂ = 1 + n / Σ ln(x_i / x_min)` used to
//! verify the generators.

use rand::{Rng, RngExt};

/// A continuous power-law (Pareto) distribution `p(x) ∝ x^{-beta}`,
/// `x ∈ [x_min, ∞)`, `beta > 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    /// Exponent β (> 1 so the density normalizes).
    pub beta: f64,
    /// Lower cut-off (> 0).
    pub x_min: f64,
}

impl PowerLaw {
    /// The paper's interest-score distribution: β = 2.5, x_min = 1.
    pub const INTEREST_SCORES: PowerLaw = PowerLaw {
        beta: 2.5,
        x_min: 1.0,
    };

    /// Creates a power law.
    ///
    /// # Panics
    /// Panics if `beta <= 1` (non-normalizable) or `x_min <= 0`.
    pub fn new(beta: f64, x_min: f64) -> Self {
        assert!(beta > 1.0, "power law needs beta > 1, got {beta}");
        assert!(x_min > 0.0, "power law needs x_min > 0, got {x_min}");
        Self { beta, x_min }
    }

    /// Draws one sample by inverse-transform:
    /// `x = x_min (1-u)^{-1/(β-1)}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u ∈ [0, 1); 1-u ∈ (0, 1] avoids the infinite tail at u = 1.
        let u: f64 = rng.random();
        self.x_min * (1.0 - u).powf(-1.0 / (self.beta - 1.0))
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Theoretical mean `x_min (β-1)/(β-2)`; `None` when β ≤ 2 (infinite).
    pub fn mean(&self) -> Option<f64> {
        if self.beta > 2.0 {
            Some(self.x_min * (self.beta - 1.0) / (self.beta - 2.0))
        } else {
            None
        }
    }

    /// Cdf `1 - (x/x_min)^{-(β-1)}` for `x ≥ x_min`, 0 below.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < self.x_min {
            0.0
        } else {
            1.0 - (x / self.x_min).powf(-(self.beta - 1.0))
        }
    }

    /// Continuous maximum-likelihood exponent estimate (Clauset et al. 2009,
    /// Eq. 3.1): `β̂ = 1 + n / Σ ln(x_i / x_min)`.
    ///
    /// Observations below `x_min` are discarded (they are outside the model's
    /// support). Returns `None` if fewer than two observations remain or the
    /// log-sum degenerates.
    pub fn fit_mle(xs: &[f64], x_min: f64) -> Option<f64> {
        assert!(x_min > 0.0);
        let mut n = 0u64;
        let mut log_sum = 0.0;
        for &x in xs {
            if x >= x_min {
                n += 1;
                log_sum += (x / x_min).ln();
            }
        }
        if n < 2 || log_sum <= 0.0 {
            return None;
        }
        Some(1.0 + n as f64 / log_sum)
    }
}

/// Rescales `xs` into `[0, 1]` in place by dividing by the maximum
/// (all-zero input is left untouched).
///
/// §5.1: "social tightness scores and interest scores are normalized".
pub fn normalize_max(xs: &mut [f64]) {
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max > 0.0 && max.is_finite() {
        for x in xs.iter_mut() {
            *x /= max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_the_cutoff() {
        let mut rng = StdRng::seed_from_u64(7);
        let pl = PowerLaw::new(2.5, 3.0);
        for _ in 0..1000 {
            assert!(pl.sample(&mut rng) >= 3.0);
        }
    }

    #[test]
    fn empirical_mean_close_to_theory() {
        let mut rng = StdRng::seed_from_u64(42);
        let pl = PowerLaw::INTEREST_SCORES; // β=2.5 → mean = 3
        let xs = pl.sample_n(&mut rng, 200_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        // Heavy tail: generous tolerance, tight enough to catch an exponent
        // bug (β=1.5 would diverge; β=3.5 would give mean ≈ 1.67).
        assert!((mean - 3.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn mle_recovers_beta() {
        let mut rng = StdRng::seed_from_u64(1);
        let pl = PowerLaw::new(2.5, 1.0);
        let xs = pl.sample_n(&mut rng, 100_000);
        let beta = PowerLaw::fit_mle(&xs, 1.0).unwrap();
        assert!((beta - 2.5).abs() < 0.05, "beta {beta}");
    }

    #[test]
    fn mle_ignores_below_cutoff() {
        let xs = [0.1, 0.5, 2.0, 3.0, 4.0];
        let with = PowerLaw::fit_mle(&xs, 1.0).unwrap();
        let without = PowerLaw::fit_mle(&[2.0, 3.0, 4.0], 1.0).unwrap();
        assert_eq!(with, without);
    }

    #[test]
    fn mle_degenerate_inputs() {
        assert!(PowerLaw::fit_mle(&[], 1.0).is_none());
        assert!(PowerLaw::fit_mle(&[2.0], 1.0).is_none());
        // all observations == x_min → log-sum is 0
        assert!(PowerLaw::fit_mle(&[1.0, 1.0, 1.0], 1.0).is_none());
    }

    #[test]
    fn cdf_median_matches_sampling() {
        let pl = PowerLaw::new(2.5, 1.0);
        // Median: 1 - m^{-1.5} = 0.5 → m = 2^{2/3}
        let median = 2f64.powf(2.0 / 3.0);
        assert!((pl.cdf(median) - 0.5).abs() < 1e-12);
        assert_eq!(pl.cdf(0.5), 0.0);
    }

    #[test]
    fn mean_undefined_for_fat_tails() {
        assert!(PowerLaw::new(1.8, 1.0).mean().is_none());
        assert!((PowerLaw::new(3.0, 2.0).mean().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_max_scales_to_unit() {
        let mut xs = vec![2.0, 8.0, 4.0];
        normalize_max(&mut xs);
        assert_eq!(xs, vec![0.25, 1.0, 0.5]);
        let mut zeros = vec![0.0, 0.0];
        normalize_max(&mut zeros);
        assert_eq!(zeros, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "beta > 1")]
    fn rejects_non_normalizable_exponent() {
        let _ = PowerLaw::new(1.0, 1.0);
    }
}

//! # waso-stats
//!
//! Numerics substrate for the WASO reproduction.
//!
//! The paper leans on several pieces of applied statistics that a production
//! implementation has to own outright:
//!
//! * the OCBA budget-allocation rules of CBAS need order statistics of
//!   uniform and normal random variables ([`normal`], [`integrate`]);
//! * the cross-entropy method of CBAS-ND needs top-ρ sample quantiles
//!   ([`quantile`]);
//! * the score models of §5.1 need power-law sampling with exponent β = 2.5
//!   ([`powerlaw`]) and normalization helpers;
//! * Figure 6(a) fits a Gaussian to a willingness histogram
//!   ([`histogram`], [`normal::NormalFit`]).
//!
//! Everything here is dependency-free numerical code (only `rand` for
//! sampling) with property-based tests on the analytic identities.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod descriptive;
pub mod histogram;
pub mod integrate;
pub mod normal;
pub mod powerlaw;
pub mod quantile;

pub use descriptive::{Summary, Welford};
pub use histogram::Histogram;
pub use normal::{normal_cdf, normal_pdf, NormalFit};
pub use powerlaw::PowerLaw;
pub use quantile::{percentile, top_rho_count, top_rho_threshold};

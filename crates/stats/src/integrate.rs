//! Numerical quadrature: composite Simpson and fixed-order Gauss–Legendre.
//!
//! Appendix A notes that the Gaussian variant of the CBAS budget allocation
//! "is necessary to be computed numerically because the Φ(x) function
//! contains erf(x) … no closed-form representation after being integrated".
//! `waso-algos::gaussian` evaluates
//! `p(J*_b ≤ J*_i) = 1 - ∫ N_b Φ_b^{N_b-1} φ_b Φ_i^{N_i} dx`
//! with these routines.

/// Composite Simpson's rule on `[a, b]` with `n` subintervals
/// (`n` is rounded up to the next even number; `n >= 2`).
pub fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(a.is_finite() && b.is_finite(), "bounds must be finite");
    if a == b {
        return 0.0;
    }
    let n = n.max(2).next_multiple_of(2);
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let x = a + i as f64 * h;
        sum += if i % 2 == 1 { 4.0 * f(x) } else { 2.0 * f(x) };
    }
    sum * h / 3.0
}

/// 20-point Gauss–Legendre nodes (positive half) and weights on `[-1, 1]`.
///
/// Exact for polynomials up to degree 39; the OCBA integrands are smooth
/// products of Gaussians, for which 20 points per panel is plenty.
const GL20_X: [f64; 10] = [
    0.076_526_521_133_497_34,
    0.227_785_851_141_645_07,
    0.373_706_088_715_419_55,
    0.510_867_001_950_827_1,
    0.636_053_680_726_515,
    0.746_331_906_460_150_8,
    0.839_116_971_822_218_8,
    0.912_234_428_251_326,
    0.963_971_927_277_913_8,
    0.993_128_599_185_094_9,
];
const GL20_W: [f64; 10] = [
    0.152_753_387_130_725_84,
    0.149_172_986_472_603_74,
    0.142_096_109_318_382_04,
    0.131_688_638_449_176_64,
    0.118_194_531_961_518_41,
    0.101_930_119_817_240_44,
    0.083_276_741_576_704_75,
    0.062_672_048_334_109_07,
    0.040_601_429_800_386_94,
    0.017_614_007_139_152_118,
];

/// 20-point Gauss–Legendre quadrature on a single panel `[a, b]`.
pub fn gauss_legendre_20<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64) -> f64 {
    let mid = 0.5 * (a + b);
    let half = 0.5 * (b - a);
    let mut sum = 0.0;
    for i in 0..10 {
        let dx = half * GL20_X[i];
        sum += GL20_W[i] * (f(mid - dx) + f(mid + dx));
    }
    sum * half
}

/// Composite 20-point Gauss–Legendre over `panels` equal panels of `[a, b]`.
pub fn gauss_legendre<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, panels: usize) -> f64 {
    assert!(a.is_finite() && b.is_finite(), "bounds must be finite");
    let panels = panels.max(1);
    let width = (b - a) / panels as f64;
    let mut total = 0.0;
    for p in 0..panels {
        let lo = a + p as f64 * width;
        total += gauss_legendre_20(&f, lo, lo + width);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::{normal_pdf, std_normal_pdf};
    use proptest::prelude::*;

    #[test]
    fn simpson_integrates_polynomials_exactly() {
        // Simpson is exact for cubics.
        let got = simpson(|x| x * x * x - 2.0 * x + 1.0, -1.0, 3.0, 2);
        let want = |x: f64| x.powi(4) / 4.0 - x * x + x;
        assert!((got - (want(3.0) - want(-1.0))).abs() < 1e-12);
    }

    #[test]
    fn simpson_rounds_odd_n_up() {
        let with_odd = simpson(|x| x * x, 0.0, 1.0, 3);
        assert!((with_odd - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn simpson_empty_interval_is_zero() {
        assert_eq!(simpson(|x| x.exp(), 2.0, 2.0, 10), 0.0);
    }

    #[test]
    fn gauss_legendre_integrates_high_degree_exactly() {
        // Degree 21 polynomial: still exact for 20-point GL (degree ≤ 39).
        let got = gauss_legendre(|x| x.powi(21), 0.0, 1.0, 1);
        assert!((got - 1.0 / 22.0).abs() < 1e-12);
    }

    #[test]
    fn normal_density_integrates_to_one() {
        let s = gauss_legendre(std_normal_pdf, -8.0, 8.0, 8);
        assert!((s - 1.0).abs() < 1e-10, "got {s}");
        let s2 = simpson(std_normal_pdf, -8.0, 8.0, 400);
        assert!((s2 - 1.0).abs() < 1e-9, "got {s2}");
    }

    #[test]
    fn shifted_normal_density_integrates_to_one() {
        let (mu, sigma) = (124.71, 3.72);
        let s = gauss_legendre(
            |x| normal_pdf(x, mu, sigma),
            mu - 8.0 * sigma,
            mu + 8.0 * sigma,
            8,
        );
        assert!((s - 1.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn max_order_statistic_density_integrates_to_one() {
        // The Appendix-A integrand family: N Φ(x)^{N-1} φ(x) is the density
        // of the max of N standard normals.
        use crate::normal::std_normal_cdf;
        for n in [1.0, 5.0, 25.0] {
            let s = gauss_legendre(
                |x| n * std_normal_cdf(x).powf(n - 1.0) * std_normal_pdf(x),
                -9.0,
                9.0,
                12,
            );
            assert!((s - 1.0).abs() < 1e-6, "N={n}: got {s}");
        }
    }

    proptest! {
        #[test]
        fn methods_agree_on_smooth_functions(a in -2.0..0.0f64, b in 0.1..2.0f64) {
            let f = |x: f64| (x * 1.3).sin() + 0.5 * x * x;
            let s = simpson(f, a, b, 200);
            let g = gauss_legendre(f, a, b, 4);
            prop_assert!((s - g).abs() < 1e-8);
        }
    }
}

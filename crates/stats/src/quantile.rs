//! Quantiles and the top-ρ machinery of the cross-entropy method.
//!
//! CBAS-ND (Definition 5) sorts the willingness of a stage's samples in
//! descending order `W(1) ≥ … ≥ W(N)` and keeps the *top-ρ quantile*
//! `γ = W(⌈ρN⌉)` as the elite threshold. [`top_rho_count`] /
//! [`top_rho_threshold`] implement exactly that ⌈ρN⌉ convention so the
//! algorithm code reads like the paper.

/// Number of elite samples `⌈ρ·n⌉`, clamped to `[1, n]` for non-empty input
/// (0 when `n == 0`).
///
/// # Panics
/// Panics if `rho` is not in `(0, 1]`.
pub fn top_rho_count(n: usize, rho: f64) -> usize {
    assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0,1], got {rho}");
    if n == 0 {
        return 0;
    }
    ((rho * n as f64).ceil() as usize).clamp(1, n)
}

/// The elite threshold `γ = W(⌈ρn⌉)` of a sample of performances
/// (Definition 5). Returns `None` for empty input.
///
/// `values` need not be sorted; the function selects the ⌈ρn⌉-th largest.
pub fn top_rho_threshold(values: &[f64], rho: f64) -> Option<f64> {
    let count = top_rho_count(values.len(), rho);
    if count == 0 {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    // Descending; NaN (never produced by willingness evaluation) sorts last.
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    Some(sorted[count - 1])
}

/// Linear-interpolated percentile (`p` in `[0, 100]`) of unsorted data.
/// Returns `None` for empty input.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn count_matches_paper_example() {
        // Example 2: N=5 samples, ρ=1/2 → γ = W(⌈2.5⌉) = W(3).
        assert_eq!(top_rho_count(5, 0.5), 3);
        // §5.1 default ρ=0.3 with 10 samples → 3 elites.
        assert_eq!(top_rho_count(10, 0.3), 3);
    }

    #[test]
    fn count_edge_cases() {
        assert_eq!(top_rho_count(0, 0.3), 0);
        assert_eq!(top_rho_count(1, 0.01), 1); // always at least one elite
        assert_eq!(top_rho_count(4, 1.0), 4);
    }

    #[test]
    fn threshold_matches_example_two() {
        // Example 2: W = ⟨9.2, 8.9, 8.9, 7.9, 5.9⟩, ρ=1/2 → γ = W(3) = 8.9.
        let w = [9.2, 8.9, 8.9, 7.9, 5.9];
        assert_eq!(top_rho_threshold(&w, 0.5), Some(8.9));
    }

    #[test]
    fn threshold_handles_unsorted_input() {
        let w = [5.9, 9.2, 7.9, 8.9, 8.9];
        assert_eq!(top_rho_threshold(&w, 0.5), Some(8.9));
    }

    #[test]
    fn threshold_empty_is_none() {
        assert_eq!(top_rho_threshold(&[], 0.3), None);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    proptest! {
        #[test]
        fn threshold_is_a_sample_value(
            xs in proptest::collection::vec(-100.0..100.0f64, 1..50),
            rho in 0.05..1.0f64,
        ) {
            let gamma = top_rho_threshold(&xs, rho).unwrap();
            prop_assert!(xs.contains(&gamma));
            // At least ⌈ρn⌉ samples are ≥ γ.
            let count = top_rho_count(xs.len(), rho);
            let at_least = xs.iter().filter(|&&x| x >= gamma).count();
            prop_assert!(at_least >= count);
        }

        #[test]
        fn percentile_within_range(
            xs in proptest::collection::vec(-1e3..1e3f64, 1..50),
            p in 0.0..100.0f64,
        ) {
            let v = percentile(&xs, p).unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}

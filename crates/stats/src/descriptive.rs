//! Streaming descriptive statistics (Welford's online algorithm) and
//! one-shot summaries.
//!
//! The experiment harness summarizes thousands of sampled willingness values
//! per start node; a single-pass, numerically stable accumulator keeps that
//! cheap and allocation-free (the per-sample hot path of CBAS only touches
//! this accumulator).

/// Single-pass mean/variance accumulator (Welford, 1962).
///
/// Numerically stable for long streams; used to fit the Gaussian budget
/// allocator of CBAS-ND-G (Appendix A) from per-start-node samples.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; 0 for an empty stream.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n); 0 for fewer than 2 observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by n-1); 0 for fewer than 2 observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` for an empty stream.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` for an empty stream.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Freezes the stream into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min,
            max: self.max,
        }
    }
}

/// Immutable summary of a sample: count, mean, standard deviation, range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a slice in one pass.
    pub fn of(xs: &[f64]) -> Summary {
        let mut w = Welford::new();
        for &x in xs {
            w.push(x);
        }
        w.summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream_is_safe() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert!(w.min().is_infinite());
    }

    #[test]
    fn single_observation() {
        let mut w = Welford::new();
        w.push(4.5);
        assert_eq!(w.mean(), 4.5);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), 4.5);
        assert_eq!(w.max(), 4.5);
    }

    #[test]
    fn matches_two_pass_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&xs);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let mut w = Welford::new();
        for x in [1.0, 2.0, 3.0] {
            w.push(x);
        }
        assert!((w.sample_variance() - 1.0).abs() < 1e-12);
        assert!((w.variance() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs = [1.0, 2.5, -3.0, 8.0, 0.25];
        let ys = [4.0, -1.5, 2.0];
        let mut a = Welford::new();
        for &x in &xs {
            a.push(x);
        }
        let mut b = Welford::new();
        for &y in &ys {
            b.push(y);
        }
        a.merge(&b);

        let mut c = Welford::new();
        for &x in xs.iter().chain(ys.iter()) {
            c.push(x);
        }
        assert_eq!(a.count(), c.count());
        assert!((a.mean() - c.mean()).abs() < 1e-12);
        assert!((a.variance() - c.variance()).abs() < 1e-12);
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.summary();
        a.merge(&Welford::new());
        assert_eq!(a.summary(), before);

        let mut empty = Welford::new();
        let mut b = Welford::new();
        b.push(1.0);
        b.push(2.0);
        empty.merge(&b);
        assert_eq!(empty.summary(), before);
    }

    #[test]
    fn large_offset_is_stable() {
        // Classic catastrophic-cancellation probe: huge mean, small variance.
        let mut w = Welford::new();
        for x in [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0] {
            w.push(x);
        }
        assert!((w.mean() - (1e9 + 10.0)).abs() < 1e-3);
        assert!((w.sample_variance() - 30.0).abs() < 1e-6);
    }
}

//! Integration tests: each rule against a known-bad and known-clean
//! fixture (exact rule ids and line numbers), the suppression grammar's
//! accept and reject paths, the binary's exit-code contract, and the
//! meta-test that the auditor runs clean on the workspace it ships in.

use std::path::{Path, PathBuf};
use std::process::Command;

use waso_audit::json::Json;
use waso_audit::{audit_source, audit_workspace, report_to_json, rules, RuleId};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Audits a fixture and reduces each diagnostic to `(line, rule)` — the
/// shape every expectation below asserts exactly.
fn audit_fixture(name: &str, rules: &[RuleId]) -> Vec<(u32, RuleId)> {
    let path = fixture_path(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    audit_source(name, &src, rules)
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect()
}

#[test]
fn d1_bad_fixture_flags_every_hash_container() {
    assert_eq!(
        audit_fixture("d1_bad.rs", &[RuleId::D1]),
        vec![
            (1, RuleId::D1), // HashMap in the use list
            (1, RuleId::D1), // HashSet in the use list
            (4, RuleId::D1), // HashMap type annotation
            (4, RuleId::D1), // HashMap::new()
            (5, RuleId::D1), // HashSet::new()
        ]
    );
}

#[test]
fn d1_clean_fixture_passes() {
    assert_eq!(audit_fixture("d1_clean.rs", &[RuleId::D1]), vec![]);
}

#[test]
fn d2_bad_fixture_flags_clocks_and_entropy() {
    assert_eq!(
        audit_fixture("d2_bad.rs", &[RuleId::D2]),
        vec![
            (1, RuleId::D2),  // SystemTime in the use list
            (4, RuleId::D2),  // Instant::now()
            (5, RuleId::D2),  // SystemTime::now()
            (10, RuleId::D2), // thread_rng()
        ]
    );
}

#[test]
fn d2_does_not_flag_bare_instant() {
    // `Instant` alone (line 1 of the fixture, and the `t0.elapsed()`
    // call) is fine — only the `Instant::now` path is a clock source.
    let diags = audit_fixture("d2_bad.rs", &[RuleId::D2]);
    assert_eq!(diags.iter().filter(|(line, _)| *line == 6).count(), 0);
}

#[test]
fn d2_clean_fixture_passes() {
    assert_eq!(audit_fixture("d2_clean.rs", &[RuleId::D2]), vec![]);
}

#[test]
fn p1_bad_fixture_flags_each_panic_class() {
    assert_eq!(
        audit_fixture("p1_bad.rs", &[RuleId::P1]),
        vec![
            (2, RuleId::P1),  // .unwrap()
            (6, RuleId::P1),  // .expect(…)
            (10, RuleId::P1), // panic!
            (14, RuleId::P1), // todo!
        ]
    );
}

#[test]
fn p1_clean_fixture_passes_including_test_module() {
    // The clean fixture deliberately unwraps and panics inside a
    // `#[cfg(test)]` module — the skip mask must cover it.
    assert_eq!(audit_fixture("p1_clean.rs", &[RuleId::P1]), vec![]);
}

#[test]
fn l1_bad_fixture_flags_the_inverted_acquisition() {
    // `drain` takes plan → slots[_]; `heal` takes slots[_] → plan. The
    // diagnostic lands on heal's second acquisition.
    assert_eq!(
        audit_fixture("l1_bad.rs", &[RuleId::L1]),
        vec![(11, RuleId::L1)]
    );
}

#[test]
fn l1_clean_fixture_passes_and_io_read_is_not_a_lock() {
    assert_eq!(audit_fixture("l1_clean.rs", &[RuleId::L1]), vec![]);
}

#[test]
fn p2_bad_fixture_flags_indexing_and_unwrap_on_dispatch_paths() {
    assert_eq!(
        audit_fixture("p2_bad.rs", &[RuleId::P2]),
        vec![
            (4, RuleId::P2),  // jobs[job]
            (10, RuleId::P2), // digits.unwrap()
        ]
    );
}

#[test]
fn p2_clean_fixture_passes_through_shield_and_test_mask() {
    // Typed errors, an unwrap inside catch_unwind (barrier), and an
    // unwrap inside `#[cfg(test)]` (skip mask) — all clean.
    assert_eq!(audit_fixture("p2_clean.rs", &[RuleId::P2]), vec![]);
}

/// The acceptance shape: a panic two calls deep from a serve dispatch
/// fn, across a file boundary, reported at the panic site with the full
/// witness chain. Only `p2_root.rs` is P2-rooted; the helpers are pure
/// call-graph context.
#[test]
fn p2_chain_crosses_files_and_names_the_full_chain() {
    let corpus: Vec<(String, String)> = ["p2_root.rs", "p2_helpers.rs"]
        .iter()
        .map(|name| {
            let src = std::fs::read_to_string(fixture_path(name)).unwrap();
            (name.to_string(), src)
        })
        .collect();
    let diags = rules::audit_corpus(&corpus, &|rel| {
        if rel == "p2_root.rs" {
            vec![RuleId::P2]
        } else {
            Vec::new()
        }
    });
    assert_eq!(diags.len(), 1, "exactly the one reachable panic: {diags:?}");
    let d = &diags[0];
    assert_eq!(
        (d.file.as_str(), d.line, d.rule),
        ("p2_helpers.rs", 9, RuleId::P2)
    );
    assert_eq!(d.chain, vec!["dispatch", "prepare", "decode"]);
    assert!(
        d.message.contains("chain: dispatch → prepare → decode"),
        "diagnostic renders the witness chain: {}",
        d.message
    );
    assert!(
        d.message.contains("reachable from serve fn `dispatch`"),
        "diagnostic names the root: {}",
        d.message
    );
}

#[test]
fn l2_bad_fixture_flags_the_cycle_and_the_send_under_lock() {
    let path = fixture_path("l2_bad.rs");
    let src = std::fs::read_to_string(&path).unwrap();
    let diags = audit_source("l2_bad.rs", &src, &[RuleId::L2]);
    let shape: Vec<(u32, RuleId)> = diags.iter().map(|d| (d.line, d.rule)).collect();
    assert_eq!(
        shape,
        vec![
            (15, RuleId::L2), // cycle, reported at the a→b witness
            (27, RuleId::L2), // send under Pair.a's guard
        ]
    );
    let cycle = &diags[0];
    assert_eq!(cycle.chain, vec!["Pair::forward", "Pair::backward"]);
    assert!(
        cycle.message.contains("`Pair.a` → `Pair.b`")
            && cycle.message.contains("`Pair.b` → `Pair.a`"),
        "cycle message shows both edges: {}",
        cycle.message
    );
    assert!(
        diags[1]
            .message
            .contains("lock `Pair.a` (acquired line 26)"),
        "send diagnostic names the held lock: {}",
        diags[1].message
    );
}

#[test]
fn l2_clean_fixture_passes_with_consistent_order_and_early_drop() {
    assert_eq!(audit_fixture("l2_clean.rs", &[RuleId::L2]), vec![]);
}

#[test]
fn d3_bad_fixture_flags_unseeded_stream_and_ambient_read() {
    assert_eq!(
        audit_fixture("d3_bad.rs", &[RuleId::D3]),
        vec![
            (4, RuleId::D3), // seed_from_u64 without a seed-rooted arg
            (8, RuleId::D3), // env::var
        ]
    );
}

#[test]
fn d3_clean_fixture_passes_through_the_seedy_fixpoint() {
    assert_eq!(audit_fixture("d3_clean.rs", &[RuleId::D3]), vec![]);
}

#[test]
fn justified_suppressions_silence_their_rules() {
    assert_eq!(
        audit_fixture("suppress.rs", &[RuleId::D1, RuleId::D2]),
        vec![]
    );
}

#[test]
fn suppression_hygiene_is_itself_audited() {
    assert_eq!(
        audit_fixture("sup_bad.rs", &[RuleId::D1, RuleId::P1]),
        vec![
            (1, RuleId::Sup), // reasonless
            (4, RuleId::Sup), // unknown rule id
            (7, RuleId::Sup), // suppresses nothing
        ]
    );
}

#[test]
fn binary_exits_nonzero_on_bad_fixture_and_names_the_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_waso-audit"))
        .arg(fixture_path("d1_bad.rs"))
        .output()
        .unwrap_or_else(|e| panic!("running waso-audit: {e}"));
    assert_eq!(out.status.code(), Some(1), "bad fixture must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("D1"), "diagnostics name the rule: {stdout}");
    assert!(
        stdout.contains("d1_bad.rs:1"),
        "diagnostics carry file:line: {stdout}"
    );
}

#[test]
fn binary_exits_zero_on_clean_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_waso-audit"))
        .arg(fixture_path("d1_clean.rs"))
        .output()
        .unwrap_or_else(|e| panic!("running waso-audit: {e}"));
    assert_eq!(out.status.code(), Some(0), "clean fixture must exit 0");
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| panic!("crates/audit has a workspace two levels up"))
}

/// The auditor's reason to exist: the workspace it ships in holds its
/// own invariants — under the *full* rule set, interprocedural rules
/// included. Any reintroduced HashMap in a solver crate, unwrap on a
/// serving path, or panic newly reachable from a dispatch fn fails this
/// test before it reaches CI.
#[test]
fn workspace_is_audit_clean() {
    let root = workspace_root();
    let report =
        audit_workspace(&root).unwrap_or_else(|e| panic!("auditing {}: {e}", root.display()));
    assert!(
        report.files_audited > 20,
        "scope collapsed — only {} files audited",
        report.files_audited
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(ToString::to_string).collect();
    assert!(
        rendered.is_empty(),
        "workspace invariant violations:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn rule_flag_accepts_comma_separated_lists() {
    // P1 restricted in: findings. P1 excluded (D2 only): clean exit.
    let out = Command::new(env!("CARGO_BIN_EXE_waso-audit"))
        .args(["--rule", "D2,P1"])
        .arg(fixture_path("p1_bad.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("P1"));

    let out = Command::new(env!("CARGO_BIN_EXE_waso-audit"))
        .args(["--rule", "D2"])
        .arg(fixture_path("p1_bad.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "P1 findings were not requested");

    let out = Command::new(env!("CARGO_BIN_EXE_waso-audit"))
        .args(["--rule", "D2,bogus"])
        .arg(fixture_path("p1_bad.rs"))
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown rule id is a usage error"
    );
}

/// `--format json` output — from an in-process report *and* from the
/// binary run against the real workspace — validates against the
/// committed `audit-report.schema.json`, and round-trips through the
/// parser.
#[test]
fn json_report_validates_against_the_committed_schema() {
    let schema_text = std::fs::read_to_string(workspace_root().join("audit-report.schema.json"))
        .expect("committed schema");
    let schema = Json::parse(&schema_text).expect("schema parses");

    // A report with findings (chains included), via the library.
    let src = std::fs::read_to_string(fixture_path("p2_bad.rs")).unwrap();
    let report = waso_audit::AuditReport {
        diagnostics: audit_source("p2_bad.rs", &src, &[RuleId::P2]),
        files_audited: 1,
    };
    assert!(!report.diagnostics.is_empty());
    let doc = report_to_json(&report);
    validate(&schema, &doc).expect("fixture report matches the schema");
    assert_eq!(Json::parse(&doc.render()).unwrap(), doc, "round-trips");

    // The real workspace, via the binary.
    let out = Command::new(env!("CARGO_BIN_EXE_waso-audit"))
        .args(["--workspace", "--format", "json", "--root"])
        .arg(workspace_root())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("binary emits JSON");
    validate(&schema, &doc).expect("workspace report matches the schema");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("waso-audit-report/v1")
    );
}

/// The ratchet's exit-code contract: within baseline 0, regression 1,
/// unreadable baseline 2.
#[test]
fn baseline_ratchet_exit_codes() {
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("ratchet");
    std::fs::create_dir_all(&tmp).unwrap();
    let baseline = tmp.join("baseline.json");

    // Distill the bad fixture's findings into a baseline.
    let out = Command::new(env!("CARGO_BIN_EXE_waso-audit"))
        .arg("--write-baseline")
        .arg(&baseline)
        .arg(fixture_path("d1_bad.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "--write-baseline exits 0");

    // Same findings again: grandfathered, exit 0 despite violations.
    let out = Command::new(env!("CARGO_BIN_EXE_waso-audit"))
        .arg("--baseline")
        .arg(&baseline)
        .arg(fixture_path("d1_bad.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "within the baseline");

    // A file the baseline has never seen: regression, exit 1.
    let out = Command::new(env!("CARGO_BIN_EXE_waso-audit"))
        .arg("--baseline")
        .arg(&baseline)
        .arg(fixture_path("d1_bad.rs"))
        .arg(fixture_path("p1_bad.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "regressions fail the ratchet");
    assert!(String::from_utf8_lossy(&out.stderr).contains("ratchet regression"));

    // Fixing findings is an improvement, not a failure.
    let out = Command::new(env!("CARGO_BIN_EXE_waso-audit"))
        .arg("--baseline")
        .arg(&baseline)
        .arg(fixture_path("d1_clean.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "improvements pass");
    assert!(String::from_utf8_lossy(&out.stderr).contains("ratchet improvement"));

    // A baseline that is not a baseline: exit 2.
    let bad = tmp.join("bad.json");
    std::fs::write(&bad, "{\"schema\":\"nope\"}").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_waso-audit"))
        .arg("--baseline")
        .arg(&bad)
        .arg(fixture_path("d1_bad.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "bad baseline is an I/O error");
}

/// The committed `audit-baseline.json` is the empty ratchet: the
/// workspace is clean, and must stay clean.
#[test]
fn committed_baseline_is_empty_and_loads() {
    let text = std::fs::read_to_string(workspace_root().join("audit-baseline.json"))
        .expect("committed baseline");
    let base = waso_audit::Baseline::from_json(&Json::parse(&text).unwrap())
        .expect("baseline schema holds");
    assert!(
        base.entries.is_empty(),
        "the workspace ratchet is zero findings; tighten, never loosen: {:?}",
        base.entries
    );
}

/// A deliberately small JSON Schema checker covering exactly the
/// features `audit-report.schema.json` uses: type, const, enum,
/// required, properties, additionalProperties:false, items, minimum,
/// minItems. Validating with anything richer would mean a dependency.
fn validate(schema: &Json, value: &Json) -> Result<(), String> {
    if let Some(c) = schema.get("const") {
        if c != value {
            return Err(format!("const mismatch: wanted {c:?}, got {value:?}"));
        }
    }
    if let Some(options) = schema.get("enum").and_then(Json::as_arr) {
        if !options.iter().any(|o| o == value) {
            return Err(format!("{value:?} not in enum {options:?}"));
        }
    }
    if let Some(t) = schema.get("type").and_then(Json::as_str) {
        let ok = match t {
            "object" => matches!(value, Json::Obj(_)),
            "array" => matches!(value, Json::Arr(_)),
            "string" => matches!(value, Json::Str(_)),
            "integer" => value.as_u64().is_some(),
            other => return Err(format!("unsupported schema type {other:?}")),
        };
        if !ok {
            return Err(format!("{value:?} is not of type {t}"));
        }
    }
    if let Some(min) = schema.get("minimum").and_then(Json::as_u64) {
        if value.as_u64().is_some_and(|v| v < min) {
            return Err(format!("{value:?} below minimum {min}"));
        }
    }
    if let Json::Obj(fields) = value {
        if let Some(required) = schema.get("required").and_then(Json::as_arr) {
            for key in required {
                let key = key.as_str().ok_or("required entries are strings")?;
                if value.get(key).is_none() {
                    return Err(format!("missing required field {key:?}"));
                }
            }
        }
        let props = schema.get("properties");
        for (key, field_value) in fields {
            match props.and_then(|p| p.get(key)) {
                Some(sub) => {
                    validate(sub, field_value).map_err(|e| format!("in field {key:?}: {e}"))?
                }
                None => {
                    if schema.get("additionalProperties") == Some(&Json::Bool(false)) {
                        return Err(format!("unexpected field {key:?}"));
                    }
                }
            }
        }
    }
    if let Json::Arr(items) = value {
        if let Some(min) = schema.get("minItems").and_then(Json::as_u64) {
            if (items.len() as u64) < min {
                return Err(format!("array shorter than minItems {min}"));
            }
        }
        if let Some(sub) = schema.get("items") {
            for (i, item) in items.iter().enumerate() {
                validate(sub, item).map_err(|e| format!("at index {i}: {e}"))?;
            }
        }
    }
    Ok(())
}

//! Integration tests: each rule against a known-bad and known-clean
//! fixture (exact rule ids and line numbers), the suppression grammar's
//! accept and reject paths, the binary's exit-code contract, and the
//! meta-test that the auditor runs clean on the workspace it ships in.

use std::path::{Path, PathBuf};
use std::process::Command;

use waso_audit::{audit_source, audit_workspace, RuleId};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Audits a fixture and reduces each diagnostic to `(line, rule)` — the
/// shape every expectation below asserts exactly.
fn audit_fixture(name: &str, rules: &[RuleId]) -> Vec<(u32, RuleId)> {
    let path = fixture_path(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    audit_source(name, &src, rules)
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect()
}

#[test]
fn d1_bad_fixture_flags_every_hash_container() {
    assert_eq!(
        audit_fixture("d1_bad.rs", &[RuleId::D1]),
        vec![
            (1, RuleId::D1), // HashMap in the use list
            (1, RuleId::D1), // HashSet in the use list
            (4, RuleId::D1), // HashMap type annotation
            (4, RuleId::D1), // HashMap::new()
            (5, RuleId::D1), // HashSet::new()
        ]
    );
}

#[test]
fn d1_clean_fixture_passes() {
    assert_eq!(audit_fixture("d1_clean.rs", &[RuleId::D1]), vec![]);
}

#[test]
fn d2_bad_fixture_flags_clocks_and_entropy() {
    assert_eq!(
        audit_fixture("d2_bad.rs", &[RuleId::D2]),
        vec![
            (1, RuleId::D2),  // SystemTime in the use list
            (4, RuleId::D2),  // Instant::now()
            (5, RuleId::D2),  // SystemTime::now()
            (10, RuleId::D2), // thread_rng()
        ]
    );
}

#[test]
fn d2_does_not_flag_bare_instant() {
    // `Instant` alone (line 1 of the fixture, and the `t0.elapsed()`
    // call) is fine — only the `Instant::now` path is a clock source.
    let diags = audit_fixture("d2_bad.rs", &[RuleId::D2]);
    assert_eq!(diags.iter().filter(|(line, _)| *line == 6).count(), 0);
}

#[test]
fn d2_clean_fixture_passes() {
    assert_eq!(audit_fixture("d2_clean.rs", &[RuleId::D2]), vec![]);
}

#[test]
fn p1_bad_fixture_flags_each_panic_class() {
    assert_eq!(
        audit_fixture("p1_bad.rs", &[RuleId::P1]),
        vec![
            (2, RuleId::P1),  // .unwrap()
            (6, RuleId::P1),  // .expect(…)
            (10, RuleId::P1), // panic!
            (14, RuleId::P1), // todo!
        ]
    );
}

#[test]
fn p1_clean_fixture_passes_including_test_module() {
    // The clean fixture deliberately unwraps and panics inside a
    // `#[cfg(test)]` module — the skip mask must cover it.
    assert_eq!(audit_fixture("p1_clean.rs", &[RuleId::P1]), vec![]);
}

#[test]
fn l1_bad_fixture_flags_the_inverted_acquisition() {
    // `drain` takes plan → slots[_]; `heal` takes slots[_] → plan. The
    // diagnostic lands on heal's second acquisition.
    assert_eq!(
        audit_fixture("l1_bad.rs", &[RuleId::L1]),
        vec![(11, RuleId::L1)]
    );
}

#[test]
fn l1_clean_fixture_passes_and_io_read_is_not_a_lock() {
    assert_eq!(audit_fixture("l1_clean.rs", &[RuleId::L1]), vec![]);
}

#[test]
fn justified_suppressions_silence_their_rules() {
    assert_eq!(
        audit_fixture("suppress.rs", &[RuleId::D1, RuleId::D2]),
        vec![]
    );
}

#[test]
fn suppression_hygiene_is_itself_audited() {
    assert_eq!(
        audit_fixture("sup_bad.rs", &[RuleId::D1, RuleId::P1]),
        vec![
            (1, RuleId::Sup), // reasonless
            (4, RuleId::Sup), // unknown rule id
            (7, RuleId::Sup), // suppresses nothing
        ]
    );
}

#[test]
fn binary_exits_nonzero_on_bad_fixture_and_names_the_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_waso-audit"))
        .arg(fixture_path("d1_bad.rs"))
        .output()
        .unwrap_or_else(|e| panic!("running waso-audit: {e}"));
    assert_eq!(out.status.code(), Some(1), "bad fixture must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("D1"), "diagnostics name the rule: {stdout}");
    assert!(
        stdout.contains("d1_bad.rs:1"),
        "diagnostics carry file:line: {stdout}"
    );
}

#[test]
fn binary_exits_zero_on_clean_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_waso-audit"))
        .arg(fixture_path("d1_clean.rs"))
        .output()
        .unwrap_or_else(|e| panic!("running waso-audit: {e}"));
    assert_eq!(out.status.code(), Some(0), "clean fixture must exit 0");
}

/// The auditor's reason to exist: the workspace it ships in holds its
/// own invariants. Any reintroduced HashMap in a solver crate or
/// unwrap in a serving path fails this test before it reaches CI.
#[test]
fn workspace_is_audit_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| panic!("crates/audit has a workspace two levels up"));
    let report =
        audit_workspace(&root).unwrap_or_else(|e| panic!("auditing {}: {e}", root.display()));
    assert!(
        report.files_audited > 20,
        "scope collapsed — only {} files audited",
        report.files_audited
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(ToString::to_string).collect();
    assert!(
        rendered.is_empty(),
        "workspace invariant violations:\n{}",
        rendered.join("\n")
    );
}

use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    let mut seen = HashSet::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
        seen.insert(x);
    }
    counts.into_iter().collect()
}

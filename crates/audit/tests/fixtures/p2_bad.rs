//! P2 known-bad: panic-capable sites on the dispatch path.

pub fn dispatch(jobs: &[u64], job: usize) -> u64 {
    let id = jobs[job];
    decode(id)
}

fn decode(id: u64) -> u64 {
    let digits: Option<u64> = Some(id);
    digits.unwrap()
}

// audit:allow-file(D2): fixture demonstrating a justified file-wide opt-out
use std::time::SystemTime;

pub fn wall() -> SystemTime {
    // audit:allow(D1): membership-only table, never iterated
    let set: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let _ = set;
    SystemTime::now()
}

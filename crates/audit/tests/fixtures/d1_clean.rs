use std::collections::{BTreeMap, BTreeSet};

pub fn tally(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    let mut seen = BTreeSet::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
        seen.insert(x);
    }
    counts.into_iter().collect()
}

pub struct Pool;

impl Pool {
    fn drain(&self) {
        let _plan = self.plan.lock();
        let _slot = self.slots[0].lock();
    }

    fn heal(&self) {
        let _slot = self.slots[1].lock();
        let _plan = self.plan.lock();
    }
}

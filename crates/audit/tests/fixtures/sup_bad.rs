// audit:allow(D1)
fn reasonless() {}

// audit:allow(Z9): no such rule exists
fn unknown_rule() {}

// audit:allow(P1): nothing on this or the next line can panic
fn unused() {}

pub fn first(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}

pub fn must(x: Option<u32>) -> u32 {
    x.unwrap_or_else(|| 7)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_on_purpose() {
        let x: Option<u32> = None;
        let _ = x.unwrap();
        panic!("asserting a panic is fine in tests");
    }
}

//! L2 known-bad: opposite lock orders plus a send under a live guard.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
    tx: Sender<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn backward(&self) -> u64 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga - *gb
    }

    pub fn publish(&self) {
        let ga = self.a.lock().unwrap();
        let _ = self.tx.send(*ga);
    }
}

//! P2 chain fixture, helper half: two hops below the dispatch root.

pub fn prepare(job: u64) -> u64 {
    decode(job)
}

pub fn decode(job: u64) -> u64 {
    let v: Option<u64> = Some(job);
    v.unwrap()
}

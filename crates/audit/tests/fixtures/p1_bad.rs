pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn must(x: Option<u32>) -> u32 {
    x.expect("present")
}

pub fn boom() {
    panic!("no");
}

pub fn later() -> u32 {
    todo!()
}

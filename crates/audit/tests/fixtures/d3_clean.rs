//! D3 known-clean: every stream derives from the solve seed, directly
//! or through the seed-deriving fixpoint.

fn mix_seed(root: u64, stage: u64) -> u64 {
    root.rotate_left(17) ^ stage
}

fn stage_entropy(root: u64, stage: u64) -> u64 {
    mix_seed(root, stage)
}

pub fn sampler_for(root: u64, stage: u64) -> u64 {
    let a = seed_from_u64(mix_seed(root, stage));
    let b = seed_from_u64(stage_entropy(root, stage));
    a ^ b
}

fn seed_from_u64(x: u64) -> u64 {
    x
}

//! P2 chain fixture, root half: the serve dispatch fn. The panic sits
//! two calls away in `p2_helpers.rs`, which is *not* P2-rooted — only
//! reachability from here makes it a finding.

pub fn dispatch(job: u64) -> u64 {
    prepare(job)
}

pub struct Pool;

impl Pool {
    fn drain(&self) {
        let _plan = self.plan.lock();
        let _slot = self.slots[0].lock();
    }

    fn heal(&self) {
        let _plan = self.plan.lock();
        let _slot = self.slots[7].lock();
    }

    fn copy_from(&self, src: &mut impl std::io::Read) {
        let mut buf = [0u8; 16];
        let _ = src.read(&mut buf);
    }
}

pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

pub fn deadline_left(deadline_nanos: u64, elapsed_nanos: u64) -> u64 {
    deadline_nanos.saturating_sub(elapsed_nanos)
}

//! D3 known-bad: an unseeded stream and an ambient-state read.

pub fn sampler_for(stage: u64) -> u64 {
    seed_from_u64(stage ^ 0x9e3779b97f4a7c15)
}

pub fn threads() -> u64 {
    match std::env::var("WASO_THREADS") {
        Ok(v) => v.len() as u64,
        Err(_) => 1,
    }
}

fn seed_from_u64(x: u64) -> u64 {
    x
}

//! P2 known-clean: typed errors, a catch_unwind shield, test-only
//! unwraps under the skip mask.

pub fn dispatch(jobs: &[u64], job: usize) -> Result<u64, String> {
    match jobs.get(job) {
        Some(&id) => decode(id),
        None => Err("no such job".to_string()),
    }
}

fn decode(id: u64) -> Result<u64, String> {
    Ok(id.wrapping_mul(3))
}

pub fn shielded(job: u64) -> u64 {
    let out = std::panic::catch_unwind(|| decode(job).unwrap());
    out.map_or(0, |r| r.unwrap_or(0))
}

#[cfg(test)]
mod tests {
    #[test]
    fn decodes() {
        assert_eq!(super::decode(3).unwrap(), 9);
    }
}

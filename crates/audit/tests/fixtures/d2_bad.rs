use std::time::{Instant, SystemTime};

pub fn elapsed_nanos() -> u128 {
    let t0 = Instant::now();
    let _wall = SystemTime::now();
    t0.elapsed().as_nanos()
}

pub fn ambient_seed() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

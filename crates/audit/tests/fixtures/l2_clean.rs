//! L2 known-clean: one global acquisition order, and the guard is
//! dropped before the send.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
    tx: Sender<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn also_forward(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga * *gb
    }

    pub fn publish(&self) {
        let ga = self.a.lock().unwrap();
        let value = *ga;
        drop(ga);
        let _ = self.tx.send(value);
    }
}

//! The audited invariants: rule definitions, the suppression grammar,
//! and the per-file audit pass.
//!
//! | Rule | Contract |
//! |------|----------|
//! | `D1` | No unordered `HashMap`/`HashSet` in determinism-scoped crates — iteration order leaks into accumulation order and breaks bit-identity. |
//! | `D2` | No entropy/clock sources (`thread_rng`, `from_entropy`, `SystemTime`, `Instant::now`) — randomness flows from seeded `mix_seed` streams, time from the `StopState` deadline plumbing. |
//! | `P1` | No `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`/`unreachable!` in serving paths — every fallible path answers with a typed protocol error. |
//! | `L1` | Lock-acquisition order must be consistent across functions — two functions taking the same pair of locks in opposite order is a deadlock in waiting. |
//! | `SUP` | The suppression grammar itself: every `audit:allow` must name known rules, carry a written reason, and actually suppress something. |
//!
//! Suppressions: `// audit:allow(D1): reason` covers its own line and
//! the next; `// audit:allow-file(D2): reason` covers the whole file.
//! `#[cfg(test)]` items and `#[test]` functions are skipped wholesale —
//! the contracts bind shipping code, and tests assert panics on purpose.

use std::fmt;

use crate::lexer::{lex, Lexed, Tok};

/// A rule's identity, as printed in diagnostics and named in
/// suppressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Determinism: no unordered hash containers.
    D1,
    /// Determinism: no ambient entropy or clock sources.
    D2,
    /// No-panic: no panic-class calls in serving paths.
    P1,
    /// Lock discipline: consistent acquisition order.
    L1,
    /// Suppression hygiene (always on; not user-selectable as a scope).
    Sup,
}

impl RuleId {
    /// Every scope-assignable rule (excludes `SUP`, which always runs).
    pub const CHECKABLE: [RuleId; 4] = [RuleId::D1, RuleId::D2, RuleId::P1, RuleId::L1];

    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::P1 => "P1",
            RuleId::L1 => "L1",
            RuleId::Sup => "SUP",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "D1" => Some(RuleId::D1),
            "D2" => Some(RuleId::D2),
            "P1" => Some(RuleId::P1),
            "L1" => Some(RuleId::L1),
            "SUP" => Some(RuleId::Sup),
            _ => None,
        }
    }

    /// One-line description for `--list-rules` and the README table.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "no unordered HashMap/HashSet in determinism-scoped crates \
                 (use BTreeMap/BTreeSet or a sorted Vec)"
            }
            RuleId::D2 => {
                "no entropy/clock sources (thread_rng, from_entropy, SystemTime, \
                 Instant::now) — seed randomness via mix_seed, time via StopState"
            }
            RuleId::P1 => {
                "no unwrap/expect/panic!/todo! in serving paths — \
                 return typed protocol errors"
            }
            RuleId::L1 => "lock-acquisition order must be consistent across functions",
            RuleId::Sup => "suppressions must name known rules, give a reason, and be used",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One violation (or suppression-hygiene problem) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub rule: RuleId,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `audit:allow` comment.
#[derive(Debug)]
struct Suppression {
    line: u32,
    rules: Vec<RuleId>,
    file_wide: bool,
    used: bool,
}

/// Audits one file's source under the given rules (plus `SUP`, always).
/// `file` is the label diagnostics carry; the caller decides scoping.
pub fn audit_source(file: &str, src: &str, rules: &[RuleId]) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let skip = test_skip_mask(&lexed);
    let (mut sups, mut diags) = parse_suppressions(file, &lexed);

    let mut raw: Vec<Diagnostic> = Vec::new();
    for &rule in rules {
        match rule {
            RuleId::D1 => d1_hash_containers(file, &lexed, &skip, &mut raw),
            RuleId::D2 => d2_entropy_clocks(file, &lexed, &skip, &mut raw),
            RuleId::P1 => p1_panic_paths(file, &lexed, &skip, &mut raw),
            RuleId::L1 => l1_lock_order(file, &lexed, &skip, &mut raw),
            RuleId::Sup => {}
        }
    }

    // Apply suppressions: a line suppression covers its own line and the
    // next, a file suppression the whole file.
    for d in raw {
        let mut suppressed = false;
        for sup in sups.iter_mut() {
            let covers = sup.file_wide || sup.line == d.line || sup.line + 1 == d.line;
            if covers && sup.rules.contains(&d.rule) {
                sup.used = true;
                suppressed = true;
                // Keep scanning: overlapping suppressions all count as
                // used rather than racing for the first match.
            }
        }
        if !suppressed {
            diags.push(d);
        }
    }

    // Hygiene: a suppression that suppressed nothing is stale — unless
    // it names rules we were not asked to run, in which case we cannot
    // tell and stay quiet.
    for sup in &sups {
        if !sup.used && sup.rules.iter().all(|r| rules.contains(r)) {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: sup.line,
                rule: RuleId::Sup,
                message: format!(
                    "unused suppression for {} — nothing on this or the next line trips it; remove it",
                    sup.rules
                        .iter()
                        .map(|r| r.as_str())
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            });
        }
    }

    diags.sort_by_key(|d| (d.line, d.rule));
    diags
}

/// Parses every `audit:allow` comment; malformed ones become `SUP`
/// diagnostics immediately.
fn parse_suppressions(file: &str, lexed: &Lexed) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut diags = Vec::new();
    let sup_diag = |line: u32, message: String| Diagnostic {
        file: file.to_string(),
        line,
        rule: RuleId::Sup,
        message,
    };
    for &(line, ref text) in &lexed.comments {
        let Some(pos) = text.find("audit:allow") else {
            continue;
        };
        let rest = &text[pos + "audit:allow".len()..];
        let (file_wide, rest) = match rest.strip_prefix("-file") {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let Some(rest) = rest.strip_prefix('(') else {
            diags.push(sup_diag(
                line,
                "malformed suppression: expected `audit:allow(RULE, …): reason`".to_string(),
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            diags.push(sup_diag(
                line,
                "malformed suppression: missing `)` after the rule list".to_string(),
            ));
            continue;
        };
        let mut rules = Vec::new();
        let mut bad = false;
        for name in rest[..close].split(',') {
            let name = name.trim();
            match RuleId::parse(name) {
                Some(RuleId::Sup) | None => {
                    diags.push(sup_diag(
                        line,
                        format!("unknown rule `{name}` in suppression"),
                    ));
                    bad = true;
                }
                Some(r) => rules.push(r),
            }
        }
        if bad {
            continue;
        }
        let after = &rest[close + 1..];
        let reason = after.strip_prefix(':').map(str::trim);
        match reason {
            Some(r) if !r.is_empty() => sups.push(Suppression {
                line,
                rules,
                file_wide,
                used: false,
            }),
            _ => diags.push(sup_diag(
                line,
                "suppression without a written reason: every `audit:allow` must \
                 justify itself as `audit:allow(RULE): reason`"
                    .to_string(),
            )),
        }
    }
    (sups, diags)
}

/// Marks every token inside a `#[test]` or `#[cfg(test)]`-gated item.
/// Heuristic: an attribute whose token list contains the identifier
/// `test` but not `not` gates the following item (`#[cfg(not(test))]`
/// stays audited). The item extends to its closing `}` or `;`.
fn test_skip_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut skip = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if lexed.punct(i) != Some(b'#') || lexed.punct(i + 1) != Some(b'[') {
            i += 1;
            continue;
        }
        // Find the attribute's closing `]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut close = None;
        while j < toks.len() {
            match lexed.punct(j) {
                Some(b'[') => depth += 1,
                Some(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let Some(close) = close else { break };
        let attr = &toks[i + 2..close];
        let has = |name: &str| {
            attr.iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if s == name))
        };
        if !has("test") || has("not") {
            i = close + 1;
            continue;
        }
        // Skip from the attribute through the gated item: forward to the
        // first `{` (then its match) or `;`, whichever comes first.
        let mut k = close + 1;
        let mut end = toks.len();
        while k < toks.len() {
            match lexed.punct(k) {
                Some(b';') => {
                    end = k + 1;
                    break;
                }
                Some(b'{') => {
                    let mut braces = 0usize;
                    while k < toks.len() {
                        match lexed.punct(k) {
                            Some(b'{') => braces += 1,
                            Some(b'}') => {
                                braces -= 1;
                                if braces == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    end = (k + 1).min(toks.len());
                    break;
                }
                _ => k += 1,
            }
        }
        for s in skip.iter_mut().take(end).skip(i) {
            *s = true;
        }
        i = end;
    }
    skip
}

fn push(raw: &mut Vec<Diagnostic>, file: &str, line: u32, rule: RuleId, message: String) {
    raw.push(Diagnostic {
        file: file.to_string(),
        line,
        rule,
        message,
    });
}

/// D1: any `HashMap`/`HashSet` identifier in code position. Conservative
/// on purpose — a lookup-only map is flagged too, because the next edit
/// that iterates it will not be; provably lookup-only uses opt out with
/// a justified suppression, everything else moves to ordered containers.
fn d1_hash_containers(file: &str, lexed: &Lexed, skip: &[bool], raw: &mut Vec<Diagnostic>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if skip[i] {
            continue;
        }
        if let Tok::Ident(s) = &t.tok {
            if s == "HashMap" || s == "HashSet" {
                push(
                    raw,
                    file,
                    t.line,
                    RuleId::D1,
                    format!(
                        "`{s}` iterates in instance-randomized order, which breaks the \
                         bit-identity contract; use BTree{}/a sorted Vec, or justify with \
                         `audit:allow(D1)`",
                        &s[4..]
                    ),
                );
            }
        }
    }
}

/// D2: ambient entropy/clock sources. `Instant::now` matches as the
/// token triple; the other names are single identifiers.
fn d2_entropy_clocks(file: &str, lexed: &Lexed, skip: &[bool], raw: &mut Vec<Diagnostic>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if skip[i] {
            continue;
        }
        let Tok::Ident(s) = &t.tok else { continue };
        let name: &str = match s.as_str() {
            "thread_rng" | "from_entropy" | "SystemTime" => s,
            "Instant"
                if lexed.punct(i + 1) == Some(b':')
                    && lexed.punct(i + 2) == Some(b':')
                    && lexed.ident(i + 3) == Some("now") =>
            {
                "Instant::now"
            }
            _ => continue,
        };
        push(
            raw,
            file,
            t.line,
            RuleId::D2,
            format!(
                "`{name}` is an ambient entropy/clock source; randomness must flow from \
                 seeded mix_seed streams and time from the StopState deadline plumbing"
            ),
        );
    }
}

/// P1: panic-class calls — `.unwrap()`, `.expect(…)`, and the
/// `panic!`-family macros.
fn p1_panic_paths(file: &str, lexed: &Lexed, skip: &[bool], raw: &mut Vec<Diagnostic>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if skip[i] {
            continue;
        }
        let Tok::Ident(s) = &t.tok else { continue };
        let method = (s == "unwrap" || s == "expect")
            && i > 0
            && lexed.punct(i - 1) == Some(b'.')
            && lexed.punct(i + 1) == Some(b'(');
        let mac = matches!(
            s.as_str(),
            "panic" | "todo" | "unimplemented" | "unreachable"
        ) && lexed.punct(i + 1) == Some(b'!');
        if method {
            push(
                raw,
                file,
                t.line,
                RuleId::P1,
                format!(
                    "`.{s}()` can panic the serving path; handle the None/Err and answer \
                     a typed protocol error instead"
                ),
            );
        } else if mac {
            push(
                raw,
                file,
                t.line,
                RuleId::P1,
                format!(
                    "`{s}!` aborts the serving path; every fallible path must return a \
                     typed protocol error"
                ),
            );
        }
    }
}

/// L1: extracts each function's sequence of lock acquisitions — a
/// `path.lock()`, `path.read()`, or `path.write()` with an *empty*
/// argument list (which is what distinguishes sync primitives from
/// `io::Read::read(&mut buf)`) — and flags any pair of locks two
/// functions acquire in opposite orders.
fn l1_lock_order(file: &str, lexed: &Lexed, skip: &[bool], raw: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    // (function name, [(lock path, line of first acquisition)]).
    let mut functions: Vec<(String, Vec<(String, u32)>)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if skip[i] || lexed.ident(i) != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name) = lexed.ident(i + 1) else {
            i += 1;
            continue;
        };
        let name = name.to_string();
        // The body: first `{` after the signature (a `;` first means a
        // trait method declaration — no body).
        let mut j = i + 2;
        let mut body_start = None;
        while j < toks.len() {
            match lexed.punct(j) {
                Some(b'{') => {
                    body_start = Some(j);
                    break;
                }
                Some(b';') => break,
                _ => {}
            }
            j += 1;
        }
        let Some(start) = body_start else {
            i = j + 1;
            continue;
        };
        let mut depth = 0usize;
        let mut k = start;
        while k < toks.len() {
            match lexed.punct(k) {
                Some(b'{') => depth += 1,
                Some(b'}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let mut acquisitions: Vec<(String, u32)> = Vec::new();
        for (idx, tok) in toks.iter().enumerate().take(k.min(toks.len())).skip(start) {
            let Some(kind) = lexed.ident(idx) else {
                continue;
            };
            if !matches!(kind, "lock" | "read" | "write") {
                continue;
            }
            if lexed.punct(idx.wrapping_sub(1)) != Some(b'.')
                || lexed.punct(idx + 1) != Some(b'(')
                || lexed.punct(idx + 2) != Some(b')')
            {
                continue;
            }
            let path = lock_path(lexed, idx - 1);
            if path.is_empty() {
                continue;
            }
            if !acquisitions.iter().any(|(p, _)| *p == path) {
                acquisitions.push((path, tok.line));
            }
        }
        functions.push((name, acquisitions));
        i = k + 1;
    }

    // Pairwise order consistency across all functions of the file.
    // first_seen[(a, b)] = (fn, line) where a was acquired before b.
    let mut first_seen: std::collections::BTreeMap<(String, String), (String, u32)> =
        std::collections::BTreeMap::new();
    for (fn_name, acqs) in &functions {
        for (ai, (a, _)) in acqs.iter().enumerate() {
            for (b, b_line) in &acqs[ai + 1..] {
                if let Some((other_fn, other_line)) = first_seen.get(&(b.clone(), a.clone())) {
                    push(
                        raw,
                        file,
                        *b_line,
                        RuleId::L1,
                        format!(
                            "lock order conflict: `{fn_name}` acquires `{a}` then `{b}`, \
                             but `{other_fn}` (line {other_line}) acquires `{b}` then `{a}`"
                        ),
                    );
                } else {
                    first_seen
                        .entry((a.clone(), b.clone()))
                        .or_insert_with(|| (fn_name.clone(), *b_line));
                }
            }
        }
    }
}

/// Reconstructs the receiver path of a lock call, walking backwards from
/// the `.` before `lock`/`read`/`write`. Index expressions normalize to
/// `[_]` so `self.slots[i]` and `self.slots[j]` are the same lock family.
fn lock_path(lexed: &Lexed, dot: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot; // at the `.`
    loop {
        if j == 0 {
            break;
        }
        j -= 1;
        match &lexed.tokens[j].tok {
            Tok::Ident(s) => {
                parts.push(s.clone());
                // A `::`, `.` or `[` may continue the path to the left.
                if j >= 2 && lexed.punct(j - 1) == Some(b':') && lexed.punct(j - 2) == Some(b':') {
                    parts.push("::".to_string());
                    j -= 2;
                } else if j >= 1 && lexed.punct(j - 1) == Some(b'.') {
                    parts.push(".".to_string());
                    j -= 1;
                } else {
                    break;
                }
            }
            Tok::Punct(b']') => {
                // Walk back over the index expression to its `[`.
                let mut depth = 0usize;
                loop {
                    match lexed.punct(j) {
                        Some(b']') => depth += 1,
                        Some(b'[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
                parts.push("[_]".to_string());
                if j == 0 {
                    break;
                }
                // The `[` must follow the indexed expression directly.
                match lexed.tokens[j - 1].tok {
                    Tok::Ident(_) | Tok::Punct(b']') => {}
                    _ => break,
                }
            }
            _ => break,
        }
    }
    parts.reverse();
    parts.concat()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, rules: &[RuleId]) -> Vec<Diagnostic> {
        audit_source("test.rs", src, rules)
    }

    #[test]
    fn d1_flags_hash_containers_and_honours_suppressions() {
        let src = "use std::collections::HashMap;\n\
                   // audit:allow(D1): membership-only, never iterated\n\
                   fn f(m: HashMap<u32, u32>) {}\n";
        let diags = run(src, &[RuleId::D1]);
        assert_eq!(diags.len(), 1);
        assert_eq!((diags[0].line, diags[0].rule), (1, RuleId::D1));
    }

    #[test]
    fn p1_ignores_non_panicking_cousins() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }\n\
                   fn g(x: Option<u32>) -> u32 { x.unwrap_or(1) }\n";
        assert!(run(src, &[RuleId::P1]).is_empty());
    }

    #[test]
    fn cfg_test_items_are_skipped_but_not_cfg_not_test() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n}\n\
                   #[cfg(not(test))]\nfn g() { y.unwrap(); }\n";
        let diags = run(src, &[RuleId::P1]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn unused_and_unreasoned_suppressions_are_flagged() {
        let src = "// audit:allow(D1): nothing here trips D1\nfn f() {}\n\
                   // audit:allow(P1)\nfn g() { x.unwrap(); }\n";
        let diags = run(src, &[RuleId::D1, RuleId::P1]);
        let rules: Vec<_> = diags.iter().map(|d| (d.line, d.rule)).collect();
        // Line 1: unused D1 suppression. Line 3: reasonless suppression
        // (which therefore does not suppress line 4's unwrap).
        assert_eq!(
            rules,
            vec![(1, RuleId::Sup), (3, RuleId::Sup), (4, RuleId::P1)]
        );
    }

    #[test]
    fn l1_flags_opposite_orders_only() {
        let consistent = "fn a(&self) { let _x = self.m1.lock(); let _y = self.m2.lock(); }\n\
                          fn b(&self) { let _x = self.m1.lock(); let _y = self.m2.lock(); }\n";
        assert!(run(consistent, &[RuleId::L1]).is_empty());
        let conflicting = "fn a(&self) { let _x = self.m1.lock(); let _y = self.m2.lock(); }\n\
                           fn b(&self) { let _y = self.m2.lock(); let _x = self.m1.lock(); }\n";
        let diags = run(conflicting, &[RuleId::L1]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::L1);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn l1_normalizes_indexed_locks_and_skips_io_read() {
        let src = "fn a(&self) { let _g = self.slots[i].lock(); }\n\
                   fn b(&self, f: &mut File) { f.read(&mut buf); }\n";
        // Neither trips anything: one lock family, and `read` with
        // arguments is io::Read, not RwLock.
        assert!(run(src, &[RuleId::L1]).is_empty());
    }

    #[test]
    fn file_wide_suppression_covers_everything() {
        let src = "// audit:allow-file(D1): generator crate, all sets sorted before use\n\
                   use std::collections::HashSet;\nfn f(s: HashSet<u32>) {}\n";
        assert!(run(src, &[RuleId::D1]).is_empty());
    }
}

//! The audited invariants: rule definitions, the suppression grammar,
//! and the per-file audit pass.
//!
//! | Rule | Contract |
//! |------|----------|
//! | `D1` | No unordered `HashMap`/`HashSet` in determinism-scoped crates — iteration order leaks into accumulation order and breaks bit-identity. |
//! | `D2` | No entropy/clock sources (`thread_rng`, `from_entropy`, `SystemTime`, `Instant::now`) — randomness flows from seeded `mix_seed` streams, time from the `StopState` deadline plumbing. |
//! | `D3` | Determinism taint (interprocedural): every RNG construction must derive from a `mix_seed`-rooted source, and memo-keyed solve paths must not read ambient state (`env::var`) — solves are memoized as pure functions of (instance, spec, seed). |
//! | `P1` | No `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`/`unreachable!` in serving paths — every fallible path answers with a typed protocol error. |
//! | `P2` | Panic reachability (interprocedural): no function in the serve scope may *transitively* reach a panic-class call — or panic-capable slice indexing in the executor/session scope — through the call graph; `catch_unwind` is a barrier. Diagnostics carry the full call chain. |
//! | `L1` | Lock-acquisition order must be consistent across functions — two functions taking the same pair of locks in opposite order is a deadlock in waiting. |
//! | `L2` | Lock-graph cycles (interprocedural): per-fn held-lock summaries propagate through calls; any cycle in the global acquisition-order graph is flagged, as is a lock held across a channel `.send(…)` (a bounded-channel deadlock risk). |
//! | `SUP` | The suppression grammar itself: every `audit:allow` must name known rules, carry a written reason, and actually suppress something. |
//!
//! Suppressions: `// audit:allow(D1): reason` covers its own line and
//! the next; `// audit:allow-file(D2): reason` covers the whole file.
//! `#[cfg(test)]` items and `#[test]` functions are skipped wholesale —
//! the contracts bind shipping code, and tests assert panics on purpose.
//!
//! `D1`/`D2`/`P1`/`L1` are per-file token passes. `P2`/`L2`/`D3` are
//! interprocedural: they run over a whole *corpus* of files at once
//! (see [`audit_corpus`]), building the item tree and call graph from
//! [`crate::items`]/[`crate::callgraph`] and computing fixpoints over
//! it. Their diagnostics may land in files outside the rule's root
//! scope (a serve-reachable panic in `src/session.rs` is still a `P2`
//! finding *at the panic site*), and suppression there works as usual.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::callgraph::{CallGraph, FileIndex};
use crate::lexer::{lex, Lexed, Tok};

/// A rule's identity, as printed in diagnostics and named in
/// suppressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Determinism: no unordered hash containers.
    D1,
    /// Determinism: no ambient entropy or clock sources.
    D2,
    /// Determinism taint: RNG constructions must be seed-rooted; no
    /// ambient-state reads in memo-keyed solve paths (interprocedural).
    D3,
    /// No-panic: no panic-class calls in serving paths.
    P1,
    /// Panic reachability: no serve-scope fn may transitively reach a
    /// panic-class call or panic-capable indexing (interprocedural).
    P2,
    /// Lock discipline: consistent acquisition order.
    L1,
    /// Lock-graph cycles and lock-held-across-send (interprocedural).
    L2,
    /// Suppression hygiene (always on; not user-selectable as a scope).
    Sup,
}

impl RuleId {
    /// Every scope-assignable rule (excludes `SUP`, which always runs).
    pub const CHECKABLE: [RuleId; 7] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::P1,
        RuleId::P2,
        RuleId::L1,
        RuleId::L2,
    ];

    /// The interprocedural rules: they need the whole corpus, not one
    /// file at a time.
    pub const INTERPROCEDURAL: [RuleId; 3] = [RuleId::P2, RuleId::L2, RuleId::D3];

    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::P1 => "P1",
            RuleId::P2 => "P2",
            RuleId::L1 => "L1",
            RuleId::L2 => "L2",
            RuleId::Sup => "SUP",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "D1" => Some(RuleId::D1),
            "D2" => Some(RuleId::D2),
            "D3" => Some(RuleId::D3),
            "P1" => Some(RuleId::P1),
            "P2" => Some(RuleId::P2),
            "L1" => Some(RuleId::L1),
            "L2" => Some(RuleId::L2),
            "SUP" => Some(RuleId::Sup),
            _ => None,
        }
    }

    /// One-line description for `--list-rules` and the README table.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "no unordered HashMap/HashSet in determinism-scoped crates \
                 (use BTreeMap/BTreeSet or a sorted Vec)"
            }
            RuleId::D2 => {
                "no entropy/clock sources (thread_rng, from_entropy, SystemTime, \
                 Instant::now) — seed randomness via mix_seed, time via StopState"
            }
            RuleId::D3 => {
                "RNG constructions must derive from a mix_seed-rooted source, and \
                 memo-keyed solve paths must not read ambient state (env::var)"
            }
            RuleId::P1 => {
                "no unwrap/expect/panic!/todo! in serving paths — \
                 return typed protocol errors"
            }
            RuleId::P2 => {
                "no serve-scope fn may transitively reach a panic-class call or \
                 panic-capable indexing; diagnostics carry the call chain"
            }
            RuleId::L1 => "lock-acquisition order must be consistent across functions",
            RuleId::L2 => {
                "no cycles in the interprocedural lock-order graph; no lock held \
                 across a channel send (bounded-channel deadlock risk)"
            }
            RuleId::Sup => "suppressions must name known rules, give a reason, and be used",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One violation (or suppression-hygiene problem) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub rule: RuleId,
    pub message: String,
    /// For interprocedural rules: the witness call chain (qualified fn
    /// names, root first). Empty for token-level rules. The rendered
    /// chain is already part of `message`; this field feeds the JSON
    /// report.
    pub chain: Vec<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `audit:allow` comment.
#[derive(Debug)]
struct Suppression {
    line: u32,
    rules: Vec<RuleId>,
    file_wide: bool,
    used: bool,
}

/// Audits one file's source under the given rules (plus `SUP`, always).
/// `file` is the label diagnostics carry; the caller decides scoping.
///
/// Interprocedural rules run against the single-file corpus: the file
/// is its own root scope, which is exactly what fixtures and editor
/// invocations want.
pub fn audit_source(file: &str, src: &str, rules: &[RuleId]) -> Vec<Diagnostic> {
    let files = [(file.to_string(), src.to_string())];
    let rules = rules.to_vec();
    audit_corpus(&files, &|_| rules.clone())
}

/// Audits a corpus of files as one unit. Per-file rules run on each
/// file under `rules_for_file(rel)`; interprocedural rules (P2/L2/D3)
/// see the *whole* corpus as call-graph context and use
/// `rules_for_file` only to decide each rule's root/fact scope.
/// Suppressions and hygiene apply per file at the end, over both kinds
/// of findings.
pub fn audit_corpus(
    files: &[(String, String)],
    rules_for_file: &dyn Fn(&str) -> Vec<RuleId>,
) -> Vec<Diagnostic> {
    // Phase 1: per-file artifacts.
    let mut indexes: Vec<FileIndex> = Vec::with_capacity(files.len());
    let mut active: Vec<Vec<RuleId>> = Vec::with_capacity(files.len());
    for (rel, src) in files {
        let lexed = lex(src);
        let skip = test_skip_mask(&lexed);
        indexes.push(FileIndex::build(rel.clone(), lexed, skip));
        active.push(rules_for_file(rel));
    }

    // Phase 2: token-level passes.
    let mut raw: Vec<Vec<Diagnostic>> = vec![Vec::new(); files.len()];
    for (fi, index) in indexes.iter().enumerate() {
        let (file, lexed, skip) = (index.rel.as_str(), &index.lexed, &index.skip);
        for &rule in &active[fi] {
            match rule {
                RuleId::D1 => d1_hash_containers(file, lexed, skip, &mut raw[fi]),
                RuleId::D2 => d2_entropy_clocks(file, lexed, skip, &mut raw[fi]),
                RuleId::P1 => p1_panic_paths(file, lexed, skip, &mut raw[fi]),
                RuleId::L1 => l1_lock_order(file, lexed, skip, &mut raw[fi]),
                RuleId::D3 | RuleId::P2 | RuleId::L2 | RuleId::Sup => {}
            }
        }
    }

    // Phase 3: interprocedural passes over the whole corpus.
    let global: Vec<RuleId> = RuleId::INTERPROCEDURAL
        .into_iter()
        .filter(|r| active.iter().any(|a| a.contains(r)))
        .collect();
    if !global.is_empty() {
        let graph = CallGraph::build(&indexes);
        let in_scope =
            |fi: usize, rule: RuleId| -> bool { active.get(fi).is_some_and(|a| a.contains(&rule)) };
        if global.contains(&RuleId::P2) {
            p2_panic_reachability(&indexes, &graph, &|fi| in_scope(fi, RuleId::P2), &mut raw);
        }
        if global.contains(&RuleId::L2) {
            l2_lock_graph(&indexes, &graph, &|fi| in_scope(fi, RuleId::L2), &mut raw);
        }
        if global.contains(&RuleId::D3) {
            d3_determinism_taint(&indexes, &graph, &|fi| in_scope(fi, RuleId::D3), &mut raw);
        }
    }

    // Phase 4: suppressions + hygiene, per file.
    let mut diags: Vec<Diagnostic> = Vec::new();
    for (fi, index) in indexes.iter().enumerate() {
        let file = index.rel.as_str();
        let (mut sups, malformed) = parse_suppressions(file, &index.lexed);
        diags.extend(malformed);
        // A line suppression covers its own line and the next, a file
        // suppression the whole file.
        for d in std::mem::take(&mut raw[fi]) {
            let mut suppressed = false;
            for sup in sups.iter_mut() {
                let covers = sup.file_wide || sup.line == d.line || sup.line + 1 == d.line;
                if covers && sup.rules.contains(&d.rule) {
                    sup.used = true;
                    suppressed = true;
                    // Keep scanning: overlapping suppressions all count
                    // as used rather than racing for the first match.
                }
            }
            if !suppressed {
                diags.push(d);
            }
        }
        // Hygiene: a suppression that suppressed nothing is stale —
        // unless it names rules that did not run here, in which case we
        // cannot tell and stay quiet. Interprocedural rules count as
        // "run" for every corpus file once they ran at all.
        let ran: Vec<RuleId> = active[fi]
            .iter()
            .copied()
            .chain(global.iter().copied())
            .collect();
        for sup in &sups {
            if !sup.used && sup.rules.iter().all(|r| ran.contains(r)) {
                diags.push(Diagnostic {
                    file: file.to_string(),
                    line: sup.line,
                    rule: RuleId::Sup,
                    message: format!(
                        "unused suppression for {} — nothing on this or the next line trips it; remove it",
                        sup.rules
                            .iter()
                            .map(|r| r.as_str())
                            .collect::<Vec<_>>()
                            .join(",")
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }

    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diags
}

/// Parses every `audit:allow` comment; malformed ones become `SUP`
/// diagnostics immediately.
fn parse_suppressions(file: &str, lexed: &Lexed) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut diags = Vec::new();
    let sup_diag = |line: u32, message: String| Diagnostic {
        file: file.to_string(),
        line,
        rule: RuleId::Sup,
        message,
        chain: Vec::new(),
    };
    for &(line, ref text) in &lexed.comments {
        let Some(pos) = text.find("audit:allow") else {
            continue;
        };
        let rest = &text[pos + "audit:allow".len()..];
        let (file_wide, rest) = match rest.strip_prefix("-file") {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let Some(rest) = rest.strip_prefix('(') else {
            diags.push(sup_diag(
                line,
                "malformed suppression: expected `audit:allow(RULE, …): reason`".to_string(),
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            diags.push(sup_diag(
                line,
                "malformed suppression: missing `)` after the rule list".to_string(),
            ));
            continue;
        };
        let mut rules = Vec::new();
        let mut bad = false;
        for name in rest[..close].split(',') {
            let name = name.trim();
            match RuleId::parse(name) {
                Some(RuleId::Sup) | None => {
                    diags.push(sup_diag(
                        line,
                        format!("unknown rule `{name}` in suppression"),
                    ));
                    bad = true;
                }
                Some(r) => rules.push(r),
            }
        }
        if bad {
            continue;
        }
        let after = &rest[close + 1..];
        let reason = after.strip_prefix(':').map(str::trim);
        match reason {
            Some(r) if !r.is_empty() => sups.push(Suppression {
                line,
                rules,
                file_wide,
                used: false,
            }),
            _ => diags.push(sup_diag(
                line,
                "suppression without a written reason: every `audit:allow` must \
                 justify itself as `audit:allow(RULE): reason`"
                    .to_string(),
            )),
        }
    }
    (sups, diags)
}

/// Marks every token inside a `#[test]` or `#[cfg(test)]`-gated item.
/// Heuristic: an attribute whose token list contains the identifier
/// `test` but not `not` gates the following item (`#[cfg(not(test))]`
/// stays audited). The item extends to its closing `}` or `;`.
pub(crate) fn test_skip_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut skip = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if lexed.punct(i) != Some(b'#') || lexed.punct(i + 1) != Some(b'[') {
            i += 1;
            continue;
        }
        // Find the attribute's closing `]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut close = None;
        while j < toks.len() {
            match lexed.punct(j) {
                Some(b'[') => depth += 1,
                Some(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let Some(close) = close else { break };
        let attr = &toks[i + 2..close];
        let has = |name: &str| {
            attr.iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if s == name))
        };
        if !has("test") || has("not") {
            i = close + 1;
            continue;
        }
        // Skip from the attribute through the gated item: forward to the
        // first `{` (then its match) or `;`, whichever comes first.
        let mut k = close + 1;
        let mut end = toks.len();
        while k < toks.len() {
            match lexed.punct(k) {
                Some(b';') => {
                    end = k + 1;
                    break;
                }
                Some(b'{') => {
                    let mut braces = 0usize;
                    while k < toks.len() {
                        match lexed.punct(k) {
                            Some(b'{') => braces += 1,
                            Some(b'}') => {
                                braces -= 1;
                                if braces == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    end = (k + 1).min(toks.len());
                    break;
                }
                _ => k += 1,
            }
        }
        for s in skip.iter_mut().take(end).skip(i) {
            *s = true;
        }
        i = end;
    }
    skip
}

fn push(raw: &mut Vec<Diagnostic>, file: &str, line: u32, rule: RuleId, message: String) {
    raw.push(Diagnostic {
        file: file.to_string(),
        line,
        rule,
        message,
        chain: Vec::new(),
    });
}

/// D1: any `HashMap`/`HashSet` identifier in code position. Conservative
/// on purpose — a lookup-only map is flagged too, because the next edit
/// that iterates it will not be; provably lookup-only uses opt out with
/// a justified suppression, everything else moves to ordered containers.
fn d1_hash_containers(file: &str, lexed: &Lexed, skip: &[bool], raw: &mut Vec<Diagnostic>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if skip[i] {
            continue;
        }
        if let Tok::Ident(s) = &t.tok {
            if s == "HashMap" || s == "HashSet" {
                push(
                    raw,
                    file,
                    t.line,
                    RuleId::D1,
                    format!(
                        "`{s}` iterates in instance-randomized order, which breaks the \
                         bit-identity contract; use BTree{}/a sorted Vec, or justify with \
                         `audit:allow(D1)`",
                        &s[4..]
                    ),
                );
            }
        }
    }
}

/// D2: ambient entropy/clock sources. `Instant::now` matches as the
/// token triple; the other names are single identifiers.
fn d2_entropy_clocks(file: &str, lexed: &Lexed, skip: &[bool], raw: &mut Vec<Diagnostic>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if skip[i] {
            continue;
        }
        let Tok::Ident(s) = &t.tok else { continue };
        let name: &str = match s.as_str() {
            "thread_rng" | "from_entropy" | "SystemTime" => s,
            "Instant"
                if lexed.punct(i + 1) == Some(b':')
                    && lexed.punct(i + 2) == Some(b':')
                    && lexed.ident(i + 3) == Some("now") =>
            {
                "Instant::now"
            }
            _ => continue,
        };
        push(
            raw,
            file,
            t.line,
            RuleId::D2,
            format!(
                "`{name}` is an ambient entropy/clock source; randomness must flow from \
                 seeded mix_seed streams and time from the StopState deadline plumbing"
            ),
        );
    }
}

/// P1: panic-class calls — `.unwrap()`, `.expect(…)`, and the
/// `panic!`-family macros.
fn p1_panic_paths(file: &str, lexed: &Lexed, skip: &[bool], raw: &mut Vec<Diagnostic>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if skip[i] {
            continue;
        }
        let Tok::Ident(s) = &t.tok else { continue };
        let method = (s == "unwrap" || s == "expect")
            && i > 0
            && lexed.punct(i - 1) == Some(b'.')
            && lexed.punct(i + 1) == Some(b'(');
        let mac = matches!(
            s.as_str(),
            "panic" | "todo" | "unimplemented" | "unreachable"
        ) && lexed.punct(i + 1) == Some(b'!');
        if method {
            push(
                raw,
                file,
                t.line,
                RuleId::P1,
                format!(
                    "`.{s}()` can panic the serving path; handle the None/Err and answer \
                     a typed protocol error instead"
                ),
            );
        } else if mac {
            push(
                raw,
                file,
                t.line,
                RuleId::P1,
                format!(
                    "`{s}!` aborts the serving path; every fallible path must return a \
                     typed protocol error"
                ),
            );
        }
    }
}

/// L1: extracts each function's sequence of lock acquisitions — a
/// `path.lock()`, `path.read()`, or `path.write()` with an *empty*
/// argument list (which is what distinguishes sync primitives from
/// `io::Read::read(&mut buf)`) — and flags any pair of locks two
/// functions acquire in opposite orders.
fn l1_lock_order(file: &str, lexed: &Lexed, skip: &[bool], raw: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    // (function name, [(lock path, line of first acquisition)]).
    let mut functions: Vec<(String, Vec<(String, u32)>)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if skip[i] || lexed.ident(i) != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name) = lexed.ident(i + 1) else {
            i += 1;
            continue;
        };
        let name = name.to_string();
        // The body: first `{` after the signature (a `;` first means a
        // trait method declaration — no body).
        let mut j = i + 2;
        let mut body_start = None;
        while j < toks.len() {
            match lexed.punct(j) {
                Some(b'{') => {
                    body_start = Some(j);
                    break;
                }
                Some(b';') => break,
                _ => {}
            }
            j += 1;
        }
        let Some(start) = body_start else {
            i = j + 1;
            continue;
        };
        let mut depth = 0usize;
        let mut k = start;
        while k < toks.len() {
            match lexed.punct(k) {
                Some(b'{') => depth += 1,
                Some(b'}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let mut acquisitions: Vec<(String, u32)> = Vec::new();
        for (idx, tok) in toks.iter().enumerate().take(k.min(toks.len())).skip(start) {
            let Some(kind) = lexed.ident(idx) else {
                continue;
            };
            if !matches!(kind, "lock" | "read" | "write") {
                continue;
            }
            if lexed.punct(idx.wrapping_sub(1)) != Some(b'.')
                || lexed.punct(idx + 1) != Some(b'(')
                || lexed.punct(idx + 2) != Some(b')')
            {
                continue;
            }
            let path = lock_path(lexed, idx - 1);
            if path.is_empty() {
                continue;
            }
            if !acquisitions.iter().any(|(p, _)| *p == path) {
                acquisitions.push((path, tok.line));
            }
        }
        functions.push((name, acquisitions));
        i = k + 1;
    }

    // Pairwise order consistency across all functions of the file.
    // first_seen[(a, b)] = (fn, line) where a was acquired before b.
    let mut first_seen: std::collections::BTreeMap<(String, String), (String, u32)> =
        std::collections::BTreeMap::new();
    for (fn_name, acqs) in &functions {
        for (ai, (a, _)) in acqs.iter().enumerate() {
            for (b, b_line) in &acqs[ai + 1..] {
                if let Some((other_fn, other_line)) = first_seen.get(&(b.clone(), a.clone())) {
                    push(
                        raw,
                        file,
                        *b_line,
                        RuleId::L1,
                        format!(
                            "lock order conflict: `{fn_name}` acquires `{a}` then `{b}`, \
                             but `{other_fn}` (line {other_line}) acquires `{b}` then `{a}`"
                        ),
                    );
                } else {
                    first_seen
                        .entry((a.clone(), b.clone()))
                        .or_insert_with(|| (fn_name.clone(), *b_line));
                }
            }
        }
    }
}

/// Reconstructs the receiver path of a lock call, walking backwards from
/// the `.` before `lock`/`read`/`write`. Index expressions normalize to
/// `[_]` so `self.slots[i]` and `self.slots[j]` are the same lock family.
fn lock_path(lexed: &Lexed, dot: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot; // at the `.`
    loop {
        if j == 0 {
            break;
        }
        j -= 1;
        match &lexed.tokens[j].tok {
            Tok::Ident(s) => {
                parts.push(s.clone());
                // A `::`, `.` or `[` may continue the path to the left.
                if j >= 2 && lexed.punct(j - 1) == Some(b':') && lexed.punct(j - 2) == Some(b':') {
                    parts.push("::".to_string());
                    j -= 2;
                } else if j >= 1 && lexed.punct(j - 1) == Some(b'.') {
                    parts.push(".".to_string());
                    j -= 1;
                } else {
                    break;
                }
            }
            Tok::Punct(b']') => {
                // Walk back over the index expression to its `[`.
                let mut depth = 0usize;
                loop {
                    match lexed.punct(j) {
                        Some(b']') => depth += 1,
                        Some(b'[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
                parts.push("[_]".to_string());
                if j == 0 {
                    break;
                }
                // The `[` must follow the indexed expression directly.
                match lexed.tokens[j - 1].tok {
                    Tok::Ident(_) | Tok::Punct(b']') => {}
                    _ => break,
                }
            }
            _ => break,
        }
    }
    parts.reverse();
    parts.concat()
}

// ---------------------------------------------------------------------
// Interprocedural passes (P2 / L2 / D3)
// ---------------------------------------------------------------------

/// Paths whose *slice-indexing* counts as a P2 panic fact, beyond the
/// rule's own root scope: the executor hot loops and the session facade
/// that serve dispatches into. Panic-class calls (`unwrap`, `panic!`, …)
/// are base facts corpus-wide; indexing is scoped here so that guarded
/// hot-path indexing elsewhere in the solver crates does not drown the
/// signal.
pub const P2_INDEX_SCOPE: &[&str] = &[
    "crates/serve/src",
    "src/session.rs",
    "crates/algos/src/exec.rs",
    "crates/algos/src/exec",
];

fn path_under(rel: &str, prefixes: &[&str]) -> bool {
    prefixes
        .iter()
        .any(|p| rel == *p || rel.strip_prefix(p).is_some_and(|r| r.starts_with('/')))
}

/// One panic-capable site inside a function.
struct PanicFact {
    line: u32,
    what: String,
}

/// P2: panic reachability. Roots are every non-test fn in files where
/// P2 is in scope; edges are the call graph minus `catch_unwind`
/// barriers; facts are panic-class tokens anywhere in the corpus plus
/// slice indexing inside [`P2_INDEX_SCOPE`]. Each reachable fact yields
/// one diagnostic *at the fact site* carrying a shortest witness chain
/// from a root — so a justified suppression at the site covers every
/// chain into it.
fn p2_panic_reachability(
    files: &[FileIndex],
    graph: &CallGraph,
    rooted: &dyn Fn(usize) -> bool,
    raw: &mut [Vec<Diagnostic>],
) {
    // Per-fn panic facts.
    let mut facts: Vec<Vec<PanicFact>> = (0..graph.fns.len()).map(|_| Vec::new()).collect();
    for (id, node) in graph.fns.iter().enumerate() {
        let file = &files[node.file];
        let index_scope = rooted(node.file) || path_under(&file.rel, P2_INDEX_SCOPE);
        let item = &file.tree.fns[node.item];
        let Some((open, close)) = item.body else {
            continue;
        };
        for idx in open..=close.min(file.lexed.tokens.len().saturating_sub(1)) {
            if file.owner[idx] != Some(node.item)
                || file.skip[idx]
                || file.barriered.get(idx).copied().unwrap_or(false)
            {
                continue;
            }
            if let Some(what) = panic_fact_at(&file.lexed, idx, index_scope) {
                facts[id].push(PanicFact {
                    line: file.lexed.tokens[idx].line,
                    what,
                });
            }
        }
    }

    // BFS from all roots at once over non-barriered edges; the parent
    // array reconstructs one shortest witness chain per reached fn.
    let mut parent: Vec<Option<usize>> = vec![None; graph.fns.len()];
    let mut reached: Vec<bool> = vec![false; graph.fns.len()];
    let mut queue: std::collections::VecDeque<usize> = (0..graph.fns.len())
        .filter(|&id| rooted(graph.fns[id].file))
        .collect();
    for &id in &queue {
        reached[id] = true;
    }
    while let Some(id) = queue.pop_front() {
        for call in &graph.fns[id].calls {
            if call.barriered || reached[call.callee] {
                continue;
            }
            reached[call.callee] = true;
            parent[call.callee] = Some(id);
            queue.push_back(call.callee);
        }
    }

    for (id, node) in graph.fns.iter().enumerate() {
        if !reached[id] || facts[id].is_empty() {
            continue;
        }
        // Witness chain root → … → this fn.
        let mut chain_ids = vec![id];
        let mut cur = id;
        while let Some(p) = parent[cur] {
            chain_ids.push(p);
            cur = p;
        }
        chain_ids.reverse();
        let chain: Vec<String> = chain_ids
            .iter()
            .map(|&f| graph.qualified(files, f))
            .collect();
        let rendered = chain.join(" → ");
        let root = &chain[0];
        for fact in &facts[id] {
            raw[node.file].push(Diagnostic {
                file: files[node.file].rel.clone(),
                line: fact.line,
                rule: RuleId::P2,
                message: format!(
                    "{what} is reachable from serve fn `{root}` (chain: {rendered}) — \
                     no dispatch/park/cancel path may panic; return a typed error or \
                     shield the subtree with catch_unwind",
                    what = fact.what
                ),
                chain: chain.clone(),
            });
        }
    }
}

/// Classifies the token at `idx` as a panic-capable site, if it is one.
fn panic_fact_at(lexed: &Lexed, idx: usize, index_scope: bool) -> Option<String> {
    if let Some(s) = lexed.ident(idx) {
        let method = (s == "unwrap" || s == "expect")
            && idx > 0
            && lexed.punct(idx - 1) == Some(b'.')
            && lexed.punct(idx + 1) == Some(b'(');
        if method {
            return Some(format!("`.{s}()`"));
        }
        let mac = matches!(s, "panic" | "todo" | "unimplemented" | "unreachable")
            && lexed.punct(idx + 1) == Some(b'!');
        if mac {
            return Some(format!("`{s}!`"));
        }
        return None;
    }
    if index_scope && lexed.punct(idx) == Some(b'[') && idx > 0 {
        // An index expression: `expr[…]` — `[` directly after an
        // identifier, `]`, or `)`. Types, attributes, and `vec![…]`
        // all have other predecessors.
        let indexes = matches!(
            lexed.tokens[idx - 1].tok,
            Tok::Ident(_) | Tok::Punct(b']') | Tok::Punct(b')')
        );
        if !indexes {
            return None;
        }
        // `[..]` (the full-range borrow) cannot panic; any other index
        // or sub-range can.
        if lexed.punct(idx + 1) == Some(b'.')
            && lexed.punct(idx + 2) == Some(b'.')
            && lexed.punct(idx + 3) == Some(b']')
        {
            return None;
        }
        return Some("panic-capable slice/array indexing `…[…]`".to_string());
    }
    None
}

/// One lock acquisition and the token range its guard is live for —
/// from the `.lock()`/`.read()`/`.write()` call to the end of the
/// binding's block (or `drop(guard)`), or to the end of the statement
/// for an unbound temporary guard.
struct LockLive {
    name: String,
    line: u32,
    start: usize,
    end: usize,
}

/// L2: propagate per-fn held-lock summaries through the call graph,
/// build the global acquisition-order graph, and flag (a) any cycle in
/// it and (b) a lock guard lexically held across a channel `.send(…)`
/// in files where L2 is in scope.
fn l2_lock_graph(
    files: &[FileIndex],
    graph: &CallGraph,
    scoped: &dyn Fn(usize) -> bool,
    raw: &mut [Vec<Diagnostic>],
) {
    // Per-fn acquisitions with lexical guard live ranges.
    let mut lives: Vec<Vec<LockLive>> = Vec::with_capacity(graph.fns.len());
    for node in &graph.fns {
        lives.push(lock_live_ranges(&files[node.file], node.item));
    }

    // Fixpoint: summary(f) = direct acquisitions ∪ summaries of callees.
    let mut summary: Vec<BTreeSet<String>> = vec![BTreeSet::new(); graph.fns.len()];
    for (id, fn_lives) in lives.iter().enumerate() {
        for l in fn_lives {
            summary[id].insert(l.name.clone());
        }
    }
    loop {
        let mut changed = false;
        for id in 0..graph.fns.len() {
            for call in &graph.fns[id].calls {
                if call.callee == id {
                    continue;
                }
                let add: Vec<String> = summary[call.callee]
                    .difference(&summary[id])
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    changed = true;
                    summary[id].extend(add);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Order edges: a → b means "b acquired while a's guard is live",
    // with one deterministic witness per edge. Direct edges come from a
    // nested acquisition; transitive edges from a call whose summary
    // acquires, made while a guard is live.
    let mut edges: BTreeMap<(String, String), LockOrderWitness> = BTreeMap::new();
    for (id, fn_lives) in lives.iter().enumerate() {
        let fn_q = graph.qualified(files, id);
        let file = graph.fns[id].file;
        for held in fn_lives {
            for inner in fn_lives {
                if inner.name != held.name && inner.start > held.start && inner.start < held.end {
                    edges
                        .entry((held.name.clone(), inner.name.clone()))
                        .or_insert_with(|| LockOrderWitness {
                            fn_q: fn_q.clone(),
                            file,
                            line: inner.line,
                            via: None,
                        });
                }
            }
            for call in &graph.fns[id].calls {
                if call.tok <= held.start || call.tok >= held.end {
                    continue;
                }
                let callee_q = graph.qualified(files, call.callee);
                for m in &summary[call.callee] {
                    if *m != held.name {
                        edges
                            .entry((held.name.clone(), m.clone()))
                            .or_insert_with(|| LockOrderWitness {
                                fn_q: fn_q.clone(),
                                file,
                                line: call.line,
                                via: Some(callee_q.clone()),
                            });
                    }
                }
            }
        }
    }

    // Cycle detection over the lock-name digraph (DFS with path stack;
    // each distinct cycle reported once, at its first edge's witness).
    let nodes: BTreeSet<&String> = edges.keys().flat_map(|(a, b)| [a, b]).collect();
    let adj: BTreeMap<&String, Vec<&String>> = {
        let mut m: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            m.entry(a).or_default().push(b);
        }
        m
    };
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in &nodes {
        let mut path: Vec<&String> = vec![start];
        let mut stack: Vec<std::vec::IntoIter<&String>> =
            vec![adj.get(start).cloned().unwrap_or_default().into_iter()];
        while let Some(iter) = stack.last_mut() {
            match iter.next() {
                None => {
                    stack.pop();
                    path.pop();
                }
                Some(next) => {
                    if let Some(pos) = path.iter().position(|&n| n == next) {
                        // A cycle: normalize (rotate to the smallest
                        // element) to dedupe across start nodes.
                        let cycle: Vec<String> =
                            path[pos..].iter().map(|s| s.to_string()).collect();
                        let min = cycle
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, s)| s.as_str())
                            .map(|(i, _)| i)
                            .unwrap_or(0);
                        let mut norm = cycle[min..].to_vec();
                        norm.extend_from_slice(&cycle[..min]);
                        if seen_cycles.insert(norm.clone()) {
                            report_lock_cycle(files, &edges, &norm, raw);
                        }
                    } else if path.len() < 16 {
                        path.push(next);
                        stack.push(adj.get(next).cloned().unwrap_or_default().into_iter());
                    }
                }
            }
        }
    }

    // Lock held across a channel send, lexically, in scoped files.
    for (id, node) in graph.fns.iter().enumerate() {
        if !scoped(node.file) {
            continue;
        }
        l2_send_under_lock(files, graph, id, &lives[id], raw);
    }
}

/// Provenance for one lock-order edge: which fn established it, where,
/// and (for transitive edges) through which callee's summary.
struct LockOrderWitness {
    fn_q: String,
    file: usize,
    line: u32,
    via: Option<String>,
}

fn report_lock_cycle(
    files: &[FileIndex],
    edges: &BTreeMap<(String, String), LockOrderWitness>,
    cycle: &[String],
    raw: &mut [Vec<Diagnostic>],
) {
    let mut parts: Vec<String> = Vec::new();
    let mut chain: Vec<String> = Vec::new();
    let mut first: Option<(usize, u32)> = None;
    for (i, a) in cycle.iter().enumerate() {
        let b = &cycle[(i + 1) % cycle.len()];
        if let Some(w) = edges.get(&(a.clone(), b.clone())) {
            let site = format!("{}:{}", files[w.file].rel, w.line);
            parts.push(match &w.via {
                Some(v) => format!(
                    "`{a}` → `{b}` ({fq} holds `{a}` across a call to {v}, {site})",
                    fq = w.fn_q
                ),
                None => format!("`{a}` → `{b}` ({fq}, {site})", fq = w.fn_q),
            });
            chain.push(w.fn_q.clone());
            if first.is_none() {
                first = Some((w.file, w.line));
            }
        }
    }
    let Some((file, line)) = first else { return };
    chain.dedup();
    raw[file].push(Diagnostic {
        file: files[file].rel.clone(),
        line,
        rule: RuleId::L2,
        message: format!(
            "lock-order cycle: {} — opposite acquisition orders deadlock under contention; \
             pick one global order",
            parts.join("; ")
        ),
        chain,
    });
}

/// A `path.lock()`/`path.read()`/`path.write()` acquisition at token
/// `idx`, with the lock name qualified by the owning impl type so
/// `self.state` in two different types stays two different locks.
fn lock_acquisition_at(file: &FileIndex, item: usize, idx: usize) -> Option<(String, u32)> {
    let lexed = &file.lexed;
    let kind = lexed.ident(idx)?;
    if !matches!(kind, "lock" | "read" | "write") {
        return None;
    }
    if lexed.punct(idx.wrapping_sub(1)) != Some(b'.')
        || lexed.punct(idx + 1) != Some(b'(')
        || lexed.punct(idx + 2) != Some(b')')
    {
        return None;
    }
    let path = lock_path(lexed, idx - 1);
    if path.is_empty() {
        return None;
    }
    let fn_item = &file.tree.fns[item];
    let name = match (path.strip_prefix("self."), &fn_item.self_type) {
        (Some(rest), Some(ty)) => format!("{ty}.{rest}"),
        _ => path,
    };
    Some((name, lexed.tokens[idx].line))
}

/// Every lock acquisition of fn `item` with its guard's lexical live
/// range (end-exclusive token index).
fn lock_live_ranges(file: &FileIndex, item: usize) -> Vec<LockLive> {
    let lexed = &file.lexed;
    let Some((open, close)) = file.tree.fns[item].body else {
        return Vec::new();
    };
    let close = close.min(lexed.tokens.len().saturating_sub(1));
    let mut out = Vec::new();
    for idx in open..=close {
        if file.owner[idx] != Some(item) || file.skip[idx] {
            continue;
        }
        let Some((name, line)) = lock_acquisition_at(file, item, idx) else {
            continue;
        };
        out.push(LockLive {
            name,
            line,
            start: idx,
            end: guard_live_end(file, idx, open, close),
        });
    }
    out
}

/// Where the guard acquired at token `idx` dies: the end of the
/// binding's block (or an explicit `drop(guard)`), or the end of the
/// statement when the guard is an unbound temporary.
fn guard_live_end(file: &FileIndex, idx: usize, open: usize, close: usize) -> usize {
    let lexed = &file.lexed;
    // Find the binding: scan back to the statement start; `let [mut] g
    // =` binds the guard to `g`.
    let mut stmt_start = idx;
    while stmt_start > open {
        match lexed.punct(stmt_start - 1) {
            Some(b';') | Some(b'{') | Some(b'}') => break,
            _ => stmt_start -= 1,
        }
    }
    let guard: Option<&str> = match lexed.ident(stmt_start) {
        Some("let") => lexed
            .ident(stmt_start + 1)
            .filter(|s| *s != "mut")
            .or_else(|| lexed.ident(stmt_start + 2)),
        _ => None,
    };
    let mut depth = 0i32;
    let mut j = idx + 1;
    while j <= close {
        match lexed.punct(j) {
            Some(b'{') => depth += 1,
            Some(b'}') => {
                depth -= 1;
                if depth < 0 {
                    return j; // the binding's block closed
                }
            }
            Some(b';') if guard.is_none() && depth == 0 => return j, // temporary dies
            _ => {}
        }
        if let (Some(g), Some("drop")) = (guard, lexed.ident(j)) {
            if lexed.punct(j + 1) == Some(b'(') && lexed.ident(j + 2) == Some(g) {
                return j;
            }
        }
        j += 1;
    }
    close + 1
}

/// Flags a `.send(` made while a lock guard is lexically live in fn
/// `id` — on a bounded channel the send can block holding the lock.
fn l2_send_under_lock(
    files: &[FileIndex],
    graph: &CallGraph,
    id: usize,
    lives: &[LockLive],
    raw: &mut [Vec<Diagnostic>],
) {
    let node = &graph.fns[id];
    let file = &files[node.file];
    let lexed = &file.lexed;
    for held in lives {
        for j in held.start + 1..held.end {
            if file.skip[j]
                || lexed.ident(j) != Some("send")
                || lexed.punct(j.wrapping_sub(1)) != Some(b'.')
                || lexed.punct(j + 1) != Some(b'(')
            {
                continue;
            }
            raw[node.file].push(Diagnostic {
                file: file.rel.clone(),
                line: lexed.tokens[j].line,
                rule: RuleId::L2,
                message: format!(
                    "lock `{name}` (acquired line {line}) is held across this `.send(…)` \
                     — on a bounded channel the send blocks while holding the lock, a \
                     deadlock in waiting; drop the guard before sending",
                    name = held.name,
                    line = held.line
                ),
                chain: Vec::new(),
            });
        }
    }
}

/// D3: determinism taint. Every RNG construction
/// (`seed_from_u64`/`from_seed`/`from_rng`) in a D3-scoped file must
/// mention a seed-rooted source in its argument list: an identifier
/// containing `seed` (`mix_seed`, `sample_seed`, a `seed` parameter) or
/// a call to a *seed-deriving* fn — the fixpoint closure of "named
/// `…seed…` or calls a seed-deriving fn". Ambient-state reads
/// (`env::var` & friends) in scoped files are violations outright:
/// solve results are memo-keyed by (instance, spec, seed) and must not
/// depend on state outside that key.
fn d3_determinism_taint(
    files: &[FileIndex],
    graph: &CallGraph,
    scoped: &dyn Fn(usize) -> bool,
    raw: &mut [Vec<Diagnostic>],
) {
    // Fixpoint: the seed-deriving fns.
    let mut seedy: Vec<bool> = graph
        .fns
        .iter()
        .map(|n| {
            files[n.file].tree.fns[n.item]
                .name
                .to_ascii_lowercase()
                .contains("seed")
        })
        .collect();
    loop {
        let mut changed = false;
        for id in 0..graph.fns.len() {
            if seedy[id] {
                continue;
            }
            if graph.fns[id].calls.iter().any(|c| seedy[c.callee]) {
                seedy[id] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let seedy_names: BTreeSet<String> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|&(id, _)| seedy[id])
        .map(|(_, n)| files[n.file].tree.fns[n.item].name.clone())
        .collect();

    for (fi, file) in files.iter().enumerate() {
        if !scoped(fi) {
            continue;
        }
        let lexed = &file.lexed;
        for idx in 0..lexed.tokens.len() {
            if file.skip[idx] {
                continue;
            }
            let Some(name) = lexed.ident(idx) else {
                continue;
            };
            // Ambient reads: `env::var`, `env::var_os`, `env::vars`,
            // `env::args`.
            if name == "env"
                && lexed.punct(idx + 1) == Some(b':')
                && lexed.punct(idx + 2) == Some(b':')
                && matches!(
                    lexed.ident(idx + 3),
                    Some("var") | Some("var_os") | Some("vars") | Some("args")
                )
            {
                let what = lexed.ident(idx + 3).unwrap_or("var");
                raw[fi].push(Diagnostic {
                    file: file.rel.clone(),
                    line: lexed.tokens[idx].line,
                    rule: RuleId::D3,
                    message: format!(
                        "ambient-state read `env::{what}(…)` in a memo-keyed solve path — \
                         solves are memoized as pure functions of (instance, spec, seed); \
                         plumb the value through the spec instead"
                    ),
                    chain: Vec::new(),
                });
                continue;
            }
            // RNG constructions. `fn seed_from_u64(` is a declaration,
            // not a construction — its params are not seed arguments.
            if !matches!(name, "seed_from_u64" | "from_seed" | "from_rng")
                || lexed.punct(idx + 1) != Some(b'(')
                || (idx >= 1 && lexed.ident(idx - 1) == Some("fn"))
            {
                continue;
            }
            let args = paren_range(lexed, idx + 1);
            let seed_rooted = args.clone().any(|j| {
                lexed.ident(j).is_some_and(|s| {
                    s.to_ascii_lowercase().contains("seed") || seedy_names.contains(s)
                })
            });
            if !seed_rooted {
                raw[fi].push(Diagnostic {
                    file: file.rel.clone(),
                    line: lexed.tokens[idx].line,
                    rule: RuleId::D3,
                    message: format!(
                        "RNG construction `{name}(…)` does not derive from a \
                         mix_seed-rooted source — every stream must mix from the solve \
                         seed (mix_seed/sample_seed or a seed parameter) so results \
                         replay bit-identically"
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }
}

/// Token indices strictly inside the parens opening at `open`.
fn paren_range(lexed: &Lexed, open: usize) -> std::ops::Range<usize> {
    let mut depth = 0usize;
    let mut j = open;
    while j < lexed.tokens.len() {
        match lexed.punct(j) {
            Some(b'(') => depth += 1,
            Some(b')') => {
                depth -= 1;
                if depth == 0 {
                    return open + 1..j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    open + 1..lexed.tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, rules: &[RuleId]) -> Vec<Diagnostic> {
        audit_source("test.rs", src, rules)
    }

    #[test]
    fn d1_flags_hash_containers_and_honours_suppressions() {
        let src = "use std::collections::HashMap;\n\
                   // audit:allow(D1): membership-only, never iterated\n\
                   fn f(m: HashMap<u32, u32>) {}\n";
        let diags = run(src, &[RuleId::D1]);
        assert_eq!(diags.len(), 1);
        assert_eq!((diags[0].line, diags[0].rule), (1, RuleId::D1));
    }

    #[test]
    fn p1_ignores_non_panicking_cousins() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }\n\
                   fn g(x: Option<u32>) -> u32 { x.unwrap_or(1) }\n";
        assert!(run(src, &[RuleId::P1]).is_empty());
    }

    #[test]
    fn cfg_test_items_are_skipped_but_not_cfg_not_test() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n}\n\
                   #[cfg(not(test))]\nfn g() { y.unwrap(); }\n";
        let diags = run(src, &[RuleId::P1]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn unused_and_unreasoned_suppressions_are_flagged() {
        let src = "// audit:allow(D1): nothing here trips D1\nfn f() {}\n\
                   // audit:allow(P1)\nfn g() { x.unwrap(); }\n";
        let diags = run(src, &[RuleId::D1, RuleId::P1]);
        let rules: Vec<_> = diags.iter().map(|d| (d.line, d.rule)).collect();
        // Line 1: unused D1 suppression. Line 3: reasonless suppression
        // (which therefore does not suppress line 4's unwrap).
        assert_eq!(
            rules,
            vec![(1, RuleId::Sup), (3, RuleId::Sup), (4, RuleId::P1)]
        );
    }

    #[test]
    fn l1_flags_opposite_orders_only() {
        let consistent = "fn a(&self) { let _x = self.m1.lock(); let _y = self.m2.lock(); }\n\
                          fn b(&self) { let _x = self.m1.lock(); let _y = self.m2.lock(); }\n";
        assert!(run(consistent, &[RuleId::L1]).is_empty());
        let conflicting = "fn a(&self) { let _x = self.m1.lock(); let _y = self.m2.lock(); }\n\
                           fn b(&self) { let _y = self.m2.lock(); let _x = self.m1.lock(); }\n";
        let diags = run(conflicting, &[RuleId::L1]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::L1);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn l1_normalizes_indexed_locks_and_skips_io_read() {
        let src = "fn a(&self) { let _g = self.slots[i].lock(); }\n\
                   fn b(&self, f: &mut File) { f.read(&mut buf); }\n";
        // Neither trips anything: one lock family, and `read` with
        // arguments is io::Read, not RwLock.
        assert!(run(src, &[RuleId::L1]).is_empty());
    }

    #[test]
    fn file_wide_suppression_covers_everything() {
        let src = "// audit:allow-file(D1): generator crate, all sets sorted before use\n\
                   use std::collections::HashSet;\nfn f(s: HashSet<u32>) {}\n";
        assert!(run(src, &[RuleId::D1]).is_empty());
    }
}

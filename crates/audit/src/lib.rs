//! `waso-audit` — the workspace's static invariant auditor.
//!
//! The determinism contract (CBAS/CBAS-ND solves are bit-identical
//! across serial, pool widths 1–8, striped/chunked deals, and the
//! decomposition composite) and the serving no-panic contract ("never a
//! hang, typed errors keep the connection") are enforced dynamically by
//! the proptest suites — which sample a sliver of the code per run. This
//! crate is the static half: token-level pattern rules plus a
//! call-graph-aware interprocedural layer (panic reachability,
//! lock-graph cycles, determinism taint) over the workspace's own
//! sources, with named rules, `file:line` diagnostics, call-chain
//! witnesses, and justified opt-outs.
//!
//! See [`rules`] for the rule table and suppression grammar. Scoping is
//! by path ([`SCOPES`]): determinism rules bind the solver hot-path
//! crates, the no-panic rules bind the serving crate, the lock rules
//! bind the shared-pool executor. The interprocedural rules
//! additionally read the *whole corpus* ([`CORPUS`]) so a panic three
//! crates away from a serve dispatch path is still attributed to it.
//!
//! ```no_run
//! let report = waso_audit::audit_workspace(std::path::Path::new(".")).unwrap();
//! for d in &report.diagnostics {
//!     println!("{d}");
//! }
//! assert!(report.diagnostics.is_empty(), "invariant violations");
//! ```

pub mod callgraph;
pub mod items;
pub mod json;
pub mod lexer;
pub mod rules;

use std::io;
use std::path::{Path, PathBuf};

use json::Json;
pub use rules::{audit_source, Diagnostic, RuleId};

/// Schema id stamped into `--format json` reports.
pub const REPORT_SCHEMA: &str = "waso-audit-report/v1";
/// Schema id of the committed ratchet baseline.
pub const BASELINE_SCHEMA: &str = "waso-audit-baseline/v1";

/// Where each rule applies, as workspace-relative path prefixes (a
/// prefix naming a directory covers every `.rs` file under it).
///
/// * `D1`/`D2`/`D3` bind the solver hot-path crates: order-dependent
///   accumulation, ambient entropy, or an unseeded RNG stream anywhere
///   in `algos`/`core`/`graph` can silently break bit-identity.
/// * `P1` binds the serving crate — connection handling and dispatch
///   must answer typed errors, never panic — and the graph I/O module,
///   whose read/write paths serve user-supplied files. `P2` extends the
///   same contract *interprocedurally*: its scope names the root set
///   (every serve fn), and reachability walks the whole corpus from
///   there.
/// * `L1`/`L2` bind the shared-pool executor, where the slot/stage lock
///   family lives; `L2` additionally follows lock summaries through
///   calls and flags sends performed under a held guard.
pub const SCOPES: &[(RuleId, &[&str])] = &[
    (
        RuleId::D1,
        &["crates/algos/src", "crates/core/src", "crates/graph/src"],
    ),
    (
        RuleId::D2,
        &["crates/algos/src", "crates/core/src", "crates/graph/src"],
    ),
    (
        RuleId::D3,
        &["crates/algos/src", "crates/core/src", "crates/graph/src"],
    ),
    (RuleId::P1, &["crates/serve/src", "crates/graph/src/io.rs"]),
    (RuleId::P2, &["crates/serve/src"]),
    (
        RuleId::L1,
        &["crates/algos/src/exec.rs", "crates/algos/src/exec"],
    ),
    (
        RuleId::L2,
        &["crates/algos/src/exec.rs", "crates/algos/src/exec"],
    ),
];

/// The corpus the interprocedural rules read: every crate on a solve or
/// serve path, plus the session facade. Bench/stats/dataset tooling and
/// this crate itself stay out — they are not reachable from the
/// contracts and would only add name-resolution ambiguity. So does the
/// `waso-solve` CLI (`src/bin`): a terminal front-end whose free fns
/// (`run`, `parse_args`) would otherwise alias serve's under worst-case
/// name resolution, and whose abort-on-bad-input behaviour is its
/// documented interface, not a serve-path defect.
pub const CORPUS: &[&str] = &[
    "crates/algos/src",
    "crates/core/src",
    "crates/exact/src",
    "crates/graph/src",
    "crates/serve/src",
    "src/lib.rs",
    "src/session.rs",
];

/// The rules whose scope covers `rel_path` (workspace-relative, forward
/// slashes), in declaration order.
pub fn rules_for(rel_path: &str) -> Vec<RuleId> {
    let mut out = Vec::new();
    for &(rule, prefixes) in SCOPES {
        let hit = prefixes.iter().any(|p| {
            rel_path == *p || rel_path.strip_prefix(p).is_some_and(|r| r.starts_with('/'))
        });
        if hit && !out.contains(&rule) {
            out.push(rule);
        }
    }
    out
}

/// The outcome of a workspace audit.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Violations, sorted by (file, line, rule). Empty means clean.
    pub diagnostics: Vec<Diagnostic>,
    /// How many files had at least one active rule.
    pub files_audited: usize,
}

/// Audits every file in scope under `root` (the workspace root). Rules
/// are assigned per file via [`SCOPES`].
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    audit_workspace_rules(root, &[])
}

/// [`audit_workspace`] with a rule restriction (empty = all rules):
/// `--rule D1,P2` audits only those even where others would also apply.
/// The whole [`CORPUS`] is loaded regardless, because interprocedural
/// rules need out-of-scope files as call-graph context.
pub fn audit_workspace_rules(root: &Path, restrict: &[RuleId]) -> io::Result<AuditReport> {
    let mut files: Vec<PathBuf> = Vec::new();
    for prefix in CORPUS {
        let path = root.join(prefix);
        if path.is_dir() {
            collect_rs_files(&path, &mut files)?;
        } else if path.is_file() {
            files.push(path);
        }
    }
    files.sort();
    files.dedup();

    let mut corpus: Vec<(String, String)> = Vec::with_capacity(files.len());
    let mut files_audited = 0usize;
    for file in &files {
        let rel = relative_label(root, file);
        let mut rules = rules_for(&rel);
        if !restrict.is_empty() {
            rules.retain(|r| restrict.contains(r));
        }
        if !rules.is_empty() {
            files_audited += 1;
        }
        corpus.push((rel, std::fs::read_to_string(file)?));
    }

    let restrict = restrict.to_vec();
    let diagnostics = rules::audit_corpus(&corpus, &move |rel| {
        let mut rules = rules_for(rel);
        if !restrict.is_empty() {
            rules.retain(|r| restrict.contains(r));
        }
        rules
    });
    Ok(AuditReport {
        diagnostics,
        files_audited,
    })
}

/// Renders a report as the `waso-audit-report/v1` JSON document.
pub fn report_to_json(report: &AuditReport) -> Json {
    let diags = report
        .diagnostics
        .iter()
        .map(|d| {
            let mut fields = vec![
                ("file".to_string(), Json::str(&d.file)),
                ("line".to_string(), Json::num(u64::from(d.line))),
                ("rule".to_string(), Json::str(d.rule.as_str())),
                ("message".to_string(), Json::str(&d.message)),
            ];
            if !d.chain.is_empty() {
                fields.push((
                    "chain".to_string(),
                    Json::Arr(d.chain.iter().map(Json::str).collect()),
                ));
            }
            Json::Obj(fields)
        })
        .collect();
    Json::Obj(vec![
        ("schema".to_string(), Json::str(REPORT_SCHEMA)),
        (
            "files_audited".to_string(),
            Json::num(report.files_audited as u64),
        ),
        (
            "violations".to_string(),
            Json::num(report.diagnostics.len() as u64),
        ),
        ("diagnostics".to_string(), Json::Arr(diags)),
    ])
}

/// The ratchet baseline: per-(file, rule) violation counts. Count-based
/// (not line-based) so unrelated edits that shift lines don't churn it.
#[derive(Debug, Default, PartialEq)]
pub struct Baseline {
    /// (file, rule) → allowed count, sorted by key.
    pub entries: Vec<(String, RuleId, usize)>,
}

/// One baseline-vs-report difference.
#[derive(Debug)]
pub enum Drift {
    /// More findings than the baseline allows — fails the ratchet.
    Regression {
        file: String,
        rule: RuleId,
        baseline: usize,
        found: usize,
    },
    /// Fewer findings than recorded — the baseline can be tightened.
    Improvement {
        file: String,
        rule: RuleId,
        baseline: usize,
        found: usize,
    },
}

impl Baseline {
    /// Distills a report into its ratchet form.
    pub fn from_report(report: &AuditReport) -> Baseline {
        let mut counts: std::collections::BTreeMap<(String, RuleId), usize> =
            std::collections::BTreeMap::new();
        for d in &report.diagnostics {
            *counts.entry((d.file.clone(), d.rule)).or_default() += 1;
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((file, rule), n)| (file, rule, n))
                .collect(),
        }
    }

    pub fn to_json(&self) -> Json {
        let entries = self
            .entries
            .iter()
            .map(|(file, rule, n)| {
                Json::Obj(vec![
                    ("file".to_string(), Json::str(file)),
                    ("rule".to_string(), Json::str(rule.as_str())),
                    ("count".to_string(), Json::num(*n as u64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::str(BASELINE_SCHEMA)),
            ("entries".to_string(), Json::Arr(entries)),
        ])
    }

    pub fn from_json(doc: &Json) -> Result<Baseline, String> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == BASELINE_SCHEMA => {}
            other => return Err(format!("unsupported baseline schema {other:?}")),
        }
        let mut entries = Vec::new();
        for e in doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("baseline has no `entries` array")?
        {
            let file = e
                .get("file")
                .and_then(Json::as_str)
                .ok_or("entry missing `file`")?;
            let rule = e
                .get("rule")
                .and_then(Json::as_str)
                .and_then(RuleId::parse)
                .ok_or("entry missing or bad `rule`")?;
            let count = e
                .get("count")
                .and_then(Json::as_u64)
                .ok_or("entry missing `count`")? as usize;
            entries.push((file.to_string(), rule, count));
        }
        entries.sort();
        Ok(Baseline { entries })
    }

    /// Compares a fresh report against this baseline. Regressions (new
    /// (file, rule) keys, or grown counts) fail the ratchet;
    /// improvements invite a `--write-baseline` tighten.
    pub fn compare(&self, report: &AuditReport) -> Vec<Drift> {
        let current = Baseline::from_report(report);
        let base: std::collections::BTreeMap<(&str, RuleId), usize> = self
            .entries
            .iter()
            .map(|(f, r, n)| ((f.as_str(), *r), *n))
            .collect();
        let cur: std::collections::BTreeMap<(&str, RuleId), usize> = current
            .entries
            .iter()
            .map(|(f, r, n)| ((f.as_str(), *r), *n))
            .collect();
        let mut out = Vec::new();
        for (&(file, rule), &found) in &cur {
            let allowed = base.get(&(file, rule)).copied().unwrap_or(0);
            if found > allowed {
                out.push(Drift::Regression {
                    file: file.to_string(),
                    rule,
                    baseline: allowed,
                    found,
                });
            }
        }
        for (&(file, rule), &allowed) in &base {
            let found = cur.get(&(file, rule)).copied().unwrap_or(0);
            if found < allowed {
                out.push(Drift::Improvement {
                    file: file.to_string(),
                    rule,
                    baseline: allowed,
                    found,
                });
            }
        }
        out
    }
}

/// Recursively collects `.rs` files, sorted so the audit (like
/// everything else here) is a pure function of the tree.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `file` relative to `root`, with forward slashes — the label
/// diagnostics carry and scope prefixes match against.
fn relative_label(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]` — how the binary finds the tree to audit when
/// invoked from a subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_assignment_matches_prefixes() {
        assert_eq!(
            rules_for("crates/algos/src/engine.rs"),
            vec![RuleId::D1, RuleId::D2, RuleId::D3]
        );
        assert_eq!(
            rules_for("crates/algos/src/exec/shared.rs"),
            vec![RuleId::D1, RuleId::D2, RuleId::D3, RuleId::L1, RuleId::L2]
        );
        assert_eq!(
            rules_for("crates/algos/src/exec.rs"),
            vec![RuleId::D1, RuleId::D2, RuleId::D3, RuleId::L1, RuleId::L2]
        );
        assert_eq!(
            rules_for("crates/serve/src/server.rs"),
            vec![RuleId::P1, RuleId::P2]
        );
        // The graph I/O module is additionally under the no-panic rule.
        assert_eq!(
            rules_for("crates/graph/src/io.rs"),
            vec![RuleId::D1, RuleId::D2, RuleId::D3, RuleId::P1]
        );
        assert_eq!(rules_for("crates/bench/src/lib.rs"), Vec::<RuleId>::new());
        // A sibling file must not match a directory prefix by accident.
        assert_eq!(
            rules_for("crates/algos/src/execution.rs"),
            vec![RuleId::D1, RuleId::D2, RuleId::D3]
        );
    }

    #[test]
    fn baseline_round_trips_and_ratchets() {
        let report = AuditReport {
            diagnostics: vec![
                Diagnostic {
                    file: "a.rs".into(),
                    line: 3,
                    rule: RuleId::P2,
                    message: "m".into(),
                    chain: vec!["f".into()],
                },
                Diagnostic {
                    file: "a.rs".into(),
                    line: 9,
                    rule: RuleId::P2,
                    message: "m".into(),
                    chain: Vec::new(),
                },
            ],
            files_audited: 1,
        };
        let base = Baseline::from_report(&report);
        assert_eq!(base.entries, vec![("a.rs".to_string(), RuleId::P2, 2)]);
        let back = Baseline::from_json(&Json::parse(&base.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, base);

        // Same counts: no drift.
        assert!(base.compare(&report).is_empty());
        // One fixed: improvement, not regression.
        let less = AuditReport {
            diagnostics: report.diagnostics[..1].to_vec(),
            files_audited: 1,
        };
        assert!(matches!(
            base.compare(&less).as_slice(),
            [Drift::Improvement { found: 1, .. }]
        ));
        // A new file: regression.
        let mut more = AuditReport {
            diagnostics: report.diagnostics.clone(),
            files_audited: 1,
        };
        more.diagnostics.push(Diagnostic {
            file: "b.rs".into(),
            line: 1,
            rule: RuleId::L2,
            message: "m".into(),
            chain: Vec::new(),
        });
        assert!(base
            .compare(&more)
            .iter()
            .any(|d| matches!(d, Drift::Regression { file, .. } if file == "b.rs")));
    }
}

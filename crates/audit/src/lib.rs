//! `waso-audit` — the workspace's static invariant auditor.
//!
//! The determinism contract (CBAS/CBAS-ND solves are bit-identical
//! across serial, pool widths 1–8, striped/chunked deals, and the
//! decomposition composite) and the serving no-panic contract ("never a
//! hang, typed errors keep the connection") are enforced dynamically by
//! the proptest suites — which sample a sliver of the code per run. This
//! crate is the static half: a token-level pass over the workspace's own
//! sources that rejects the *patterns* that break those contracts, with
//! named rules, `file:line` diagnostics, and justified opt-outs.
//!
//! See [`rules`] for the rule table and suppression grammar. Scoping is
//! by path ([`SCOPES`]): determinism rules bind the solver hot-path
//! crates, the no-panic rule binds the serving crate, the lock-order
//! rule binds the shared-pool executor.
//!
//! ```no_run
//! let report = waso_audit::audit_workspace(std::path::Path::new(".")).unwrap();
//! for d in &report.diagnostics {
//!     println!("{d}");
//! }
//! assert!(report.diagnostics.is_empty(), "invariant violations");
//! ```

pub mod lexer;
pub mod rules;

use std::io;
use std::path::{Path, PathBuf};

pub use rules::{audit_source, Diagnostic, RuleId};

/// Where each rule applies, as workspace-relative path prefixes (a
/// prefix naming a directory covers every `.rs` file under it).
///
/// * `D1`/`D2` bind the solver hot-path crates: order-dependent
///   accumulation or ambient entropy anywhere in `algos`/`core`/`graph`
///   can silently break bit-identity.
/// * `P1` binds the serving crate — connection handling and dispatch
///   must answer typed errors, never panic — and the graph I/O module,
///   whose read/write paths serve user-supplied files.
/// * `L1` binds the shared-pool executor, where the slot/stage lock
///   family lives.
pub const SCOPES: &[(RuleId, &[&str])] = &[
    (
        RuleId::D1,
        &["crates/algos/src", "crates/core/src", "crates/graph/src"],
    ),
    (
        RuleId::D2,
        &["crates/algos/src", "crates/core/src", "crates/graph/src"],
    ),
    (RuleId::P1, &["crates/serve/src", "crates/graph/src/io.rs"]),
    (
        RuleId::L1,
        &["crates/algos/src/exec.rs", "crates/algos/src/exec"],
    ),
];

/// The rules whose scope covers `rel_path` (workspace-relative, forward
/// slashes), in declaration order.
pub fn rules_for(rel_path: &str) -> Vec<RuleId> {
    let mut out = Vec::new();
    for &(rule, prefixes) in SCOPES {
        let hit = prefixes.iter().any(|p| {
            rel_path == *p || rel_path.strip_prefix(p).is_some_and(|r| r.starts_with('/'))
        });
        if hit && !out.contains(&rule) {
            out.push(rule);
        }
    }
    out
}

/// The outcome of a workspace audit.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Violations, sorted by (file, line, rule). Empty means clean.
    pub diagnostics: Vec<Diagnostic>,
    /// How many files were audited (scope union).
    pub files_audited: usize,
}

/// Audits every file in scope under `root` (the workspace root). Rules
/// are assigned per file via [`SCOPES`]; `restrict` (if non-empty)
/// intersects with that assignment, so `--rule D1` audits only D1 even
/// where other rules would also apply.
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    audit_workspace_rules(root, &[])
}

/// [`audit_workspace`] with a rule restriction (empty = all rules).
pub fn audit_workspace_rules(root: &Path, restrict: &[RuleId]) -> io::Result<AuditReport> {
    let mut files: Vec<PathBuf> = Vec::new();
    for &(_, prefixes) in SCOPES {
        for prefix in prefixes {
            let path = root.join(prefix);
            if path.is_dir() {
                collect_rs_files(&path, &mut files)?;
            } else if path.is_file() {
                files.push(path);
            }
        }
    }
    files.sort();
    files.dedup();

    let mut report = AuditReport::default();
    for file in &files {
        let rel = relative_label(root, file);
        let mut rules = rules_for(&rel);
        if !restrict.is_empty() {
            rules.retain(|r| restrict.contains(r));
        }
        if rules.is_empty() {
            continue;
        }
        let src = std::fs::read_to_string(file)?;
        report.files_audited += 1;
        report.diagnostics.extend(audit_source(&rel, &src, &rules));
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Recursively collects `.rs` files, sorted so the audit (like
/// everything else here) is a pure function of the tree.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `file` relative to `root`, with forward slashes — the label
/// diagnostics carry and scope prefixes match against.
fn relative_label(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]` — how the binary finds the tree to audit when
/// invoked from a subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_assignment_matches_prefixes() {
        assert_eq!(
            rules_for("crates/algos/src/engine.rs"),
            vec![RuleId::D1, RuleId::D2]
        );
        assert_eq!(
            rules_for("crates/algos/src/exec/shared.rs"),
            vec![RuleId::D1, RuleId::D2, RuleId::L1]
        );
        assert_eq!(
            rules_for("crates/algos/src/exec.rs"),
            vec![RuleId::D1, RuleId::D2, RuleId::L1]
        );
        assert_eq!(rules_for("crates/serve/src/server.rs"), vec![RuleId::P1]);
        // The graph I/O module is additionally under the no-panic rule.
        assert_eq!(
            rules_for("crates/graph/src/io.rs"),
            vec![RuleId::D1, RuleId::D2, RuleId::P1]
        );
        assert_eq!(rules_for("crates/bench/src/lib.rs"), Vec::<RuleId>::new());
        // A sibling file must not match a directory prefix by accident.
        assert_eq!(
            rules_for("crates/algos/src/execution.rs"),
            vec![RuleId::D1, RuleId::D2]
        );
    }
}

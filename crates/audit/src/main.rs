//! The `waso-audit` binary: the CI gate and local pre-commit check.
//!
//! ```text
//! waso-audit --workspace [--root DIR] [--rule ID]...
//! waso-audit [--rule ID]... FILE...
//! waso-audit --list-rules
//! ```
//!
//! `--workspace` audits every file the rule scopes cover (finding the
//! workspace root upward from the current directory, or from `--root`).
//! Explicit `FILE` arguments are audited under *all* rules (restricted
//! by `--rule`), regardless of scope — handy for fixtures and editors.
//!
//! Exit status: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use waso_audit::{audit_source, audit_workspace_rules, find_workspace_root, RuleId, SCOPES};

struct Args {
    workspace: bool,
    root: Option<PathBuf>,
    rules: Vec<RuleId>,
    list_rules: bool,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: waso-audit --workspace [--root DIR] [--rule ID]...\n\
     \u{20}      waso-audit [--rule ID]... FILE...\n\
     \u{20}      waso-audit --list-rules\n\
     rules: D1 D2 P1 L1 (SUP always runs); see --list-rules"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: None,
        rules: Vec::new(),
        list_rules: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory argument")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--rule" => {
                let id = it.next().ok_or("--rule needs a rule id argument")?;
                let rule = RuleId::parse(&id).ok_or_else(|| format!("unknown rule `{id}`"))?;
                args.rules.push(rule);
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if !args.list_rules && !args.workspace && args.files.is_empty() {
        return Err("nothing to audit: pass --workspace or files".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("waso-audit: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in RuleId::CHECKABLE.into_iter().chain([RuleId::Sup]) {
            let scope: Vec<&str> = SCOPES
                .iter()
                .filter(|(r, _)| *r == rule)
                .flat_map(|(_, p)| p.iter().copied())
                .collect();
            let scope = if scope.is_empty() {
                "(always on)".to_string()
            } else {
                scope.join(", ")
            };
            println!("{rule}  {}\n    scope: {scope}", rule.describe());
        }
        return ExitCode::SUCCESS;
    }

    let mut diagnostics = Vec::new();
    let mut files_audited = 0usize;

    if args.workspace {
        let root = match args.root.clone().or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| find_workspace_root(&d))
        }) {
            Some(r) => r,
            None => {
                eprintln!("waso-audit: no workspace root found (try --root)");
                return ExitCode::from(2);
            }
        };
        match audit_workspace_rules(&root, &args.rules) {
            Ok(report) => {
                diagnostics.extend(report.diagnostics);
                files_audited += report.files_audited;
            }
            Err(e) => {
                eprintln!("waso-audit: {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    for file in &args.files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("waso-audit: {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        let rules: Vec<RuleId> = if args.rules.is_empty() {
            RuleId::CHECKABLE.to_vec()
        } else {
            args.rules.clone()
        };
        files_audited += 1;
        diagnostics.extend(audit_source(&file.display().to_string(), &src, &rules));
    }

    for d in &diagnostics {
        println!("{d}");
    }
    println!(
        "waso-audit: {} violation(s) across {} file(s) audited",
        diagnostics.len(),
        files_audited
    );
    if diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! The `waso-audit` binary: the CI gate and local pre-commit check.
//!
//! ```text
//! waso-audit --workspace [--root DIR] [--rule IDS]... [--format FMT]
//!            [--baseline FILE | --write-baseline FILE]
//! waso-audit [--rule IDS]... [--format FMT] FILE...
//! waso-audit --list-rules
//! ```
//!
//! `--workspace` audits every file the rule scopes cover (finding the
//! workspace root upward from the current directory, or from `--root`).
//! Explicit `FILE` arguments are audited under *all* rules (restricted
//! by `--rule`), regardless of scope — handy for fixtures and editors.
//!
//! Exit status: 0 clean (or within the baseline), 1 violations (or
//! baseline regressions), 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use waso_audit::{
    audit_source, audit_workspace_rules, find_workspace_root, json::Json, report_to_json,
    AuditReport, Baseline, Drift, RuleId, SCOPES,
};

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

struct Args {
    workspace: bool,
    root: Option<PathBuf>,
    rules: Vec<RuleId>,
    list_rules: bool,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: waso-audit --workspace [--root DIR] [--rule IDS]... [--format FMT]\n\
     \u{20}                 [--baseline FILE | --write-baseline FILE]\n\
     \u{20}      waso-audit [--rule IDS]... [--format FMT] FILE...\n\
     \u{20}      waso-audit --list-rules\n\
     \n\
     \u{20} --rule IDS            comma-separated rule ids, repeatable: --rule P2,L2,D3\n\
     \u{20} --format FMT          `text` (default) or `json` (a waso-audit-report/v1 document)\n\
     \u{20} --baseline FILE       ratchet: findings beyond FILE's recorded counts fail;\n\
     \u{20}                       fewer findings are reported as tightening opportunities\n\
     \u{20} --write-baseline FILE distill this run's findings into FILE and exit\n\
     \n\
     exit codes: 0 clean (or within the baseline), 1 violations (or baseline\n\
     regressions), 2 usage or I/O error\n\
     rules: D1 D2 D3 P1 P2 L1 L2 (SUP always runs); see --list-rules"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: None,
        rules: Vec::new(),
        list_rules: false,
        format: Format::Text,
        baseline: None,
        write_baseline: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory argument")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--rule" => {
                let ids = it.next().ok_or("--rule needs a rule id argument")?;
                for id in ids.split(',') {
                    let id = id.trim();
                    let rule = RuleId::parse(id).ok_or_else(|| format!("unknown rule `{id}`"))?;
                    if !args.rules.contains(&rule) {
                        args.rules.push(rule);
                    }
                }
            }
            "--format" => {
                let fmt = it.next().ok_or("--format needs `text` or `json`")?;
                args.format = match fmt.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                };
            }
            "--baseline" => {
                let file = it.next().ok_or("--baseline needs a file argument")?;
                args.baseline = Some(PathBuf::from(file));
            }
            "--write-baseline" => {
                let file = it.next().ok_or("--write-baseline needs a file argument")?;
                args.write_baseline = Some(PathBuf::from(file));
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if args.baseline.is_some() && args.write_baseline.is_some() {
        return Err("--baseline and --write-baseline are mutually exclusive".to_string());
    }
    if !args.list_rules && !args.workspace && args.files.is_empty() {
        return Err("nothing to audit: pass --workspace or files".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("waso-audit: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in RuleId::CHECKABLE.into_iter().chain([RuleId::Sup]) {
            let scope: Vec<&str> = SCOPES
                .iter()
                .filter(|(r, _)| *r == rule)
                .flat_map(|(_, p)| p.iter().copied())
                .collect();
            let scope = if scope.is_empty() {
                "(always on)".to_string()
            } else {
                scope.join(", ")
            };
            println!("{rule}  {}\n    scope: {scope}", rule.describe());
        }
        return ExitCode::SUCCESS;
    }

    let mut report = AuditReport::default();

    if args.workspace {
        let root = match args.root.clone().or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| find_workspace_root(&d))
        }) {
            Some(r) => r,
            None => {
                eprintln!("waso-audit: no workspace root found (try --root)");
                return ExitCode::from(2);
            }
        };
        match audit_workspace_rules(&root, &args.rules) {
            Ok(r) => {
                report.diagnostics.extend(r.diagnostics);
                report.files_audited += r.files_audited;
            }
            Err(e) => {
                eprintln!("waso-audit: {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    for file in &args.files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("waso-audit: {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        let rules: Vec<RuleId> = if args.rules.is_empty() {
            RuleId::CHECKABLE.to_vec()
        } else {
            args.rules.clone()
        };
        report.files_audited += 1;
        report
            .diagnostics
            .extend(audit_source(&file.display().to_string(), &src, &rules));
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    if let Some(path) = &args.write_baseline {
        let doc = Baseline::from_report(&report).to_json().render();
        if let Err(e) = std::fs::write(path, doc + "\n") {
            eprintln!("waso-audit: {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "waso-audit: wrote baseline ({} finding(s)) to {}",
            report.diagnostics.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    match args.format {
        Format::Text => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            println!(
                "waso-audit: {} violation(s) across {} file(s) audited",
                report.diagnostics.len(),
                report.files_audited
            );
        }
        Format::Json => println!("{}", report_to_json(&report).render()),
    }

    // Under a baseline the ratchet decides: regressions fail even while
    // violations remain grandfathered; improvements only invite a
    // tighter baseline.
    if let Some(path) = &args.baseline {
        let base = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text))
            .and_then(|doc| Baseline::from_json(&doc));
        let base = match base {
            Ok(b) => b,
            Err(e) => {
                eprintln!("waso-audit: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let drift = base.compare(&report);
        let mut regressed = false;
        for d in &drift {
            match d {
                Drift::Regression {
                    file,
                    rule,
                    baseline,
                    found,
                } => {
                    regressed = true;
                    eprintln!(
                        "waso-audit: ratchet regression: {file} has {found} {rule} finding(s), \
                         baseline allows {baseline}"
                    );
                }
                Drift::Improvement {
                    file,
                    rule,
                    baseline,
                    found,
                } => eprintln!(
                    "waso-audit: ratchet improvement: {file} is down to {found} {rule} \
                     finding(s) from {baseline} — consider --write-baseline"
                ),
            }
        }
        return if regressed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! A minimal JSON value: emit and parse, no dependencies.
//!
//! The auditor is deliberately dependency-free (it gates the build, so
//! it must run in the same offline environment), which means `--format
//! json` output and `--baseline` input are hand-rolled here. Only the
//! subset the report/baseline schemas use is supported: objects keep
//! insertion order, numbers are non-negative integers in practice
//! (parsed as `f64`), and strings escape the JSON-mandatory set.

use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: u64) -> Json {
        // Report counts/lines are far below 2^53; f64 is exact there.
        Json::Num(n as f64)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact rendering (no whitespace) — stable, diff-friendly enough
    /// for the committed baseline since entries are emitted sorted.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        let v = parse_value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing data at byte {i}"));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && b[*i].is_ascii_whitespace() {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {i}", i = *i))
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, i, "null").map(|()| Json::Null),
        Some(b't') => expect(b, i, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, i, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, i).map(Json::Str),
        Some(b'[') => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {i}", i = *i)),
                }
            }
        }
        Some(b'{') => {
            *i += 1;
            let mut fields = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, i);
                let key = parse_string(b, i)?;
                skip_ws(b, i);
                expect(b, i, ":")?;
                let value = parse_value(b, i)?;
                fields.push((key, value));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {i}", i = *i)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *i;
            *i += 1;
            while *i < b.len()
                && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *i += 1;
            }
            std::str::from_utf8(&b[start..*i])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, *i)),
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}", i = *i));
    }
    *i += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(out);
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {i}", i = *i))?;
                        // Surrogate pairs are not needed by the report
                        // schema; replace rather than fail.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at byte {i}", i = *i)),
                }
                *i += 1;
            }
            _ => {
                // Copy the full UTF-8 sequence through.
                let s = std::str::from_utf8(&b[*i..])
                    .map_err(|_| format!("invalid UTF-8 at byte {i}", i = *i))?;
                let ch = s.chars().next().ok_or("unexpected end of string")?;
                out.push(ch);
                *i += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_report_shape() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("waso-audit-report/v1")),
            ("files_audited".into(), Json::num(33)),
            (
                "diagnostics".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("file".into(), Json::str("a \"quoted\" path\n")),
                    ("line".into(), Json::num(7)),
                    (
                        "chain".into(),
                        Json::Arr(vec![Json::str("x → y"), Json::str("z")]),
                    ),
                ])]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("files_audited").unwrap().as_u64(), Some(33));
        let d = &back.get("diagnostics").unwrap().as_arr().unwrap()[0];
        assert_eq!(d.get("file").unwrap().as_str(), Some("a \"quoted\" path\n"));
    }

    #[test]
    fn parses_pretty_printed_input() {
        let text = "{\n  \"entries\": [\n    {\"file\": \"f.rs\", \"count\": 2}\n  ]\n}";
        let v = Json::parse(text).unwrap();
        let entries = v.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries[0].get("count").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_escapes() {
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
        assert!(Json::parse("[1,").is_err());
    }
}

//! A conservative workspace call graph over the item trees.
//!
//! Resolution is name-based and deliberately over-approximate — the
//! worst-case reading the interprocedural rules need:
//!
//! * `.m(…)` (method call) resolves to **every** workspace method named
//!   `m` — receiver types are not inferred, so an ambiguous name edges
//!   to all candidates.
//! * `Seg::f(…)` resolves to `Seg`'s method `f` when `Seg` names a known
//!   workspace `impl`/`trait` self-type (`Self` maps to the caller's
//!   own type); an unknown segment (std/vendor types, enum variants of
//!   local enums) resolves to **all** workspace fns named `f` when the
//!   segment is lowercase-module-like (`crate::mix_seed`), and to
//!   nothing when it is a foreign type (`Vec::new`).
//! * bare `f(…)` resolves to every workspace *free* fn named `f`.
//!
//! Callees with no workspace candidate at all (std, vendored crates) get
//! no edge: their panic behaviour is governed by the token-level base
//! facts (`unwrap`, indexing, …) at the call site, not the graph.
//!
//! `std::panic::catch_unwind(...)` is modelled as a **panic barrier**:
//! call sites (and panic facts) lexically inside its argument list are
//! marked `barriered` and the panic-reachability rule does not walk
//! through them — the workspace uses `catch_unwind` precisely where a
//! solver-subtree panic is converted into a typed error.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{item_tree, ItemTree};
use crate::lexer::Lexed;

/// One analyzed file: the shared per-file artifacts every
/// interprocedural pass consumes.
pub struct FileIndex {
    /// Workspace-relative label (diagnostics carry it).
    pub rel: String,
    pub lexed: Lexed,
    /// Test mask, parallel to `lexed.tokens`.
    pub skip: Vec<bool>,
    pub tree: ItemTree,
    /// Token → innermost owning fn (index into `tree.fns`).
    pub owner: Vec<Option<usize>>,
    /// Tokens lexically inside a `catch_unwind(...)` argument list.
    pub barriered: Vec<bool>,
}

impl FileIndex {
    pub fn build(rel: String, lexed: Lexed, skip: Vec<bool>) -> Self {
        let tree = item_tree(&lexed, &skip);
        let owner = tree.owner_map(lexed.tokens.len());
        let barriered = barrier_mask(&lexed);
        FileIndex {
            rel,
            lexed,
            skip,
            tree,
            owner,
            barriered,
        }
    }
}

/// Global fn id: (file index, fn index within that file's tree).
pub type FnId = usize;

/// One call edge out of a function.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: FnId,
    pub line: u32,
    /// Inside a `catch_unwind` argument — a panic barrier for P2.
    pub barriered: bool,
    /// Token index of the callee name (ordering key for L2 held-lock
    /// interleaving).
    pub tok: usize,
}

/// A function node: where it lives plus its resolved out-edges.
pub struct FnNode {
    pub file: usize,
    pub item: usize,
    pub calls: Vec<CallSite>,
}

pub struct CallGraph {
    pub fns: Vec<FnNode>,
    /// (file, fn-in-file) → global id.
    pub ids: BTreeMap<(usize, usize), FnId>,
}

impl CallGraph {
    pub fn qualified(&self, files: &[FileIndex], id: FnId) -> String {
        let n = &self.fns[id];
        files[n.file].tree.fns[n.item].qualified.clone()
    }

    /// Builds the graph over `files`. Test fns get no node — the
    /// contracts bind shipping code only.
    pub fn build(files: &[FileIndex]) -> CallGraph {
        let mut fns = Vec::new();
        let mut ids = BTreeMap::new();
        // Name indices for resolution.
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut by_type_method: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        let mut known_types: BTreeSet<&str> = BTreeSet::new();

        for (fi, file) in files.iter().enumerate() {
            for (ii, item) in file.tree.fns.iter().enumerate() {
                if item.is_test {
                    continue;
                }
                let id = fns.len();
                ids.insert((fi, ii), id);
                fns.push(FnNode {
                    file: fi,
                    item: ii,
                    calls: Vec::new(),
                });
                by_name.entry(&item.name).or_default().push(id);
                match &item.self_type {
                    Some(t) => {
                        by_type_method
                            .entry((t.as_str(), item.name.as_str()))
                            .or_default()
                            .push(id);
                        methods_by_name.entry(&item.name).or_default().push(id);
                        known_types.insert(t);
                    }
                    None => free_by_name.entry(&item.name).or_default().push(id),
                }
            }
        }

        let mut graph = CallGraph { fns, ids };
        for (fi, file) in files.iter().enumerate() {
            for (caller, site) in call_sites(file, fi, &graph) {
                let (idx, line, barriered, tok) = site;
                let item = &file.tree.fns[graph.fns[caller].item];
                let callees = resolve(
                    file,
                    idx,
                    item.self_type.as_deref(),
                    &by_name,
                    &free_by_name,
                    &methods_by_name,
                    &by_type_method,
                    &known_types,
                );
                for callee in callees {
                    graph.fns[caller].calls.push(CallSite {
                        callee,
                        line,
                        barriered,
                        tok,
                    });
                }
            }
        }
        graph
    }
}

/// Keywords that look like `ident (` but are not calls.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "match"
            | "for"
            | "return"
            | "loop"
            | "fn"
            | "move"
            | "in"
            | "as"
            | "else"
            | "let"
            | "mut"
            | "ref"
            | "box"
            | "await"
            | "where"
            | "impl"
            | "dyn"
    )
}

/// Every syntactic call site in `file`, as
/// `(caller global id, (callee-name token idx, line, barriered, tok))`.
fn call_sites(
    file: &FileIndex,
    fi: usize,
    graph: &CallGraph,
) -> Vec<(FnId, (usize, u32, bool, usize))> {
    let mut out = Vec::new();
    for (idx, tok) in file.lexed.tokens.iter().enumerate() {
        if file.skip[idx] {
            continue;
        }
        let Some(name) = file.lexed.ident(idx) else {
            continue;
        };
        if file.lexed.punct(idx + 1) != Some(b'(') || is_keyword(name) {
            continue;
        }
        if idx >= 1 && file.lexed.ident(idx - 1) == Some("fn") {
            continue; // `fn name(…)` — a declaration, not a call
        }
        let Some(owner_item) = file.owner[idx] else {
            continue; // outside any fn (const initializer, …)
        };
        let Some(&caller) = graph.ids.get(&(fi, owner_item)) else {
            continue; // test fn
        };
        let barriered = file.barriered.get(idx).copied().unwrap_or(false);
        out.push((caller, (idx, tok.line, barriered, idx)));
    }
    out
}

/// Resolves the callee-name token at `idx` per the module-level rules.
#[allow(clippy::too_many_arguments)]
fn resolve(
    file: &FileIndex,
    idx: usize,
    caller_self: Option<&str>,
    by_name: &BTreeMap<&str, Vec<FnId>>,
    free_by_name: &BTreeMap<&str, Vec<FnId>>,
    methods_by_name: &BTreeMap<&str, Vec<FnId>>,
    by_type_method: &BTreeMap<(&str, &str), Vec<FnId>>,
    known_types: &BTreeSet<&str>,
) -> Vec<FnId> {
    let lexed = &file.lexed;
    let name = lexed.ident(idx).unwrap_or_default();
    // `.m(…)`: any workspace *method* named m — a free fn cannot be a
    // `.m()` target without UFCS, which this codebase does not use.
    if idx >= 1 && lexed.punct(idx - 1) == Some(b'.') {
        return methods_by_name.get(name).cloned().unwrap_or_default();
    }
    // `Seg::f(…)`.
    if idx >= 3 && lexed.punct(idx - 1) == Some(b':') && lexed.punct(idx - 2) == Some(b':') {
        if let Some(seg) = lexed.ident(idx - 3) {
            let seg = if seg == "Self" {
                caller_self.unwrap_or(seg)
            } else {
                seg
            };
            if known_types.contains(seg) {
                return by_type_method
                    .get(&(seg, name))
                    .cloned()
                    .unwrap_or_default();
            }
            if seg.chars().next().is_some_and(char::is_uppercase) {
                // Foreign type (Vec, StdRng, …): out of the workspace
                // contract — base facts at the call site govern.
                return Vec::new();
            }
            // Module-qualified (`crate::mix_seed`, `exec::take_share`):
            // worst case, all workspace fns of that name.
            return by_name.get(name).cloned().unwrap_or_default();
        }
        return by_name.get(name).cloned().unwrap_or_default();
    }
    // Bare `f(…)`: free fns of that name.
    free_by_name.get(name).cloned().unwrap_or_default()
}

/// Marks every token inside the argument list of a
/// `catch_unwind(...)` call.
fn barrier_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut mask = vec![false; toks.len()];
    for i in 0..toks.len() {
        if lexed.ident(i) != Some("catch_unwind") || lexed.punct(i + 1) != Some(b'(') {
            continue;
        }
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < toks.len() {
            match lexed.punct(j) {
                Some(b'(') => depth += 1,
                Some(b')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            mask[j] = true;
            j += 1;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_skip_mask;

    fn index(rel: &str, src: &str) -> FileIndex {
        let lexed = lex(src);
        let skip = test_skip_mask(&lexed);
        FileIndex::build(rel.to_string(), lexed, skip)
    }

    fn edges(files: &[FileIndex]) -> Vec<(String, String, bool)> {
        let g = CallGraph::build(files);
        let mut out = Vec::new();
        for (id, node) in g.fns.iter().enumerate() {
            for c in &node.calls {
                out.push((
                    g.qualified(files, id),
                    g.qualified(files, c.callee),
                    c.barriered,
                ));
            }
        }
        out
    }

    #[test]
    fn methods_resolve_worst_case_and_free_fns_bare() {
        let files = vec![
            index(
                "a.rs",
                "impl Server { fn dispatch(&self) { self.session.submit(); helper(); } }\n",
            ),
            index(
                "b.rs",
                "impl Session { fn submit(&self) {} }\n\
                 impl Pool { fn submit(&self) {} }\n\
                 fn helper() {}\n",
            ),
        ];
        let e = edges(&files);
        assert!(e.contains(&("Server::dispatch".into(), "Session::submit".into(), false)));
        assert!(e.contains(&("Server::dispatch".into(), "Pool::submit".into(), false)));
        assert!(e.contains(&("Server::dispatch".into(), "helper".into(), false)));
    }

    #[test]
    fn qualified_calls_restrict_to_known_types_and_skip_foreign() {
        let files = vec![index(
            "a.rs",
            "impl Pool { fn new() {} }\n\
             impl Other { fn new() {} }\n\
             fn build() { let p = Pool::new(); let v = Vec::new(); }\n",
        )];
        let e = edges(&files);
        assert!(e.contains(&("build".into(), "Pool::new".into(), false)));
        assert!(!e.iter().any(|(_, to, _)| to == "Other::new"));
        assert_eq!(e.len(), 1, "Vec::new resolves to nothing: {e:?}");
    }

    #[test]
    fn catch_unwind_marks_call_sites_barriered() {
        let files = vec![index(
            "a.rs",
            "fn risky() {}\n\
             fn waiter() { let r = std::panic::catch_unwind(|| risky()); }\n\
             fn direct() { risky(); }\n",
        )];
        let e = edges(&files);
        assert!(e.contains(&("waiter".into(), "risky".into(), true)));
        assert!(e.contains(&("direct".into(), "risky".into(), false)));
    }
}

//! A minimal token-level lexer for Rust source.
//!
//! The auditor's rules are lexical: they match identifier patterns
//! (`HashMap`, `unwrap`, `Instant::now`) that must never appear in code
//! positions of the scoped files. All the lexer has to get right is the
//! boundary between *code* and *non-code* — comments, string literals,
//! char literals and lifetimes — so that `// a HashMap would break this`
//! or `"panic!"` in a protocol message never trips a rule. It produces a
//! flat token stream with line numbers plus the comment text (with
//! lines), which the suppression parser consumes separately.
//!
//! Not a full Rust lexer by design: numeric literal classification,
//! float-vs-range disambiguation beyond `1.0` vs `0..n`, and non-ASCII
//! identifiers are handled just well enough never to misattribute a
//! code/non-code boundary.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident(String),
    /// A single punctuation byte (`.`, `(`, `#`, `!`, …). Multi-byte
    /// operators arrive as consecutive tokens (`::` is `:`, `:`).
    Punct(u8),
    /// A string/char/number literal, contents discarded.
    Literal,
    /// A lifetime (`'a`, `'static`), name discarded.
    Lifetime,
}

/// A token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub line: u32,
    pub tok: Tok,
}

/// The lexer's output: the code token stream and every comment (line
/// where the comment starts, full text including the `//`/`/*` markers).
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<(u32, String)>,
}

impl Lexed {
    /// The identifier text of token `idx`, if it is one.
    pub fn ident(&self, idx: usize) -> Option<&str> {
        match self.tokens.get(idx).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether token `idx` is the punctuation byte `p`.
    pub fn punct(&self, idx: usize) -> Option<u8> {
        match self.tokens.get(idx).map(|t| &t.tok) {
            Some(&Tok::Punct(p)) => Some(p),
            _ => None,
        }
    }
}

/// Lexes `src`, splitting code tokens from comment text.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push((line, src[start..i].to_string()));
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let (start, start_line) = (i, line);
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push((start_line, src[start..i].to_string()));
            }
            b'"' => {
                let tline = line;
                i = skip_string(b, i, &mut line);
                out.tokens.push(Token {
                    line: tline,
                    tok: Tok::Literal,
                });
            }
            // Raw identifier `r#name`: one Ident token carrying the
            // `r#` prefix, so `r#fn` can never read as the `fn` keyword
            // and no bogus Literal token desyncs the stream.
            b'r' if b.get(i + 1) == Some(&b'#')
                && b.get(i + 2)
                    .is_some_and(|&c| c == b'_' || c.is_ascii_alphabetic()) =>
            {
                let start = i;
                i += 2;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    line,
                    tok: Tok::Ident(src[start..i].to_string()),
                });
            }
            b'\'' => {
                let tline = line;
                i = char_or_lifetime(b, i, &mut line, &mut out, tline);
            }
            b'r' | b'b' if raw_or_byte_literal(b, i).is_some() => {
                let tline = line;
                i = raw_or_byte_literal(b, i).map_or(i + 1, |kind| match kind {
                    LitStart::Raw(prefix) => skip_raw_string(b, i + prefix, &mut line),
                    LitStart::ByteStr => skip_string(b, i + 1, &mut line),
                    LitStart::ByteChar => skip_char(b, i + 1, &mut line),
                });
                out.tokens.push(Token {
                    line: tline,
                    tok: Tok::Literal,
                });
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    line,
                    tok: Tok::Ident(src[start..i].to_string()),
                });
            }
            _ if c.is_ascii_digit() => {
                // Consume the number; a `.` joins only when a digit
                // follows, so `0..n` stays three tokens while `1.5`
                // stays one.
                while i < b.len()
                    && (b[i] == b'_'
                        || b[i].is_ascii_alphanumeric()
                        || (b[i] == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit)))
                {
                    i += 1;
                }
                out.tokens.push(Token {
                    line,
                    tok: Tok::Literal,
                });
            }
            _ if c.is_ascii() => {
                out.tokens.push(Token {
                    line,
                    tok: Tok::Punct(c),
                });
                i += 1;
            }
            // Non-ASCII outside comments/strings: skip the byte. (The
            // audited sources only use non-ASCII in comments.)
            _ => i += 1,
        }
    }
    out
}

enum LitStart {
    /// `r"`, `r#"`, `br"`, `br#"` — the payload is the prefix length up
    /// to (not including) the opening `#`*n*`"` sequence handled by
    /// [`skip_raw_string`].
    Raw(usize),
    /// `b"`.
    ByteStr,
    /// `b'`.
    ByteChar,
}

/// Is position `i` (at an `r`/`b`) the start of a raw/byte literal?
/// `r#` counts only when its hash run is followed by `"` — otherwise it
/// is a raw identifier (`r#fn`), which the lexer handles separately.
fn raw_or_byte_literal(b: &[u8], i: usize) -> Option<LitStart> {
    let rest = &b[i..];
    match rest {
        [b'r', ..] if raw_quote_follows(&rest[1..]) => Some(LitStart::Raw(1)),
        [b'b', b'r', ..] if raw_quote_follows(&rest[2..]) => Some(LitStart::Raw(2)),
        [b'b', b'"', ..] => Some(LitStart::ByteStr),
        [b'b', b'\'', ..] => Some(LitStart::ByteChar),
        _ => None,
    }
}

/// `#`*n*`"` — the delimiter run that opens a raw-string body.
fn raw_quote_follows(rest: &[u8]) -> bool {
    let hashes = rest.iter().take_while(|&&c| c == b'#').count();
    rest.get(hashes) == Some(&b'"')
}

/// Skips a `"…"` string starting at the opening quote; returns the index
/// past the closing quote.
fn skip_string(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string whose `#` hashes start at `start` (just past the
/// `r`/`br` prefix); returns the index past the closing delimiter.
fn skip_raw_string(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start;
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return i; // not actually a raw string; resynchronize
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"' && b[i + 1..].iter().take_while(|&&h| h == b'#').count() >= hashes {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// Skips a `'…'` char literal starting at the quote; returns the index
/// past the closing quote.
fn skip_char(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) at a `'`.
fn char_or_lifetime(b: &[u8], i: usize, line: &mut u32, out: &mut Lexed, tline: u32) -> usize {
    let next = b.get(i + 1).copied();
    let is_lifetime = match next {
        Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
            // `'a'` closes immediately after one ident char; a lifetime
            // keeps going (or ends at a non-quote).
            let mut j = i + 2;
            while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            b.get(j) != Some(&b'\'')
        }
        Some(b'\\') => false,
        _ => false,
    };
    if is_lifetime {
        let mut j = i + 1;
        while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
            j += 1;
        }
        out.tokens.push(Token {
            line: tline,
            tok: Tok::Lifetime,
        });
        j
    } else {
        let end = skip_char(b, i, line);
        out.tokens.push(Token {
            line: tline,
            tok: Tok::Literal,
        });
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let src = r####"
            // a HashMap in a comment
            /* unwrap() in a block /* nested */ comment */
            let s = "panic!(HashMap)";
            let r = r#"expect("HashSet")"#;
            let c = 'x';
            let lt: &'static str = "y";
            real_ident();
        "####;
        let ids = idents(src);
        assert_eq!(
            ids,
            vec![
                "let",
                "s",
                "let",
                "r",
                "let",
                "c",
                "let",
                "lt",
                "str",
                "real_ident"
            ]
        );
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\ny\";\nfoo();\n/* c\nc */\nbar();";
        let lexed = lex(src);
        let foo = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("foo".into()))
            .unwrap();
        assert_eq!(foo.line, 3);
        let bar = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("bar".into()))
            .unwrap();
        assert_eq!(bar.line, 6);
    }

    #[test]
    fn comment_text_and_lines_are_captured() {
        let src = "code();\n// audit:allow(D1): fine\nmore();";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].0, 2);
        assert!(lexed.comments[0].1.contains("audit:allow(D1)"));
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let toks = lex("for i in 0..n { x[i] = 1.5; }").tokens;
        let dots = toks.iter().filter(|t| t.tok == Tok::Punct(b'.')).count();
        assert_eq!(dots, 2, "0..n keeps both dots, 1.5 keeps neither");
    }

    #[test]
    fn byte_and_raw_literals_lex_as_literals() {
        let src = "let a = b\"bytes\"; let b = b'x'; let c = br#\"raw\"#;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn raw_identifiers_are_single_idents_not_keywords() {
        // `r#fn` used to lex as a bogus Literal plus the *keyword* `fn`,
        // desyncing every downstream item scan. It must be one Ident
        // carrying the `r#` prefix.
        let src = "let r#fn = x; call(r#match, r#unwrap);";
        let lexed = lex(src);
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "r#fn", "x", "call", "r#match", "r#unwrap"]);
        assert!(
            !lexed.tokens.iter().any(|t| t.tok == Tok::Literal),
            "no spurious Literal tokens from raw identifiers"
        );
    }

    #[test]
    fn raw_identifiers_do_not_break_raw_strings() {
        // A raw ident and a raw string side by side: the classifier must
        // route each to the right path.
        let src = "let r#type = r#\"HashMap inside\"#; after();";
        assert_eq!(idents(src), vec!["let", "r#type", "after"]);
    }

    #[test]
    fn deeply_nested_block_comments_track_depth_and_lines() {
        let src = "a();\n/* 1 /* 2 /* 3 */ still 2 */ still 1\n*/\nb();";
        let lexed = lex(src);
        let ids: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some((s.as_str(), t.line)),
                _ => None,
            })
            .collect();
        // Nothing inside the comment leaks, and `b` lands on line 4.
        assert_eq!(ids, vec![("a", 1), ("b", 4)]);
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn unbalanced_block_comment_consumes_to_eof_without_panicking() {
        let src = "x();\n/* /* never closed */";
        assert_eq!(idents(src), vec!["x"]);
    }
}

//! Brace-matched item tree: the structural layer between the flat token
//! stream and the interprocedural rules.
//!
//! [`item_tree`] walks a lexed file once and recovers every function —
//! its bare name, its qualified display path (`module::Type::name`),
//! the impl/trait self-type it belongs to, its body's token range, and
//! whether it is test-gated. Nested functions are items of their own:
//! [`ItemTree::owner_map`] assigns every token to its *innermost*
//! enclosing function, so call sites and panic facts inside a nested
//! helper are attributed to the helper, not the function that merely
//! contains its definition. Closure bodies, by design, stay attributed
//! to the enclosing `fn` — a closure runs (at worst) wherever its owner
//! can reach, which is exactly the conservative reading the
//! reachability rules want.

use crate::lexer::Lexed;

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name (`submit`).
    pub name: String,
    /// Qualified display path: module path + self type + name
    /// (`exec::SharedPool::submit`).
    pub qualified: String,
    /// The `impl`/`trait` self-type when the fn is a method.
    pub self_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token indices of the body's `{` and matching `}`. `None` for a
    /// bodyless trait-method declaration.
    pub body: Option<(usize, usize)>,
    /// Inside a `#[test]`/`#[cfg(test)]`-gated region.
    pub is_test: bool,
}

/// Every function of one file, in source order.
#[derive(Debug, Default)]
pub struct ItemTree {
    pub fns: Vec<FnItem>,
}

impl ItemTree {
    /// `owner[t]` = index into [`Self::fns`] of the innermost function
    /// whose body contains token `t` (the signature tokens belong to the
    /// function too).
    pub fn owner_map(&self, token_count: usize) -> Vec<Option<usize>> {
        let mut owner = vec![None; token_count];
        // Source order means an inner fn appears after its enclosing fn
        // and its range is contained in it, so later writes win =
        // innermost.
        for (idx, f) in self.fns.iter().enumerate() {
            let end = f.body.map_or(f.fn_tok + 1, |(_, close)| close + 1);
            for slot in owner.iter_mut().take(end.min(token_count)).skip(f.fn_tok) {
                *slot = Some(idx);
            }
        }
        owner
    }
}

/// What a pending `mod`/`impl`/`trait` header will attach to its `{`.
#[derive(Debug, Clone)]
enum Scope {
    Mod(String),
    /// `impl Type`, `impl Trait for Type`, or `trait Name` — anything
    /// whose direct `fn`s are methods of a named self-type.
    Typed(String),
}

/// Builds the item tree for one lexed file. `skip` is the test mask from
/// `rules::test_skip_mask` (same length as the token stream).
pub fn item_tree(lexed: &Lexed, skip: &[bool]) -> ItemTree {
    let toks = &lexed.tokens;
    let mut tree = ItemTree::default();
    // One entry per open `{`: the scope that brace introduced, if any.
    let mut stack: Vec<Option<Scope>> = Vec::new();
    let mut pending: Option<Scope> = None;

    let mut i = 0usize;
    while i < toks.len() {
        if let Some(p) = lexed.punct(i) {
            match p {
                b'{' => stack.push(pending.take()),
                b'}' => {
                    stack.pop();
                }
                b';' => pending = None,
                _ => {}
            }
            i += 1;
            continue;
        }
        let Some(word) = lexed.ident(i) else {
            i += 1;
            continue;
        };
        match word {
            "mod" => {
                if let Some(name) = lexed.ident(i + 1) {
                    pending = Some(Scope::Mod(name.to_string()));
                }
                i += 1;
            }
            "impl" | "trait" => {
                if let Some(ty) = self_type_name(lexed, i + 1) {
                    pending = Some(Scope::Typed(ty));
                }
                i += 1;
            }
            "fn" => {
                let Some(name) = lexed.ident(i + 1) else {
                    // `fn(` — a function-pointer type, not an item.
                    i += 1;
                    continue;
                };
                let body = fn_body_range(lexed, i + 2);
                let self_type = stack.iter().rev().find_map(|s| match s {
                    Some(Scope::Typed(t)) => Some(t.clone()),
                    _ => None,
                });
                let mods: Vec<&str> = stack
                    .iter()
                    .filter_map(|s| match s {
                        Some(Scope::Mod(m)) => Some(m.as_str()),
                        _ => None,
                    })
                    .collect();
                let mut qualified = String::new();
                for m in &mods {
                    qualified.push_str(m);
                    qualified.push_str("::");
                }
                if let Some(t) = &self_type {
                    qualified.push_str(t);
                    qualified.push_str("::");
                }
                qualified.push_str(name);
                tree.fns.push(FnItem {
                    name: name.to_string(),
                    qualified,
                    self_type,
                    line: toks[i].line,
                    fn_tok: i,
                    body,
                    is_test: skip.get(i).copied().unwrap_or(false),
                });
                // Continue *inside* the signature/body so nested fns are
                // found too; the `{` will push a scope-less frame.
                i += 2;
            }
            _ => i += 1,
        }
    }
    tree
}

/// The self-type name of an `impl`/`trait` header starting at `start`
/// (just past the keyword): the last identifier at angle-depth 0 before
/// the opening `{`, taken after `for` when present — so
/// `impl<T> StageExec for PoolJob<'p>` yields `PoolJob` and
/// `impl exec::SharedPool` yields `SharedPool`.
fn self_type_name(lexed: &Lexed, start: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut last: Option<&str> = None;
    let mut j = start;
    while j < lexed.tokens.len() {
        if let Some(p) = lexed.punct(j) {
            match p {
                b'<' => angle += 1,
                b'>' => angle -= 1,
                b'{' | b';' => break,
                _ => {}
            }
        } else if angle <= 0 {
            if let Some(id) = lexed.ident(j) {
                if id == "for" {
                    last = None; // the self type follows `for`
                } else if id != "where" && id != "dyn" && id != "mut" && id != "const" {
                    last = Some(id);
                } else if id == "where" {
                    break; // bounds only from here on
                }
            }
        }
        j += 1;
    }
    last.map(str::to_string)
}

/// The body range of a `fn` whose signature starts at `start`: the first
/// `{` (then its brace-matched `}`), unless a `;` arrives first (a
/// bodyless trait declaration).
fn fn_body_range(lexed: &Lexed, start: usize) -> Option<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut j = start;
    let open = loop {
        match lexed.punct(j) {
            Some(b'{') => break j,
            Some(b';') => return None,
            _ => {}
        }
        j += 1;
        if j >= toks.len() {
            return None;
        }
    };
    let mut depth = 0usize;
    let mut k = open;
    while k < toks.len() {
        match lexed.punct(k) {
            Some(b'{') => depth += 1,
            Some(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, k));
                }
            }
            _ => {}
        }
        k += 1;
    }
    Some((open, toks.len().saturating_sub(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_skip_mask;

    fn tree_of(src: &str) -> ItemTree {
        let lexed = lex(src);
        let skip = test_skip_mask(&lexed);
        item_tree(&lexed, &skip)
    }

    #[test]
    fn free_fns_methods_and_modules_qualify() {
        let src = "fn top() {}\n\
                   mod inner {\n\
                     impl Server { fn submit(&self) {} }\n\
                     pub fn helper() {}\n\
                   }\n\
                   impl<T> StageExec for PoolJob<'_> { fn run_stage(&mut self) {} }\n";
        let t = tree_of(src);
        let q: Vec<&str> = t.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(
            q,
            vec![
                "top",
                "inner::Server::submit",
                "inner::helper",
                "PoolJob::run_stage"
            ]
        );
        assert_eq!(t.fns[1].self_type.as_deref(), Some("Server"));
        assert_eq!(t.fns[3].self_type.as_deref(), Some("PoolJob"));
    }

    #[test]
    fn nested_fns_own_their_tokens() {
        let src = "fn outer() {\n  fn inner() { x.unwrap(); }\n  inner();\n}\n";
        let lexed = lex(src);
        let skip = test_skip_mask(&lexed);
        let t = item_tree(&lexed, &skip);
        assert_eq!(t.fns.len(), 2);
        let owner = t.owner_map(lexed.tokens.len());
        let unwrap_tok = lexed
            .tokens
            .iter()
            .position(|tk| matches!(&tk.tok, crate::lexer::Tok::Ident(s) if s == "unwrap"))
            .unwrap();
        assert_eq!(owner[unwrap_tok], Some(1), "unwrap belongs to `inner`");
    }

    #[test]
    fn trait_declarations_and_test_fns_are_classified() {
        let src = "trait Exec { fn go(&self); fn with_default(&self) {} }\n\
                   #[cfg(test)]\nmod tests { fn helper() {} }\n";
        let t = tree_of(src);
        assert_eq!(t.fns[0].body, None);
        assert_eq!(t.fns[0].self_type.as_deref(), Some("Exec"));
        assert!(t.fns[1].body.is_some());
        assert!(t.fns[2].is_test, "fns under #[cfg(test)] are test items");
    }
}

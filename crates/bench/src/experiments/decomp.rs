//! `--figure decomp` — the scale-adaptive decomposition ladder.
//!
//! For each rung `n` of a planted-partition ladder (10^4 → 10^6 at paper
//! scale) this driver solves the same instance two ways at the **same
//! sampling budget**:
//!
//! * whole-graph CBAS-ND — the harness baseline spec;
//! * `decomp:inner=cbas-nd,communities=auto,top=4` — community-partitioned
//!   solves over induced subgraphs plus boundary repair.
//!
//! The committed records land in `BENCH_engine.json` next to the engine
//! throughput sweep; the decomposed rows are expected to win wall-time at
//! n ≥ 10^5 with mean quality within a few percent. Note the 1-core
//! measurement caveat: the win comes from *cheaper per-sample work* on
//! community-sized subgraphs (smaller frontiers, fewer start nodes, no
//! O(n) per-solve init per start), not from parallel hardware.

use waso::SolverSpec;
use waso_core::WasoInstance;
use waso_datasets::{synthetic, Scale};

use crate::report::{BenchRecord, Cell, Table, TableSet};
use crate::runner::{measure_spec_avg, ExperimentContext};

use super::fig5::cbasnd_spec;

/// Group size of every ladder rung.
pub const LADDER_K: usize = 10;

/// The ladder's graph sizes per scale. Paper scale reaches the
/// million-node regime; smoke stays CI-cheap.
pub fn ladder_sizes(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Smoke => &[3_000],
        Scale::Small => &[10_000, 100_000],
        Scale::Paper => &[10_000, 100_000, 1_000_000],
    }
}

/// The decomposition spec under test, at an explicit budget.
pub fn decomp_spec(budget: u64) -> SolverSpec {
    SolverSpec::new("decomp")
        .budget(budget)
        .stages(super::fig5::STAGES)
        .inner("cbas-nd")
        .communities(0)
        .top(4)
}

/// Measures the ladder: two records (whole-graph, decomposed) per rung.
pub fn ladder_records(ctx: &ExperimentContext) -> Vec<BenchRecord> {
    let registry = waso::registry();
    // The ladder runs in the sampling-dominated regime: the decomposition
    // pays a one-time O(rounds · m) label-propagation cost (~0.25 s at
    // n = 10^5) that a small budget would never amortise, while its
    // per-sample work on community-sized subgraphs is ~1.6x cheaper than
    // whole-graph sampling. 80x the harness budget puts the crossover
    // comfortably behind us at every rung.
    let budget = ctx.budget() * 80;
    let mut records = Vec::new();
    for &n in ladder_sizes(ctx.scale) {
        let graph = synthetic::planted_partition_like_n(n, ctx.seed);
        let inst = WasoInstance::new(graph, LADDER_K).expect("ladder rungs have n >= k");
        let workload = format!("planted-partition/n={n}/k={LADDER_K}");
        let specs = [
            cbasnd_spec(budget, Some(ctx.harness_m(n))),
            decomp_spec(budget),
        ];
        for spec in specs {
            let meas = measure_spec_avg(&registry, &spec, &inst, ctx.seed, ctx.repeats);
            records.push(BenchRecord {
                workload: workload.clone(),
                solver: spec.to_string(),
                threads: 0,
                mean_quality: meas.quality,
                wall_seconds: meas.seconds,
                samples_per_sec: meas.samples_per_sec,
            });
        }
    }
    records
}

/// Renders the ladder as one table: paired rows per rung with the
/// decomposed speedup and quality ratio spelled out.
pub fn ladder_table(records: &[BenchRecord]) -> Table {
    let mut t = Table::new(
        "decomp-ladder",
        "decomposed vs whole-graph solves at equal budget",
        &[
            "workload",
            "solver",
            "wall s",
            "mean quality",
            "speedup vs whole",
            "quality vs whole",
        ],
    );
    for pair in records.chunks(2) {
        let whole = &pair[0];
        for (idx, r) in pair.iter().enumerate() {
            let (speedup, quality_ratio) = if idx == 0 {
                (Cell::from(1.0), Cell::from(1.0))
            } else {
                (
                    if r.wall_seconds > 0.0 {
                        Cell::from(whole.wall_seconds / r.wall_seconds)
                    } else {
                        Cell::Missing
                    },
                    match (r.mean_quality, whole.mean_quality) {
                        (Some(d), Some(w)) if w != 0.0 => Cell::from(d / w),
                        _ => Cell::Missing,
                    },
                )
            };
            t.push_row(vec![
                Cell::from(r.workload.as_str()),
                Cell::from(r.solver.as_str()),
                Cell::from(r.wall_seconds),
                r.mean_quality.map(Cell::from).unwrap_or(Cell::Missing),
                speedup,
                quality_ratio,
            ]);
        }
    }
    t
}

/// Measures once, returning tables and the machine-readable records — the
/// `waso-experiments` path, which folds the records into
/// `BENCH_engine.json`.
pub fn ladder_collect(ctx: &ExperimentContext) -> (TableSet, Vec<BenchRecord>) {
    let records = ladder_records(ctx);
    let mut set = TableSet::new();
    set.push(ladder_table(&records));
    (set, records)
}

/// Tables-only entry point (the [`super::run_figure`] route).
pub fn ladder(ctx: &ExperimentContext) -> TableSet {
    ladder_collect(ctx).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_pairs_whole_and_decomposed_per_rung() {
        let mut ctx = ExperimentContext::new(Scale::Smoke);
        ctx.repeats = 1;
        let records = ladder_records(&ctx);
        assert_eq!(records.len(), 2 * ladder_sizes(Scale::Smoke).len());
        for pair in records.chunks(2) {
            assert_eq!(pair[0].workload, pair[1].workload);
            assert!(pair[0].solver.starts_with("cbas-nd:"), "{}", pair[0].solver);
            assert!(pair[1].solver.starts_with("decomp:"), "{}", pair[1].solver);
            for r in pair {
                assert!(r.samples_per_sec > 0.0, "{}: no throughput", r.solver);
                assert!(r.mean_quality.is_some(), "{}: infeasible", r.solver);
            }
        }
        let table = ladder_table(&records);
        assert_eq!(table.rows.len(), records.len());
    }

    #[test]
    fn ladder_scales_reach_the_million_node_regime() {
        assert!(ladder_sizes(Scale::Paper).contains(&1_000_000));
        assert!(ladder_sizes(Scale::Small).contains(&100_000));
    }
}
